#!/usr/bin/env bash
# The tier-1 gate: everything a PR must keep green.
# Run from the repository root: ./ci.sh
set -euo pipefail

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci.sh: all checks passed"
