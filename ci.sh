#!/usr/bin/env bash
# The tier-1 gate: everything a PR must keep green.
# Run from the repository root: ./ci.sh
# Pass --bench-smoke to also exercise the benchmark binaries at reduced
# job counts (no BENCH_*.json is written) so they cannot silently rot.
# Pass --chaos to additionally sweep the deterministic fault-injection
# suite (tests/chaos_scheduler.rs) across fixed PP_CHAOS_SEED values.
# Pass --analyze to run ONLY the pp-analyze static-analysis gate (fast
# path for pre-commit); the default run includes it too.
# Pass --train-smoke to additionally run the training-job smoke test
# (tests/train_jobs.rs smoke_*) plus the train_coexist bench probe
# proving interactive latency survives a co-resident Train job.
set -euo pipefail

if [[ "${1:-}" == "--analyze" ]]; then
    echo "==> cargo run -p pp-analyze (static analysis only)"
    cargo run -q -p pp-analyze
    echo "ci.sh: analyze passed"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --release --examples"
cargo build --release --examples

echo "==> cargo test -q"
RUST_BACKTRACE=1 cargo test -q

echo "==> cargo run -p pp-analyze (static analysis)"
cargo run -q -p pp-analyze

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

if [[ "${1:-}" == "--bench-smoke" ]]; then
    echo "==> bench smoke: sampling_bench (8 jobs)"
    PP_BENCH_SMOKE=1 PP_BENCH_JOBS=8 cargo run --release -q -p pp-bench --bin sampling_bench
    echo "==> bench smoke: round_bench (200 jobs)"
    PP_BENCH_SMOKE=1 PP_BENCH_JOBS=200 cargo run --release -q -p pp-bench --bin round_bench
fi

if [[ "${1:-}" == "--chaos" ]]; then
    # Fixed seeds so a failure is reproducible by rerunning the same
    # seed; seeded_fault_plan_is_always_survivable derives its whole
    # fault schedule (which tenant panics/errors/stalls, at which
    # slot ordinal) from PP_CHAOS_SEED.
    # fleet_router's chaos_ test derives the doomed replica and the
    # job mix from the same seed (replica-loss redistribution).
    for seed in 3 47 20260807; do
        echo "==> chaos sweep: PP_CHAOS_SEED=$seed"
        PP_CHAOS_SEED=$seed RUST_BACKTRACE=1 cargo test -q --test chaos_scheduler
        PP_CHAOS_SEED=$seed RUST_BACKTRACE=1 cargo test -q --test fleet_router chaos_
    done
fi

if [[ "${1:-}" == "--train-smoke" ]]; then
    echo "==> train smoke: tests/train_jobs.rs smoke_"
    RUST_BACKTRACE=1 cargo test -q --test train_jobs smoke_
    echo "==> train smoke: sampling_bench train_coexist probe"
    PP_BENCH_SMOKE=1 PP_BENCH_JOBS=8 PP_BENCH_MODE=train_coexist \
        cargo run --release -q -p pp-bench --bin sampling_bench
fi

echo "ci.sh: all checks passed"
