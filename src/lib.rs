//! PatternPaint — few-shot VLSI layout pattern generation via
//! diffusion-based inpainting (DAC 2025), reproduced as a pure-Rust system.
//!
//! This umbrella crate re-exports the whole workspace so downstream users
//! can depend on a single crate:
//!
//! * [`geometry`] — layout rasters and the squish representation;
//! * [`drc`] — the Manhattan design-rule checker;
//! * [`pdk`] — the SynthNode-3 synthetic process design kit;
//! * [`nn`] — the from-scratch neural-network substrate;
//! * [`diffusion`] — DDPM/DDIM and RePaint-style inpainting;
//! * [`inpaint`] — masks and template-based denoising (paper Alg. 1);
//! * [`selection`] — PCA + farthest-point layout selection (paper Alg. 2);
//! * [`metrics`] — H1/H2 entropies and uniqueness;
//! * [`solver`] — the nonlinear squish legalization solver (baseline path);
//! * [`baselines`] — CUP and DiffPattern reimplementations;
//! * [`core`] — the PatternPaint pipeline itself.
//!
//! # Quickstart
//!
//! ```
//! use patternpaint::pdk::SynthNode;
//! use patternpaint::drc::check_layout;
//!
//! let node = SynthNode::default();
//! let starters = node.starter_patterns();
//! assert_eq!(starters.len(), 20);
//! // Every starter is DR-clean by construction.
//! for s in &starters {
//!     assert!(check_layout(s, node.rules()).is_clean());
//! }
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end generation run and
//! `DESIGN.md` / `EXPERIMENTS.md` for the experiment inventory.

#![forbid(unsafe_code)]

pub use patternpaint_core as core;
pub use pp_baselines as baselines;
pub use pp_diffusion as diffusion;
pub use pp_drc as drc;
pub use pp_geometry as geometry;
pub use pp_inpaint as inpaint;
pub use pp_metrics as metrics;
pub use pp_nn as nn;
pub use pp_pdk as pdk;
pub use pp_selection as selection;
pub use pp_solver as solver;
