//! Pins the GEMM-backed PCA fit and selection distances against the
//! pre-rework nested-loop implementation.
//!
//! This runs as its own integration-test process because
//! `gemm::set_force_naive` is process-global: toggling it here cannot
//! race the unit tests.

use pp_nn::gemm;
use pp_selection::{select_representatives, Pca, PcaSelector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_data(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
        .collect()
}

/// Under the naive kernels the GEMM-formulated fit must reproduce the
/// reference loop implementation *bit for bit*: the kernels were chosen
/// so every accumulation happens in the same order.
#[test]
fn pca_gemm_matches_reference() {
    for (n, d, k, seed) in [(30, 6, 6, 0u64), (64, 17, 8, 1), (200, 32, 12, 2)] {
        let data = random_data(n, d, seed);
        let reference = Pca::fit_reference(&data, 0.9, k, seed);

        gemm::set_force_naive(true);
        let naive = Pca::fit(&data, 0.9, k, seed);
        gemm::set_force_naive(false);
        assert_eq!(
            naive.eigenvalues(),
            reference.eigenvalues(),
            "naive-kernel fit diverged from the reference loop at n={n} d={d}"
        );
        for row in &data {
            assert_eq!(naive.transform(row), reference.transform(row));
        }

        // The blocked kernels reassociate float reductions, so demand
        // agreement to tolerance rather than bit equality.
        let fast = Pca::fit(&data, 0.9, k, seed);
        assert_eq!(fast.n_components(), reference.n_components());
        assert!(
            (fast.explained_ratio() - reference.explained_ratio()).abs() < 1e-4,
            "explained ratio drifted: {} vs {}",
            fast.explained_ratio(),
            reference.explained_ratio()
        );
        for (a, b) in fast.eigenvalues().iter().zip(reference.eigenvalues()) {
            assert!((a - b).abs() < 1e-3 * b.abs().max(1.0), "{a} vs {b}");
        }
        // Components match up to sign.
        for row in &data {
            for (a, b) in fast.transform(row).iter().zip(reference.transform(row)) {
                assert!(
                    (a.abs() - b.abs()).abs() < 1e-2 * b.abs().max(1.0),
                    "projection drifted: {a} vs {b}"
                );
            }
        }
    }
}

/// The GEMM distance path must agree with the per-pair reference loop
/// on selection outcomes for well-separated data (ties are the only
/// place float rounding could legitimately flip a pick).
#[test]
fn selection_gemm_matches_reference_distances() {
    let mut rng = StdRng::seed_from_u64(7);
    let clusters: Vec<Vec<f32>> = (0..60)
        .map(|i| {
            let centre = (i % 5) as f32 * 40.0;
            vec![
                centre + rng.gen_range(-1.0f32..1.0),
                -centre + rng.gen_range(-1.0f32..1.0),
            ]
        })
        .collect();
    for seed in 0..8 {
        let fast = select_representatives(&clusters, 5, |_| true, seed);
        gemm::set_force_naive(true);
        let reference = select_representatives(&clusters, 5, |_| true, seed);
        gemm::set_force_naive(false);
        assert_eq!(fast, reference, "picks diverged at seed {seed}");
    }
}

/// End-to-end selector determinism across both kernel paths.
#[test]
fn selector_deterministic_on_both_paths() {
    let library = pp_pdk::SynthNode::default().starter_patterns();
    let selector = PcaSelector::new(0.9, 0.4, 11);
    let fast_a = selector.select(&library, 6);
    let fast_b = selector.select(&library, 6);
    assert_eq!(fast_a, fast_b);
    gemm::set_force_naive(true);
    let naive_a = selector.select(&library, 6);
    let naive_b = selector.select(&library, 6);
    gemm::set_force_naive(false);
    assert_eq!(naive_a, naive_b);
    assert_eq!(fast_a.len(), naive_a.len());
}
