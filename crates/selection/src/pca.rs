//! Principal component analysis from scratch.
//!
//! PCA here runs on flattened layout clips (dimension = clip², up to a few
//! thousand) over libraries of up to tens of thousands of samples, so an
//! explicit covariance eigendecomposition is out of the question. Instead
//! we use **subspace iteration** on the *implicit* covariance
//! `C = Xᶜᵀ Xᶜ / n` (where `Xᶜ` is the centred data): repeatedly apply
//! `V ← orth(Xᶜᵀ (Xᶜ V) / n)`, which converges to the dominant
//! eigenvectors without ever materialising `C`.

use crate::error::SelectionError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted PCA model.
///
/// # Example
///
/// ```
/// use pp_selection::Pca;
///
/// // Points on a line in 3D: one component explains everything.
/// let data: Vec<Vec<f32>> = (0..20)
///     .map(|i| vec![i as f32, 2.0 * i as f32, -i as f32])
///     .collect();
/// let pca = Pca::fit(&data, 0.9, 4, 0);
/// assert_eq!(pca.n_components(), 1);
/// assert!(pca.explained_ratio() > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// Row-major components, each of length `dim`.
    components: Vec<Vec<f32>>,
    /// Variance captured by each component.
    eigenvalues: Vec<f32>,
    /// Total variance of the (centred) data.
    total_variance: f32,
}

impl Pca {
    /// Fits PCA keeping the smallest number of components whose explained
    /// variance reaches `target_explained` (capped at `max_components`).
    ///
    /// Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`SelectionError::EmptyInput`] if `data` is empty,
    /// [`SelectionError::DimensionMismatch`] if rows have inconsistent
    /// lengths.
    pub fn try_fit(
        data: &[Vec<f32>],
        target_explained: f64,
        max_components: usize,
        seed: u64,
    ) -> Result<Pca, SelectionError> {
        if data.is_empty() {
            return Err(SelectionError::EmptyInput("pca sample set"));
        }
        let dim = data[0].len();
        if let Some(bad) = data.iter().find(|d| d.len() != dim) {
            return Err(SelectionError::DimensionMismatch {
                expected: dim,
                actual: bad.len(),
            });
        }
        Ok(Self::fit_checked(
            data,
            target_explained,
            max_components,
            seed,
        ))
    }

    /// [`Pca::try_fit`] for known-good data.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent lengths.
    pub fn fit(data: &[Vec<f32>], target_explained: f64, max_components: usize, seed: u64) -> Pca {
        Self::try_fit(data, target_explained, max_components, seed)
            .expect("pca needs non-empty samples of one dimension")
    }

    /// The fit itself, after input validation.
    fn fit_checked(
        data: &[Vec<f32>],
        target_explained: f64,
        max_components: usize,
        seed: u64,
    ) -> Pca {
        let dim = data[0].len();
        let n = data.len();
        let k_max = max_components.min(dim).min(n).max(1);

        // Centre the data.
        let mut mean = vec![0.0f32; dim];
        for row in data {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let centred: Vec<Vec<f32>> = data
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
            .collect();
        let total_variance: f32 = centred
            .iter()
            .flat_map(|r| r.iter().map(|&v| v * v))
            .sum::<f32>()
            / n as f32;

        if total_variance <= f32::EPSILON {
            // Degenerate: all samples identical.
            return Pca {
                mean,
                components: vec![unit_vector(dim, 0)],
                eigenvalues: vec![0.0],
                total_variance: 0.0,
            };
        }

        // Subspace iteration with k_max vectors.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut basis: Vec<Vec<f32>> = (0..k_max)
            .map(|_| {
                let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                v
            })
            .collect();
        orthonormalise(&mut basis);
        for _ in 0..30 {
            // W = Xᶜ V  (n × k), then V ← Xᶜᵀ W / n (d × k).
            let mut next: Vec<Vec<f32>> = vec![vec![0.0; dim]; basis.len()];
            for row in &centred {
                for (b, nx) in basis.iter().zip(next.iter_mut()) {
                    let proj: f32 = row.iter().zip(b).map(|(&r, &v)| r * v).sum();
                    for (nv, &r) in nx.iter_mut().zip(row) {
                        *nv += proj * r;
                    }
                }
            }
            for nx in &mut next {
                for v in nx.iter_mut() {
                    *v /= n as f32;
                }
            }
            basis = next;
            orthonormalise(&mut basis);
        }

        // Eigenvalues = variance along each basis vector.
        let mut eig: Vec<(f32, Vec<f32>)> = basis
            .into_iter()
            .map(|b| {
                let var: f32 = centred
                    .iter()
                    .map(|row| {
                        let p: f32 = row.iter().zip(&b).map(|(&r, &v)| r * v).sum();
                        p * p
                    })
                    .sum::<f32>()
                    / n as f32;
                (var, b)
            })
            .collect();
        eig.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

        // Keep components until the target explained variance is reached.
        let mut kept = Vec::new();
        let mut eigenvalues = Vec::new();
        let mut acc = 0.0f64;
        for (val, vec) in eig {
            kept.push(vec);
            eigenvalues.push(val);
            acc += f64::from(val);
            if acc / f64::from(total_variance) >= target_explained {
                break;
            }
        }
        Pca {
            mean,
            components: kept,
            eigenvalues,
            total_variance,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Fraction of total variance explained by the retained components.
    pub fn explained_ratio(&self) -> f64 {
        if self.total_variance <= f32::EPSILON {
            return 1.0;
        }
        f64::from(self.eigenvalues.iter().sum::<f32>()) / f64::from(self.total_variance)
    }

    /// Variance captured per component, descending.
    pub fn eigenvalues(&self) -> &[f32] {
        &self.eigenvalues
    }

    /// Projects a sample onto the retained components.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                x.iter()
                    .zip(&self.mean)
                    .zip(c)
                    .map(|((&v, &m), &cv)| (v - m) * cv)
                    .sum()
            })
            .collect()
    }
}

/// Modified Gram-Schmidt; drops near-zero vectors by re-randomising them
/// deterministically from their index.
fn orthonormalise(basis: &mut [Vec<f32>]) {
    let dim = basis[0].len();
    for i in 0..basis.len() {
        for j in 0..i {
            let dot: f32 = basis[i].iter().zip(&basis[j]).map(|(&a, &b)| a * b).sum();
            let (head, tail) = basis.split_at_mut(i);
            for (v, &w) in tail[0].iter_mut().zip(&head[j]) {
                *v -= dot * w;
            }
        }
        let norm: f32 = basis[i].iter().map(|&v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in &mut basis[i] {
                *v /= norm;
            }
        } else {
            basis[i] = unit_vector(dim, i % dim);
        }
    }
}

fn unit_vector(dim: usize, axis: usize) -> Vec<f32> {
    let mut v = vec![0.0; dim];
    v[axis] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn recovers_dominant_direction() {
        // Data spread along (1, 1)/√2 with small noise on (1, -1)/√2.
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                let t: f32 = rng.gen_range(-10.0..10.0);
                let n: f32 = rng.gen_range(-0.1..0.1);
                vec![t + n, t - n]
            })
            .collect();
        let pca = Pca::fit(&data, 0.9, 2, 0);
        assert_eq!(pca.n_components(), 1);
        // Component ≈ ±(0.707, 0.707).
        let c = &pca.transform(&[1.0, 1.0]);
        assert!(c[0].abs() > 1.3, "projection {c:?}");
    }

    #[test]
    fn explained_ratio_reaches_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..10).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let pca = Pca::fit(&data, 0.9, 10, 0);
        assert!(pca.explained_ratio() >= 0.9 - 1e-6);
    }

    #[test]
    fn identical_samples_degenerate_gracefully() {
        let data = vec![vec![3.0f32, 4.0]; 5];
        let pca = Pca::fit(&data, 0.9, 2, 0);
        assert_eq!(pca.n_components(), 1);
        assert_eq!(pca.transform(&[3.0, 4.0]), vec![0.0]);
    }

    #[test]
    fn transform_centres_data() {
        let data = vec![vec![1.0f32, 0.0], vec![3.0, 0.0]];
        let pca = Pca::fit(&data, 0.99, 2, 0);
        let a = pca.transform(&[1.0, 0.0]);
        let b = pca.transform(&[3.0, 0.0]);
        // Projections are symmetric about the mean.
        assert!((a[0] + b[0]).abs() < 1e-4, "{a:?} {b:?}");
    }

    #[test]
    fn eigenvalues_descend() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<Vec<f32>> = (0..80)
            .map(|_| {
                let a: f32 = rng.gen_range(-5.0..5.0);
                let b: f32 = rng.gen_range(-1.0..1.0);
                let c: f32 = rng.gen_range(-0.2..0.2);
                vec![a, b, c]
            })
            .collect();
        let pca = Pca::fit(&data, 0.999, 3, 0);
        let e = pca.eigenvalues();
        assert!(e.windows(2).all(|w| w[0] >= w[1] - 1e-6));
    }

    proptest! {
        /// Projections of training points are finite and bounded by the
        /// data scale.
        #[test]
        fn prop_transform_finite(seed in 0u64..32) {
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<Vec<f32>> = (0..30)
                .map(|_| (0..6).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
                .collect();
            let pca = Pca::fit(&data, 0.9, 6, seed);
            for row in &data {
                for v in pca.transform(row) {
                    prop_assert!(v.is_finite());
                    prop_assert!(v.abs() < 20.0);
                }
            }
        }
    }
}
