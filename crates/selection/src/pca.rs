//! Principal component analysis from scratch.
//!
//! PCA here runs on flattened layout clips (dimension = clip², up to a few
//! thousand) over libraries of up to tens of thousands of samples, so an
//! explicit covariance eigendecomposition is out of the question. Instead
//! we use **subspace iteration** on the *implicit* covariance
//! `C = Xᶜᵀ Xᶜ / n` (where `Xᶜ` is the centred data): repeatedly apply
//! `V ← orth(Xᶜᵀ (Xᶜ V) / n)`, which converges to the dominant
//! eigenvectors without ever materialising `C`.
//!
//! The centred data is flattened into one row-major `[n, d]` matrix and
//! each subspace iteration runs as two `pp_nn::gemm` calls — `W = XᶜBᵀ`
//! (`sgemm_nt`) then `B ← WᵀXᶜ / n` (`sgemm_tn`) with the basis stored
//! as component rows `[k, d]` — so the fit rides the same blocked
//! AVX-512/AVX2 kernels as the sampler. Under
//! `pp_nn::gemm::set_force_naive` the scalar reference kernels run
//! instead, reproducing the pre-rework nested-loop arithmetic exactly
//! (same reduction order), which is what the benchmark baseline and the
//! `pca_gemm_matches_reference` pin test rely on.

use crate::error::SelectionError;
use pp_nn::gemm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted PCA model.
///
/// # Example
///
/// ```
/// use pp_selection::Pca;
///
/// // Points on a line in 3D: one component explains everything.
/// let data: Vec<Vec<f32>> = (0..20)
///     .map(|i| vec![i as f32, 2.0 * i as f32, -i as f32])
///     .collect();
/// let pca = Pca::fit(&data, 0.9, 4, 0);
/// assert_eq!(pca.n_components(), 1);
/// assert!(pca.explained_ratio() > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// Row-major components, each of length `dim`.
    components: Vec<Vec<f32>>,
    /// Variance captured by each component.
    eigenvalues: Vec<f32>,
    /// Total variance of the (centred) data.
    total_variance: f32,
}

impl Pca {
    /// Fits PCA keeping the smallest number of components whose explained
    /// variance reaches `target_explained` (capped at `max_components`).
    ///
    /// Deterministic in `seed`.
    ///
    /// # Errors
    ///
    /// [`SelectionError::EmptyInput`] if `data` is empty,
    /// [`SelectionError::DimensionMismatch`] if rows have inconsistent
    /// lengths.
    pub fn try_fit(
        data: &[Vec<f32>],
        target_explained: f64,
        max_components: usize,
        seed: u64,
    ) -> Result<Pca, SelectionError> {
        if data.is_empty() {
            return Err(SelectionError::EmptyInput("pca sample set"));
        }
        let dim = data[0].len();
        if let Some(bad) = data.iter().find(|d| d.len() != dim) {
            return Err(SelectionError::DimensionMismatch {
                expected: dim,
                actual: bad.len(),
            });
        }
        Ok(Self::fit_checked(
            data,
            target_explained,
            max_components,
            seed,
        ))
    }

    /// [`Pca::try_fit`] for known-good data.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent lengths.
    pub fn fit(data: &[Vec<f32>], target_explained: f64, max_components: usize, seed: u64) -> Pca {
        Self::try_fit(data, target_explained, max_components, seed)
            .expect("pca needs non-empty samples of one dimension")
    }

    /// The fit itself, after input validation.
    fn fit_checked(
        data: &[Vec<f32>],
        target_explained: f64,
        max_components: usize,
        seed: u64,
    ) -> Pca {
        let dim = data[0].len();
        let n = data.len();
        let k_max = max_components.min(dim).min(n).max(1);

        // Centre the data into one flat row-major [n, d] matrix.
        let mut mean = vec![0.0f32; dim];
        for row in data {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut centred = vec![0.0f32; n * dim];
        for (flat, row) in centred.chunks_exact_mut(dim).zip(data) {
            for ((c, &v), &m) in flat.iter_mut().zip(row).zip(&mean) {
                *c = v - m;
            }
        }
        let total_variance: f32 = centred
            .chunks_exact(dim)
            .flat_map(|r| r.iter().map(|&v| v * v))
            .sum::<f32>()
            / n as f32;

        if total_variance <= f32::EPSILON {
            // Degenerate: all samples identical.
            return Pca {
                mean,
                components: vec![unit_vector(dim, 0)],
                eigenvalues: vec![0.0],
                total_variance: 0.0,
            };
        }

        // Subspace iteration: basis stored as component rows [k, d].
        let mut rng = StdRng::seed_from_u64(seed);
        let mut basis: Vec<f32> = (0..k_max * dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        orthonormalise(&mut basis, dim);
        let mut proj = vec![0.0f32; n * k_max];
        let mut next = vec![0.0f32; k_max * dim];
        for _ in 0..30 {
            // W = Xᶜ Bᵀ (n × k): every element is a row·component dot.
            gemm::sgemm_nt(n, dim, k_max, &centred, &basis, &mut proj, 0.0);
            // B ← Wᵀ Xᶜ / n (k × d): accumulates sample by sample in
            // index order, matching the reference loop bit for bit
            // under the naive kernels.
            gemm::sgemm_tn(k_max, n, dim, &proj, &centred, &mut next, 0.0);
            for v in &mut next {
                *v /= n as f32;
            }
            std::mem::swap(&mut basis, &mut next);
            orthonormalise(&mut basis, dim);
        }

        // Eigenvalues = variance along each basis vector, read off one
        // final projection pass.
        gemm::sgemm_nt(n, dim, k_max, &centred, &basis, &mut proj, 0.0);
        let mut eig: Vec<(f32, Vec<f32>)> = basis
            .chunks_exact(dim)
            .enumerate()
            .map(|(c, b)| {
                let var: f32 = proj
                    .chunks_exact(k_max)
                    .map(|row| row[c] * row[c])
                    .sum::<f32>()
                    / n as f32;
                (var, b.to_vec())
            })
            .collect();
        // total_cmp: a NaN variance (degenerate or poisoned input) must
        // sort deterministically, not panic the round.
        eig.sort_by(|a, b| b.0.total_cmp(&a.0));

        // Keep components until the target explained variance is reached.
        let mut kept = Vec::new();
        let mut eigenvalues = Vec::new();
        let mut acc = 0.0f64;
        for (val, vec) in eig {
            kept.push(vec);
            eigenvalues.push(val);
            acc += f64::from(val);
            if acc / f64::from(total_variance) >= target_explained {
                break;
            }
        }
        Pca {
            mean,
            components: kept,
            eigenvalues,
            total_variance,
        }
    }

    /// The pre-GEMM nested-loop fit, kept verbatim as the arithmetic
    /// reference: `fit_checked` under `gemm::set_force_naive` must
    /// reproduce it bit for bit (enforced by the `pca_gemm` integration
    /// test). Not part of the public API.
    #[doc(hidden)]
    pub fn fit_reference(
        data: &[Vec<f32>],
        target_explained: f64,
        max_components: usize,
        seed: u64,
    ) -> Pca {
        let dim = data[0].len();
        let n = data.len();
        let k_max = max_components.min(dim).min(n).max(1);

        let mut mean = vec![0.0f32; dim];
        for row in data {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let centred: Vec<Vec<f32>> = data
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
            .collect();
        let total_variance: f32 = centred
            .iter()
            .flat_map(|r| r.iter().map(|&v| v * v))
            .sum::<f32>()
            / n as f32;

        if total_variance <= f32::EPSILON {
            return Pca {
                mean,
                components: vec![unit_vector(dim, 0)],
                eigenvalues: vec![0.0],
                total_variance: 0.0,
            };
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut basis: Vec<f32> = (0..k_max * dim)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        orthonormalise(&mut basis, dim);
        let mut rows: Vec<Vec<f32>> = basis.chunks_exact(dim).map(<[f32]>::to_vec).collect();
        for _ in 0..30 {
            let mut next: Vec<Vec<f32>> = vec![vec![0.0; dim]; rows.len()];
            for row in &centred {
                for (b, nx) in rows.iter().zip(next.iter_mut()) {
                    let proj: f32 = row.iter().zip(b).map(|(&r, &v)| r * v).sum();
                    for (nv, &r) in nx.iter_mut().zip(row) {
                        *nv += proj * r;
                    }
                }
            }
            for nx in &mut next {
                for v in nx.iter_mut() {
                    *v /= n as f32;
                }
            }
            rows = next;
            let mut flat: Vec<f32> = rows.concat();
            orthonormalise(&mut flat, dim);
            rows = flat.chunks_exact(dim).map(<[f32]>::to_vec).collect();
        }

        let mut eig: Vec<(f32, Vec<f32>)> = rows
            .into_iter()
            .map(|b| {
                let var: f32 = centred
                    .iter()
                    .map(|row| {
                        let p: f32 = row.iter().zip(&b).map(|(&r, &v)| r * v).sum();
                        p * p
                    })
                    .sum::<f32>()
                    / n as f32;
                (var, b)
            })
            .collect();
        eig.sort_by(|a, b| b.0.total_cmp(&a.0));

        let mut kept = Vec::new();
        let mut eigenvalues = Vec::new();
        let mut acc = 0.0f64;
        for (val, vec) in eig {
            kept.push(vec);
            eigenvalues.push(val);
            acc += f64::from(val);
            if acc / f64::from(total_variance) >= target_explained {
                break;
            }
        }
        Pca {
            mean,
            components: kept,
            eigenvalues,
            total_variance,
        }
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Fraction of total variance explained by the retained components.
    pub fn explained_ratio(&self) -> f64 {
        if self.total_variance <= f32::EPSILON {
            return 1.0;
        }
        f64::from(self.eigenvalues.iter().sum::<f32>()) / f64::from(self.total_variance)
    }

    /// Variance captured per component, descending.
    pub fn eigenvalues(&self) -> &[f32] {
        &self.eigenvalues
    }

    /// Projects a sample onto the retained components.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                x.iter()
                    .zip(&self.mean)
                    .zip(c)
                    .map(|((&v, &m), &cv)| (v - m) * cv)
                    .sum()
            })
            .collect()
    }

    /// Projects many samples at once: one `[n, d]·[d, k]` GEMM instead
    /// of `n·k` scalar dot products. Agrees with mapping
    /// [`Pca::transform`] to float rounding (the blocked kernels split
    /// dot products across several accumulators); under
    /// `gemm::set_force_naive` the two are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the training dimension.
    pub fn transform_batch(&self, data: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let dim = self.mean.len();
        let n = data.len();
        let k = self.components.len();
        if n == 0 {
            return Vec::new();
        }
        let mut centred = vec![0.0f32; n * dim];
        for (flat, row) in centred.chunks_exact_mut(dim).zip(data) {
            assert_eq!(row.len(), dim, "dimension mismatch");
            for ((c, &v), &m) in flat.iter_mut().zip(row).zip(&self.mean) {
                *c = v - m;
            }
        }
        let flat_components: Vec<f32> = self.components.concat();
        let mut proj = vec![0.0f32; n * k];
        gemm::sgemm_nt(n, dim, k, &centred, &flat_components, &mut proj, 0.0);
        proj.chunks_exact(k).map(<[f32]>::to_vec).collect()
    }
}

/// Modified Gram-Schmidt over component rows of a flat `[k, d]` matrix;
/// drops near-zero vectors by replacing them with a deterministic axis
/// vector chosen from their index.
fn orthonormalise(basis: &mut [f32], dim: usize) {
    let k = basis.len() / dim;
    for i in 0..k {
        for j in 0..i {
            let (head, tail) = basis.split_at_mut(i * dim);
            let bi = &mut tail[..dim];
            let bj = &head[j * dim..(j + 1) * dim];
            let dot: f32 = bi.iter().zip(bj).map(|(&a, &b)| a * b).sum();
            for (v, &w) in bi.iter_mut().zip(bj) {
                *v -= dot * w;
            }
        }
        let bi = &mut basis[i * dim..(i + 1) * dim];
        let norm: f32 = bi.iter().map(|&v| v * v).sum::<f32>().sqrt();
        if norm > 1e-12 {
            for v in bi {
                *v /= norm;
            }
        } else {
            bi.fill(0.0);
            bi[i % dim] = 1.0;
        }
    }
}

fn unit_vector(dim: usize, axis: usize) -> Vec<f32> {
    let mut v = vec![0.0; dim];
    v[axis] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    #[test]
    fn recovers_dominant_direction() {
        // Data spread along (1, 1)/√2 with small noise on (1, -1)/√2.
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<Vec<f32>> = (0..200)
            .map(|_| {
                let t: f32 = rng.gen_range(-10.0..10.0);
                let n: f32 = rng.gen_range(-0.1..0.1);
                vec![t + n, t - n]
            })
            .collect();
        let pca = Pca::fit(&data, 0.9, 2, 0);
        assert_eq!(pca.n_components(), 1);
        // Component ≈ ±(0.707, 0.707).
        let c = &pca.transform(&[1.0, 1.0]);
        assert!(c[0].abs() > 1.3, "projection {c:?}");
    }

    #[test]
    fn explained_ratio_reaches_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let data: Vec<Vec<f32>> = (0..100)
            .map(|_| (0..10).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let pca = Pca::fit(&data, 0.9, 10, 0);
        assert!(pca.explained_ratio() >= 0.9 - 1e-6);
    }

    #[test]
    fn identical_samples_degenerate_gracefully() {
        let data = vec![vec![3.0f32, 4.0]; 5];
        let pca = Pca::fit(&data, 0.9, 2, 0);
        assert_eq!(pca.n_components(), 1);
        assert_eq!(pca.transform(&[3.0, 4.0]), vec![0.0]);
    }

    #[test]
    fn transform_centres_data() {
        let data = vec![vec![1.0f32, 0.0], vec![3.0, 0.0]];
        let pca = Pca::fit(&data, 0.99, 2, 0);
        let a = pca.transform(&[1.0, 0.0]);
        let b = pca.transform(&[3.0, 0.0]);
        // Projections are symmetric about the mean.
        assert!((a[0] + b[0]).abs() < 1e-4, "{a:?} {b:?}");
    }

    #[test]
    fn nan_input_does_not_panic() {
        // Regression: the eigenvalue sort used partial_cmp().unwrap(),
        // which panicked the whole round when a poisoned feature slipped
        // in. total_cmp must order NaNs deterministically instead.
        let mut data: Vec<Vec<f32>> = (0..10)
            .map(|i| vec![i as f32, f32::NAN, -(i as f32)])
            .collect();
        let pca = Pca::fit(&data, 0.9, 3, 0);
        assert!(pca.n_components() >= 1);
        // A fully degenerate (constant) clean column alongside the NaN
        // column must also survive.
        for row in &mut data {
            row[1] = 7.0;
            row[2] = f32::NAN;
        }
        let pca = Pca::fit(&data, 0.9, 3, 1);
        assert!(pca.n_components() >= 1);
    }

    #[test]
    fn transform_batch_matches_transform() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<Vec<f32>> = (0..40)
            .map(|_| (0..12).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
            .collect();
        let pca = Pca::fit(&data, 0.95, 8, 4);
        let batch = pca.transform_batch(&data);
        for (row, projected) in data.iter().zip(&batch) {
            for (a, b) in pca.transform(row).iter().zip(projected) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
        assert!(pca.transform_batch(&[]).is_empty());
    }

    #[test]
    fn eigenvalues_descend() {
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<Vec<f32>> = (0..80)
            .map(|_| {
                let a: f32 = rng.gen_range(-5.0..5.0);
                let b: f32 = rng.gen_range(-1.0..1.0);
                let c: f32 = rng.gen_range(-0.2..0.2);
                vec![a, b, c]
            })
            .collect();
        let pca = Pca::fit(&data, 0.999, 3, 0);
        let e = pca.eigenvalues();
        assert!(e.windows(2).all(|w| w[0] >= w[1] - 1e-6));
    }

    proptest! {
        /// Projections of training points are finite and bounded by the
        /// data scale.
        #[test]
        fn prop_transform_finite(seed in 0u64..32) {
            let mut rng = StdRng::seed_from_u64(seed);
            let data: Vec<Vec<f32>> = (0..30)
                .map(|_| (0..6).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
                .collect();
            let pca = Pca::fit(&data, 0.9, 6, seed);
            for row in &data {
                for v in pca.transform(row) {
                    prop_assert!(v.is_finite());
                    prop_assert!(v.abs() < 20.0);
                }
            }
        }
    }
}
