//! PCA-based representative layout selection (paper Algorithm 2).
//!
//! Between PatternPaint iterations, a handful of *representative* layouts
//! is picked from the growing library to seed the next round of
//! inpainting. The paper does this with PCA (keeping 90 % explained
//! variance) followed by constrained farthest-point selection.
//!
//! * [`Pca`] — principal component analysis from scratch (subspace
//!   iteration on the implicit covariance; no external linear algebra);
//! * [`select_representatives`] — greedy farthest-point selection with an
//!   arbitrary per-sample constraint;
//! * [`PcaSelector`] — the glue used by the pipeline: flatten layouts,
//!   fit PCA to a target explained variance, select under a density
//!   ceiling (the paper uses 40 %).
//!
//! # Example
//!
//! ```
//! use pp_selection::PcaSelector;
//! use pp_pdk::SynthNode;
//!
//! let library = SynthNode::default().starter_patterns();
//! let selector = PcaSelector::new(0.9, 0.4, 7);
//! let picks = selector.select(&library, 5);
//! assert_eq!(picks.len(), 5);
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod pca;
pub mod select;

pub use error::SelectionError;
pub use pca::Pca;
pub use select::select_representatives;

use pp_geometry::Layout;

/// Pipeline-facing selector: PCA reduction + constrained farthest-point.
///
/// See the crate docs for the role this plays in iterative generation.
#[derive(Debug, Clone)]
pub struct PcaSelector {
    target_explained: f64,
    max_density: f64,
    seed: u64,
}

impl PcaSelector {
    /// Creates a selector.
    ///
    /// * `target_explained` — keep principal components until this
    ///   fraction of variance is explained (paper: 0.9);
    /// * `max_density` — only layouts with metal density at most this are
    ///   eligible (paper: 0.4), keeping room for inpainting to add shapes;
    /// * `seed` — seeds the initial random pick and PCA iteration.
    ///
    /// # Errors
    ///
    /// [`SelectionError::InvalidParam`] unless `0 < target_explained <= 1`
    /// and `0 < max_density <= 1`.
    pub fn try_new(
        target_explained: f64,
        max_density: f64,
        seed: u64,
    ) -> Result<Self, SelectionError> {
        if !(target_explained > 0.0 && target_explained <= 1.0) {
            return Err(SelectionError::InvalidParam {
                what: "target_explained",
                range: "(0, 1]",
                value: target_explained,
            });
        }
        if !(max_density > 0.0 && max_density <= 1.0) {
            return Err(SelectionError::InvalidParam {
                what: "max_density",
                range: "(0, 1]",
                value: max_density,
            });
        }
        Ok(PcaSelector {
            target_explained,
            max_density,
            seed,
        })
    }

    /// [`PcaSelector::try_new`] for known-good parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_explained <= 1` and `0 < max_density <= 1`.
    pub fn new(target_explained: f64, max_density: f64, seed: u64) -> Self {
        Self::try_new(target_explained, max_density, seed)
            .expect("selector parameters must be in (0, 1]")
    }

    /// Picks `k` representative indices from `library`.
    ///
    /// If fewer than `k` layouts satisfy the density constraint, the
    /// constraint is relaxed for the remainder (the paper's constraint
    /// `C` is a filter, not a hard failure). Returns fewer than `k`
    /// indices only when the library itself is smaller than `k`.
    pub fn select(&self, library: &[Layout], k: usize) -> Vec<usize> {
        if library.is_empty() || k == 0 {
            return Vec::new();
        }
        let data: Vec<Vec<f32>> = library.iter().map(flatten).collect();
        let pca = Pca::fit(&data, self.target_explained, 32, self.seed);
        let features = pca.transform_batch(&data);
        let densities: Vec<f64> = library.iter().map(Layout::density).collect();
        let max_density = self.max_density;
        let eligible = |i: usize| densities[i] <= max_density;
        let mut picks = select_representatives(&features, k, eligible, self.seed);
        if picks.len() < k.min(library.len()) {
            // Relax the constraint for the remainder.
            let mut more = select_representatives(&features, k, |_| true, self.seed ^ 0x9e37);
            more.retain(|i| !picks.contains(i));
            picks.extend(more.into_iter().take(k - picks.len()));
        }
        picks
    }
}

/// Flattens a layout into a ±1 feature vector.
fn flatten(layout: &Layout) -> Vec<f32> {
    layout.iter().map(|b| if b { 1.0 } else { -1.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_pdk::SynthNode;

    #[test]
    fn selects_requested_count() {
        let library = SynthNode::default().starter_patterns();
        let picks = PcaSelector::new(0.9, 0.4, 1).select(&library, 6);
        assert_eq!(picks.len(), 6);
        let set: std::collections::HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 6, "picks must be distinct");
    }

    #[test]
    fn respects_density_when_possible() {
        let library = SynthNode::default().starter_patterns();
        let picks = PcaSelector::new(0.9, 0.25, 2).select(&library, 3);
        for &i in &picks {
            assert!(library[i].density() <= 0.25 + 1e-9);
        }
    }

    #[test]
    fn relaxes_constraint_when_starved() {
        let library = SynthNode::default().starter_patterns();
        // Impossible density ceiling: everything violates; still returns k.
        let picks = PcaSelector::new(0.9, 0.0001, 3).select(&library, 4);
        assert_eq!(picks.len(), 4);
    }

    #[test]
    fn empty_library_gives_empty() {
        assert!(PcaSelector::new(0.9, 0.4, 0).select(&[], 5).is_empty());
    }

    #[test]
    fn try_new_reports_bad_params() {
        assert!(matches!(
            PcaSelector::try_new(0.0, 0.4, 0).unwrap_err(),
            SelectionError::InvalidParam {
                what: "target_explained",
                ..
            }
        ));
        assert!(matches!(
            PcaSelector::try_new(0.9, 1.5, 0).unwrap_err(),
            SelectionError::InvalidParam {
                what: "max_density",
                ..
            }
        ));
        assert!(PcaSelector::try_new(0.9, 0.4, 0).is_ok());
        assert_eq!(
            Pca::try_fit(&[], 0.9, 4, 0).unwrap_err(),
            SelectionError::EmptyInput("pca sample set")
        );
        assert!(matches!(
            Pca::try_fit(&[vec![1.0, 2.0], vec![1.0]], 0.9, 4, 0).unwrap_err(),
            SelectionError::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn deterministic_in_seed() {
        let library = SynthNode::default().starter_patterns();
        let a = PcaSelector::new(0.9, 0.4, 5).select(&library, 5);
        let b = PcaSelector::new(0.9, 0.4, 5).select(&library, 5);
        assert_eq!(a, b);
    }
}
