//! Constrained farthest-point selection (paper Algorithm 2, lines 2-10).
//!
//! Distances run through `pp_nn::gemm`: each greedy step computes the
//! dot products of the newly chosen sample against the whole feature
//! matrix as one skinny `[n, d]·[d, 1]` GEMM and recovers Euclidean
//! distances from precomputed row norms
//! (`‖a − b‖² = ‖a‖² + ‖b‖² − 2·a·b`). Under
//! `pp_nn::gemm::set_force_naive` the original per-pair difference loop
//! runs instead, preserving the pre-rework arithmetic for benchmark
//! baselines. Both paths are deterministic in `seed`; picks can differ
//! between them only by float rounding on near-ties.

use pp_nn::gemm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distance backend for one selection run.
enum Distances<'a> {
    /// The pre-rework per-pair loop (the `force_naive` baseline).
    Reference(&'a [Vec<f32>]),
    /// GEMM dots + row norms.
    Gemm {
        flat: Vec<f32>,
        norms: Vec<f32>,
        dim: usize,
        /// Dot products of the last prepared sample against all rows.
        dots: Vec<f32>,
    },
}

impl<'a> Distances<'a> {
    fn new(features: &'a [Vec<f32>]) -> Self {
        if gemm::force_naive() {
            return Distances::Reference(features);
        }
        let dim = features.first().map_or(0, Vec::len);
        let flat: Vec<f32> = features.concat();
        let norms: Vec<f32> = features
            .iter()
            .map(|f| f.iter().map(|&v| v * v).sum())
            .collect();
        Distances::Gemm {
            flat,
            norms,
            dim,
            dots: vec![0.0; features.len()],
        }
    }

    /// Makes `chosen` the reference point for subsequent [`Self::to`]
    /// calls (one GEMM over the whole matrix on the fast path).
    fn prepare(&mut self, chosen: usize) {
        if let Distances::Gemm {
            flat, dim, dots, ..
        } = self
        {
            let n = dots.len();
            let b = &flat[chosen * *dim..(chosen + 1) * *dim];
            gemm::sgemm_nt(n, *dim, 1, flat, b, dots, 0.0);
        }
    }

    /// Euclidean distance from the prepared sample to row `i`.
    fn to(&self, chosen: usize, i: usize) -> f32 {
        match self {
            Distances::Reference(features) => euclidean(&features[i], &features[chosen]),
            Distances::Gemm { norms, dots, .. } => {
                (norms[i] + norms[chosen] - 2.0 * dots[i]).max(0.0).sqrt()
            }
        }
    }
}

/// Greedily selects up to `k` diverse samples from `features`.
///
/// Follows the paper's Algorithm 2: start from a random eligible sample,
/// then repeatedly add the eligible sample maximising the *sum* of
/// Euclidean distances to everything already selected.
///
/// `eligible(i)` encodes the constraint set `C` (e.g. a density ceiling);
/// ineligible samples are never selected. Returns fewer than `k` indices
/// when fewer eligible samples exist. Deterministic in `seed`.
///
/// # Example
///
/// ```
/// use pp_selection::select_representatives;
///
/// let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let picks = select_representatives(&pts, 2, |_| true, 0);
/// // The two picks always straddle the two clusters.
/// let (a, b) = (picks[0].min(picks[1]), picks[0].max(picks[1]));
/// assert!(a <= 1 && b >= 2);
/// ```
pub fn select_representatives<F>(
    features: &[Vec<f32>],
    k: usize,
    eligible: F,
    seed: u64,
) -> Vec<usize>
where
    F: Fn(usize) -> bool,
{
    let candidates: Vec<usize> = (0..features.len()).filter(|&i| eligible(i)).collect();
    if candidates.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut remaining: Vec<usize> = candidates.clone();
    let mut distances = Distances::new(features);

    // Line 3: initial random sample.
    let first = remaining.swap_remove(rng.gen_range(0..remaining.len()));
    selected.push(first);

    // Running sum of distances from each remaining sample to the selected
    // set, updated incrementally (O(n·k) total instead of O(n·k²)).
    distances.prepare(first);
    let mut dist_sum: Vec<f32> = remaining.iter().map(|&i| distances.to(first, i)).collect();

    while selected.len() < k && !remaining.is_empty() {
        // Line 8: farthest point subject to constraints.
        let (best_pos, _) = dist_sum
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("remaining is non-empty");
        let chosen = remaining.swap_remove(best_pos);
        dist_sum.swap_remove(best_pos);
        distances.prepare(chosen);
        for (pos, &i) in remaining.iter().enumerate() {
            dist_sum[pos] += distances.to(chosen, i);
        }
        selected.push(chosen);
    }
    selected
}

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn clusters() -> Vec<Vec<f32>> {
        vec![
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![8.0, 8.0],
            vec![8.1, 8.2],
            vec![-8.0, 8.0],
        ]
    }

    #[test]
    fn covers_clusters() {
        let picks = select_representatives(&clusters(), 3, |_| true, 42);
        assert_eq!(picks.len(), 3);
        // One pick from each spatial cluster.
        let near = |i: usize, x: f32, y: f32| {
            let p = &clusters()[i];
            (p[0] - x).abs() < 1.0 && (p[1] - y).abs() < 1.0
        };
        assert!(picks.iter().any(|&i| near(i, 0.0, 0.0)));
        assert!(picks.iter().any(|&i| near(i, 8.0, 8.0)));
        assert!(picks.iter().any(|&i| near(i, -8.0, 8.0)));
    }

    #[test]
    fn respects_constraint() {
        // Only even indices eligible.
        let picks = select_representatives(&clusters(), 3, |i| i % 2 == 0, 0);
        assert!(picks.iter().all(|&i| i % 2 == 0));
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn returns_fewer_when_starved() {
        let picks = select_representatives(&clusters(), 5, |i| i < 2, 0);
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn empty_when_no_candidates() {
        assert!(select_representatives(&clusters(), 3, |_| false, 0).is_empty());
        assert!(select_representatives(&[], 3, |_| true, 0).is_empty());
    }

    #[test]
    fn deterministic() {
        let a = select_representatives(&clusters(), 4, |_| true, 9);
        let b = select_representatives(&clusters(), 4, |_| true, 9);
        assert_eq!(a, b);
    }

    proptest! {
        /// Picks are always distinct, eligible, and at most k.
        #[test]
        fn prop_valid_picks(seed in 0u64..64, k in 1usize..8) {
            let picks = select_representatives(&clusters(), k, |i| i != 1, seed);
            let set: std::collections::HashSet<_> = picks.iter().collect();
            prop_assert_eq!(set.len(), picks.len());
            prop_assert!(picks.len() <= k);
            prop_assert!(picks.iter().all(|&i| i != 1));
        }

        /// With k=2 on two far clusters, picks never land in one cluster.
        #[test]
        fn prop_spreads(seed in 0u64..64) {
            let pts = vec![vec![0.0f32], vec![0.1], vec![100.0], vec![100.1]];
            let picks = select_representatives(&pts, 2, |_| true, seed);
            let lo = picks.iter().filter(|&&i| i < 2).count();
            prop_assert_eq!(lo, 1);
        }
    }
}
