//! Typed errors for selector construction and fitting.

use std::fmt;

/// Why a selector or PCA fit could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionError {
    /// A parameter was outside its valid range (`what` names it, with
    /// the range it must lie in).
    InvalidParam {
        /// Parameter name.
        what: &'static str,
        /// Human-readable valid range, e.g. `"(0, 1]"`.
        range: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fit received no samples (`what` names the input).
    EmptyInput(&'static str),
    /// Samples disagree about their feature dimension.
    DimensionMismatch {
        /// Dimension of the first sample.
        expected: usize,
        /// Dimension of the offending sample.
        actual: usize,
    },
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::InvalidParam { what, range, value } => {
                write!(f, "{what} must be in {range}, got {value}")
            }
            SelectionError::EmptyInput(what) => write!(f, "{what} must be non-empty"),
            SelectionError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "samples must share one dimension, got {actual} after {expected}"
                )
            }
        }
    }
}

impl std::error::Error for SelectionError {}
