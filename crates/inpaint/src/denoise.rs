//! Denoising schemes for raw diffusion output (paper Algorithm 1 and
//! the Table III comparison points).

use pp_geometry::{scan_lines_x, scan_lines_y, GrayImage, Layout, SquishPattern};

/// Turns a raw (continuous, edge-noisy) generated image into a binary
/// Manhattan layout.
pub trait Denoiser {
    /// Denoises `noisy` given the pre-inpainting `template` layout.
    fn denoise(&self, noisy: &GrayImage, template: &Layout) -> Layout;

    /// Denoises straight to the *canonical* squish form of the layout
    /// [`Denoiser::denoise`] would produce, i.e. this must always equal
    /// `SquishPattern::from_layout(&self.denoise(noisy, template))`.
    ///
    /// The round tail runs DRC, deduplication and diversity metrics on
    /// the squish form, so denoisers that build a squish internally
    /// (notably [`TemplateDenoiser`]) override this to skip the
    /// rasterise + rescan round trip the default performs.
    fn denoise_squish(&self, noisy: &GrayImage, template: &Layout) -> SquishPattern {
        SquishPattern::from_layout(&self.denoise(noisy, template))
    }

    /// [`Denoiser::denoise_squish`] with the template's scan lines
    /// precomputed by the caller.
    ///
    /// Generation rounds fan one template out into thousands of
    /// variations; callers that cache `scan_lines_x/y(template)` per
    /// template hand them in here so line extraction is not repeated
    /// per sample. `lt_x`/`lt_y` must equal the template's scan lines —
    /// the default ignores them and recomputes whatever it needs.
    fn denoise_squish_with_template_lines(
        &self,
        noisy: &GrayImage,
        template: &Layout,
        _lt_x: &[u32],
        _lt_y: &[u32],
    ) -> SquishPattern {
        self.denoise_squish(noisy, template)
    }

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Template-based denoising (paper Algorithm 1).
///
/// Inpainting alters only a sub-region of the clip, so the scan lines of
/// the *starter* pattern are trustworthy. The algorithm:
///
/// 1. extracts scan lines from the thresholded noisy image;
/// 2. clusters lines lying within `threshold` of each other;
/// 3. snaps each cluster to the nearest template scan line when one is
///    within `threshold`, otherwise keeps a representative line of the
///    cluster (a genuinely new edge introduced by generation);
/// 4. rebuilds the topology over the final lines by majority vote and
///    reconstructs the layout.
///
/// The paper reports this scheme lifts legality from zero (no denoise)
/// and beats OpenCV non-local means by ~10×; `pp-bench --bin table3`
/// reproduces that comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateDenoiser {
    threshold: u32,
}

impl TemplateDenoiser {
    /// Creates the denoiser with a clustering/matching threshold in
    /// pixels (the paper's `T`; 2 is a good default at 32×32).
    pub fn new(threshold: u32) -> Self {
        TemplateDenoiser { threshold }
    }

    /// The matching threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Snaps one axis' noisy lines to template lines.
    fn snap_lines(&self, noisy: &[u32], template: &[u32], extent: u32) -> Vec<u32> {
        let t = self.threshold;
        // Interior lines only; borders are fixed.
        let interior: Vec<u32> = noisy
            .iter()
            .copied()
            .filter(|&l| l != 0 && l != extent)
            .collect();
        // Cluster sorted lines so each cluster has diameter <= T
        // (Algorithm 1 line 3: ∥Lg(i) − Lg(j)∥ ≤ T for all pairs).
        let mut out: Vec<u32> = vec![0];
        let mut i = 0;
        while i < interior.len() {
            let mut j = i + 1;
            while j < interior.len() && interior[j] - interior[i] <= t {
                j += 1;
            }
            let cluster = &interior[i..j];
            let centre = cluster[cluster.len() / 2];
            // Nearest template line (line 5 of Algorithm 1).
            let snapped = template
                .iter()
                .copied()
                .min_by_key(|&l| l.abs_diff(centre))
                .filter(|&l| l.abs_diff(centre) <= t)
                // Line 9: no template match — keep a representative.
                .unwrap_or(centre);
            if snapped != 0 && snapped != extent && Some(&snapped) != out.last() {
                out.push(snapped);
            }
            i = j;
        }
        out.push(extent);
        out.dedup();
        out
    }

    /// The fused snap-to-squish core: threshold, extract generated
    /// lines, snap to the given template lines, majority-vote the
    /// topology, and canonicalise — no full-raster reconstruction.
    fn squish_from_lines(&self, noisy: &GrayImage, lt_x: &[u32], lt_y: &[u32]) -> SquishPattern {
        let binary = noisy.to_layout(0.0);
        let lg_x = scan_lines_x(&binary);
        let lg_y = scan_lines_y(&binary);
        let xs = self.snap_lines(&lg_x, lt_x, binary.width());
        let ys = self.snap_lines(&lg_y, lt_y, binary.height());
        SquishPattern::from_layout_with_lines(&binary, &xs, &ys).canonicalize()
    }
}

impl Denoiser for TemplateDenoiser {
    fn denoise(&self, noisy: &GrayImage, template: &Layout) -> Layout {
        let binary = noisy.to_layout(0.0);
        let lg_x = scan_lines_x(&binary);
        let lg_y = scan_lines_y(&binary);
        let lt_x = scan_lines_x(template);
        let lt_y = scan_lines_y(template);
        let xs = self.snap_lines(&lg_x, &lt_x, binary.width());
        let ys = self.snap_lines(&lg_y, &lt_y, binary.height());
        // Rebuild the topology matrix over the snapped lines (lines
        // 10-11 of Algorithm 1): majority vote absorbs the edge noise.
        SquishPattern::from_layout_with_lines(&binary, &xs, &ys).to_layout()
    }

    fn denoise_squish(&self, noisy: &GrayImage, template: &Layout) -> SquishPattern {
        let lt_x = scan_lines_x(template);
        let lt_y = scan_lines_y(template);
        self.squish_from_lines(noisy, &lt_x, &lt_y)
    }

    fn denoise_squish_with_template_lines(
        &self,
        noisy: &GrayImage,
        _template: &Layout,
        lt_x: &[u32],
        lt_y: &[u32],
    ) -> SquishPattern {
        self.squish_from_lines(noisy, lt_x, lt_y)
    }

    fn name(&self) -> &'static str {
        "template"
    }
}

/// Non-local means (the OpenCV `fastNlMeansDenoising` stand-in used as
/// the conventional-denoiser baseline in Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NlmDenoiser {
    /// Filter strength (weights decay as `exp(-d²/h²)`).
    pub h: f32,
    /// Patch radius (patch side = 2r+1).
    pub patch: u32,
    /// Search-window radius.
    pub window: u32,
}

impl NlmDenoiser {
    /// OpenCV-like defaults (h=0.6 on the ±1 pixel scale, 3×3 patches,
    /// 7×7 windows).
    pub fn new() -> Self {
        NlmDenoiser {
            h: 0.6,
            patch: 1,
            window: 3,
        }
    }

    fn patch_distance(img: &GrayImage, ax: i64, ay: i64, bx: i64, by: i64, r: i64) -> f32 {
        let (w, h) = (i64::from(img.width()), i64::from(img.height()));
        let mut d = 0.0f32;
        let mut n = 0;
        for dy in -r..=r {
            for dx in -r..=r {
                let (p, q) = ((ax + dx, ay + dy), (bx + dx, by + dy));
                if p.0 >= 0
                    && p.0 < w
                    && p.1 >= 0
                    && p.1 < h
                    && q.0 >= 0
                    && q.0 < w
                    && q.1 >= 0
                    && q.1 < h
                {
                    let a = img.get(p.0 as u32, p.1 as u32);
                    let b = img.get(q.0 as u32, q.1 as u32);
                    d += (a - b) * (a - b);
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            d / n as f32
        }
    }
}

impl Default for NlmDenoiser {
    fn default() -> Self {
        NlmDenoiser::new()
    }
}

impl Denoiser for NlmDenoiser {
    fn denoise(&self, noisy: &GrayImage, _template: &Layout) -> Layout {
        let (w, h) = (noisy.width(), noisy.height());
        let mut out = GrayImage::filled(w, h, 0.0);
        let (r, win) = (i64::from(self.patch), i64::from(self.window));
        let h2 = self.h * self.h;
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                let mut norm = 0.0f32;
                for dy in -win..=win {
                    for dx in -win..=win {
                        let (nx, ny) = (i64::from(x) + dx, i64::from(y) + dy);
                        if nx < 0 || ny < 0 || nx >= i64::from(w) || ny >= i64::from(h) {
                            continue;
                        }
                        let d = Self::patch_distance(noisy, i64::from(x), i64::from(y), nx, ny, r);
                        let wgt = (-d / h2).exp();
                        acc += wgt * noisy.get(nx as u32, ny as u32);
                        norm += wgt;
                    }
                }
                out.set(x, y, acc / norm.max(1e-12));
            }
        }
        out.to_layout(0.0)
    }

    fn name(&self) -> &'static str {
        "nlm"
    }
}

/// No denoising: plain 0-threshold binarisation (the "W/o Denoise"
/// column of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThresholdDenoiser;

impl ThresholdDenoiser {
    /// Creates the pass-through denoiser.
    pub fn new() -> Self {
        ThresholdDenoiser
    }
}

impl Denoiser for ThresholdDenoiser {
    fn denoise(&self, noisy: &GrayImage, _template: &Layout) -> Layout {
        noisy.to_layout(0.0)
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Rect;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn template() -> Layout {
        let mut l = Layout::new(32, 32);
        l.fill_rect(Rect::new(4, 4, 3, 24));
        l.fill_rect(Rect::new(12, 4, 3, 24));
        l
    }

    /// Adds ±1px edge jitter and greyscale noise to a layout image.
    fn noisy_version(l: &Layout, seed: u64) -> GrayImage {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = GrayImage::from_layout(l);
        for y in 0..l.height() {
            for x in 1..l.width() {
                // Jitter vertical edges by one pixel occasionally.
                if l.get(x, y) != l.get(x - 1, y) && rng.gen_bool(0.3) {
                    let v = img.get(x, y);
                    img.set(x - 1, y, v);
                }
            }
        }
        for p in img.as_pixels_mut() {
            *p += rng.gen_range(-0.3f32..0.3);
        }
        img
    }

    #[test]
    fn clean_image_is_fixed_point() {
        let t = template();
        let img = GrayImage::from_layout(&t);
        assert_eq!(TemplateDenoiser::new(2).denoise(&img, &t), t);
    }

    #[test]
    fn template_denoiser_recovers_jittered_edges() {
        let t = template();
        let noisy = noisy_version(&t, 1);
        let out = TemplateDenoiser::new(2).denoise(&noisy, &t);
        assert_eq!(out, t, "snapping should restore the template geometry");
    }

    #[test]
    fn genuinely_new_edges_survive() {
        // The "generated" image has a wire at a position far from any
        // template line; the denoiser must keep it (Algorithm 1 line 9).
        let t = template();
        let mut generated = template();
        generated.fill_rect(Rect::new(22, 4, 3, 24));
        let img = GrayImage::from_layout(&generated);
        let out = TemplateDenoiser::new(2).denoise(&img, &t);
        assert_eq!(out, generated);
    }

    #[test]
    fn nlm_smooths_isolated_noise() {
        let t = template();
        let mut img = GrayImage::from_layout(&t);
        // One flipped pixel deep inside empty space.
        img.set(25, 25, 1.0);
        let out = NlmDenoiser::new().denoise(&img, &t);
        assert!(!out.get(25, 25), "nlm should remove salt noise");
    }

    #[test]
    fn threshold_denoiser_is_identity_on_binary() {
        let t = template();
        let img = GrayImage::from_layout(&t);
        assert_eq!(ThresholdDenoiser::new().denoise(&img, &t), t);
    }

    #[test]
    fn template_beats_nlm_on_edge_noise() {
        // The headline Table III effect in miniature: measure how often
        // each scheme reconstructs the exact template from noisy input.
        let t = template();
        let td = TemplateDenoiser::new(2);
        let nlm = NlmDenoiser::new();
        let none = ThresholdDenoiser::new();
        let mut wins = [0u32; 3];
        for seed in 0..10 {
            let noisy = noisy_version(&t, seed);
            if td.denoise(&noisy, &t) == t {
                wins[0] += 1;
            }
            if nlm.denoise(&noisy, &t) == t {
                wins[1] += 1;
            }
            if none.denoise(&noisy, &t) == t {
                wins[2] += 1;
            }
        }
        assert!(wins[0] >= 9, "template denoiser too weak: {wins:?}");
        assert!(wins[0] > wins[1], "template should beat nlm: {wins:?}");
        assert!(wins[1] >= wins[2], "nlm should beat nothing: {wins:?}");
    }

    #[test]
    fn denoise_squish_matches_denoise_then_squish() {
        // The fused squish path must be indistinguishable from rasterise
        // + rescan for every denoiser, over clean and noisy inputs alike.
        let t = template();
        let td = TemplateDenoiser::new(2);
        let lt_x = pp_geometry::scan_lines_x(&t);
        let lt_y = pp_geometry::scan_lines_y(&t);
        for seed in 0..16 {
            let noisy = noisy_version(&t, seed);
            let reference = SquishPattern::from_layout(&td.denoise(&noisy, &t));
            assert_eq!(td.denoise_squish(&noisy, &t), reference, "seed {seed}");
            assert_eq!(
                td.denoise_squish_with_template_lines(&noisy, &t, &lt_x, &lt_y),
                reference,
                "seed {seed} (cached template lines)"
            );
        }
        let nlm = NlmDenoiser::new();
        let noisy = noisy_version(&t, 3);
        assert_eq!(
            nlm.denoise_squish(&noisy, &t),
            SquishPattern::from_layout(&nlm.denoise(&noisy, &t))
        );
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(TemplateDenoiser::new(2).name(), NlmDenoiser::new().name());
        assert_ne!(NlmDenoiser::new().name(), ThresholdDenoiser::new().name());
    }
}
