//! Masks and denoising for inpainting-based pattern generation.
//!
//! Two of PatternPaint's four components live here:
//!
//! * the **predefined mask sets** of the paper's Figure 6 — a default set
//!   (corner + centre regions enabling wire modification and inter-track
//!   connections) and a horizontal set (bands that exercise end-to-end
//!   rules on vertical-track layouts), each selected *sequentially*
//!   across iterations ([`MaskSchedule`]);
//! * the **template-based denoising** of Algorithm 1
//!   ([`TemplateDenoiser`]) — the step that turns the lossy diffusion
//!   output back into an on-grid Manhattan layout by snapping noisy scan
//!   lines to the starter pattern's scan lines, plus the two comparison
//!   schemes of Table III: a from-scratch non-local-means filter
//!   ([`NlmDenoiser`], the OpenCV stand-in) and no denoising at all
//!   ([`ThresholdDenoiser`]).
//!
//! # Example
//!
//! ```
//! use pp_inpaint::{Denoiser, TemplateDenoiser, MaskSet};
//! use pp_geometry::{GrayImage, Layout, Rect};
//!
//! let mut template = Layout::new(32, 32);
//! template.fill_rect(Rect::new(4, 4, 3, 20));
//! // A "noisy" image that is actually clean: denoising must be a no-op.
//! let noisy = GrayImage::from_layout(&template);
//! let denoised = TemplateDenoiser::new(2).denoise(&noisy, &template);
//! assert_eq!(denoised, template);
//! assert_eq!(MaskSet::Default.masks(32).len(), 5);
//! ```

#![forbid(unsafe_code)]

pub mod denoise;
pub mod masks;

pub use denoise::{Denoiser, NlmDenoiser, TemplateDenoiser, ThresholdDenoiser};
pub use masks::{Mask, MaskError, MaskSchedule, MaskSet};
