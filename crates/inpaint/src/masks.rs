//! Predefined inpainting mask sets (paper Figure 6).

use pp_geometry::{GrayImage, Rect};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a mask (set) could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskError {
    /// The requested region does not fit inside the clip.
    RegionOutOfBounds {
        /// Clip side length.
        side: u32,
        /// The offending region.
        region: Rect,
    },
    /// The clip is too small for the predefined mask sets.
    ClipTooSmall {
        /// Clip side length.
        side: u32,
        /// Minimum supported side length.
        min: u32,
    },
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskError::RegionOutOfBounds { side, region } => {
                write!(
                    f,
                    "mask region {region:?} must fit in the {side}x{side} clip"
                )
            }
            MaskError::ClipTooSmall { side, min } => {
                write!(
                    f,
                    "clip side {side} too small for the predefined masks (min {min})"
                )
            }
        }
    }
}

impl std::error::Error for MaskError {}

/// A binary inpainting mask: 1 marks the region to regenerate.
///
/// Masks follow the paper's inference guidance of covering roughly 25 %
/// of the clip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mask {
    region: Rect,
    image: GrayImage,
}

impl Mask {
    /// A rectangular mask inside a `side`×`side` clip.
    ///
    /// # Errors
    ///
    /// [`MaskError::RegionOutOfBounds`] if the rect does not fit inside
    /// the clip.
    pub fn try_from_rect(side: u32, region: Rect) -> Result<Self, MaskError> {
        if region.right() > side || region.bottom() > side {
            return Err(MaskError::RegionOutOfBounds { side, region });
        }
        let mut image = GrayImage::filled(side, side, 0.0);
        for y in region.y..region.bottom() {
            for x in region.x..region.right() {
                image.set(x, y, 1.0);
            }
        }
        Ok(Mask { region, image })
    }

    /// [`Mask::try_from_rect`] for known-good regions.
    ///
    /// # Panics
    ///
    /// Panics if the rect does not fit inside the clip.
    pub fn from_rect(side: u32, region: Rect) -> Self {
        Self::try_from_rect(side, region).expect("mask region must fit in the clip")
    }

    /// A full-clip mask (unconditional generation).
    pub fn full(side: u32) -> Self {
        Mask::from_rect(side, Rect::new(0, 0, side, side))
    }

    /// The masked rectangle.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The mask as a 0/1 grayscale image (model input channel).
    pub fn as_image(&self) -> &GrayImage {
        &self.image
    }

    /// Fraction of the clip covered.
    pub fn area_fraction(&self) -> f64 {
        let side = f64::from(self.image.width());
        self.region.area() as f64 / (side * side)
    }
}

/// The two predefined mask sets of the paper's Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MaskSet {
    /// General-purpose regions: four quadrant corners plus the centre,
    /// enabling wire modification and inter-track connections.
    Default,
    /// Horizontal bands, customised for vertical-track layouts to
    /// exercise end-to-end rules and inner-track interactions.
    Horizontal,
}

impl MaskSet {
    /// Both sets, in the paper's order.
    pub const ALL: [MaskSet; 2] = [MaskSet::Default, MaskSet::Horizontal];

    /// The five masks of this set for a `side`×`side` clip.
    ///
    /// # Errors
    ///
    /// [`MaskError::ClipTooSmall`] if `side < 8` (masks would
    /// degenerate).
    pub fn try_masks(&self, side: u32) -> Result<Vec<Mask>, MaskError> {
        if side < 8 {
            return Err(MaskError::ClipTooSmall { side, min: 8 });
        }
        Ok(self.masks(side))
    }

    /// [`MaskSet::try_masks`] for known-good clips.
    ///
    /// # Panics
    ///
    /// Panics if `side < 8` (masks would degenerate).
    pub fn masks(&self, side: u32) -> Vec<Mask> {
        assert!(side >= 8, "clip too small for the predefined masks");
        let h = side / 2;
        match self {
            MaskSet::Default => vec![
                Mask::from_rect(side, Rect::new(0, 0, h, h)), // top-left
                Mask::from_rect(side, Rect::new(side - h, 0, h, h)), // top-right
                Mask::from_rect(side, Rect::new(0, side - h, h, h)), // bottom-left
                Mask::from_rect(side, Rect::new(side - h, side - h, h, h)), // bottom-right
                Mask::from_rect(side, Rect::new(side / 4, side / 4, h, h)), // centre
            ],
            MaskSet::Horizontal => {
                let band = (side / 5).max(2);
                (0..5)
                    .map(|i| {
                        let y = (i * side / 5).min(side - band);
                        Mask::from_rect(side, Rect::new(0, y, side, band))
                    })
                    .collect()
            }
        }
    }
}

/// Sequential mask selection across iterations (paper §IV-E2).
///
/// When a pattern was modified with mask `k` of a set in one iteration,
/// the next iteration uses mask `k+1` (wrapping), so consecutive edits
/// target adjacent regions and preserve previously generated features.
///
/// # Example
///
/// ```
/// use pp_inpaint::{MaskSchedule, MaskSet};
///
/// let schedule = MaskSchedule::new(MaskSet::Default, 32);
/// let first = schedule.mask_for(0, 0);
/// let second = schedule.mask_for(1, 0);
/// assert_ne!(first.region(), second.region());
/// // Wraps after five masks.
/// assert_eq!(schedule.mask_for(0, 0).region(), schedule.mask_for(5, 0).region());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaskSchedule {
    set: MaskSet,
    masks: Vec<Mask>,
}

impl MaskSchedule {
    /// Creates a schedule over one mask set.
    ///
    /// # Errors
    ///
    /// [`MaskError::ClipTooSmall`] if `side < 8`.
    pub fn try_new(set: MaskSet, side: u32) -> Result<Self, MaskError> {
        Ok(MaskSchedule {
            set,
            masks: set.try_masks(side)?,
        })
    }

    /// [`MaskSchedule::try_new`] for known-good clips.
    ///
    /// # Panics
    ///
    /// Panics if `side < 8`.
    pub fn new(set: MaskSet, side: u32) -> Self {
        Self::try_new(set, side).expect("clip too small for the predefined masks")
    }

    /// The set this schedule walks.
    pub fn set(&self) -> MaskSet {
        self.set
    }

    /// Number of masks in the cycle.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Whether the schedule is empty (never by construction).
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// The mask for a pattern at a given `iteration`, where
    /// `pattern_index` staggers the schedule so different patterns start
    /// at different masks.
    pub fn mask_for(&self, iteration: usize, pattern_index: usize) -> &Mask {
        &self.masks[(iteration + pattern_index) % self.masks.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_masks_total() {
        let n: usize = MaskSet::ALL.iter().map(|s| s.masks(32).len()).sum();
        assert_eq!(n, 10, "paper defines 10 predefined masks");
    }

    #[test]
    fn default_masks_cover_quarter() {
        for m in MaskSet::Default.masks(32) {
            assert!((m.area_fraction() - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn horizontal_masks_are_bands() {
        for m in MaskSet::Horizontal.masks(32) {
            assert_eq!(m.region().w, 32);
            assert!(m.region().h <= 8);
        }
    }

    #[test]
    fn mask_image_matches_region() {
        let m = Mask::from_rect(16, Rect::new(2, 3, 4, 5));
        let img = m.as_image();
        assert_eq!(img.get(2, 3), 1.0);
        assert_eq!(img.get(5, 7), 1.0);
        assert_eq!(img.get(6, 3), 0.0);
        assert_eq!(img.get(1, 3), 0.0);
    }

    #[test]
    fn schedule_is_sequential_and_staggered() {
        let s = MaskSchedule::new(MaskSet::Horizontal, 32);
        // Same pattern, consecutive iterations -> consecutive masks.
        assert_ne!(s.mask_for(0, 0).region(), s.mask_for(1, 0).region());
        // Stagger: pattern 1 starts where pattern 0's second step is.
        assert_eq!(s.mask_for(0, 1).region(), s.mask_for(1, 0).region());
    }

    #[test]
    fn full_mask_covers_everything() {
        let m = Mask::full(16);
        assert_eq!(m.area_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_region_rejected() {
        let _ = Mask::from_rect(16, Rect::new(10, 10, 10, 10));
    }

    #[test]
    fn try_constructors_report_errors() {
        let region = Rect::new(10, 10, 10, 10);
        assert_eq!(
            Mask::try_from_rect(16, region).unwrap_err(),
            MaskError::RegionOutOfBounds { side: 16, region }
        );
        assert_eq!(
            MaskSet::Default.try_masks(4).unwrap_err(),
            MaskError::ClipTooSmall { side: 4, min: 8 }
        );
        assert!(MaskSchedule::try_new(MaskSet::Horizontal, 4).is_err());
        assert_eq!(MaskSet::Default.try_masks(32).unwrap().len(), 5);
    }
}
