//! Sequential layer composition.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use crate::Layer;

/// A chain of layers applied in order (backward runs in reverse).
///
/// Used by the CUP baseline's encoder/decoder; the diffusion U-Net wires
/// its skip connections explicitly instead.
///
/// # Example
///
/// ```
/// use pp_nn::{Conv2d, Layer, Sequential, Silu, Tensor};
///
/// let mut net = Sequential::new(vec![
///     Box::new(Conv2d::new(1, 4, 3, 0)),
///     Box::new(Silu::new()),
///     Box::new(Conv2d::new(4, 1, 3, 1)),
/// ]);
/// let y = net.forward(Tensor::zeros([1, 1, 8, 8]));
/// assert_eq!(y.shape(), [1, 1, 8, 8]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer + Send>>,
}

impl Sequential {
    /// Composes the given layers.
    pub fn new(layers: Vec<Box<dyn Layer + Send>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: Tensor) -> Tensor {
        self.layers.iter_mut().fold(x, |x, l| l.forward(x))
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut layers = self.layers.iter_mut();
        let mut h = match layers.next() {
            Some(l) => l.forward_infer(x, ws),
            None => x.clone(),
        };
        for l in layers {
            let next = l.forward_infer(&h, ws);
            ws.give(h.into_vec());
            h = next;
        }
        h
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        self.layers
            .iter_mut()
            .rev()
            .fold(grad, |g, l| l.backward(g))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::Silu;
    use crate::conv::Conv2d;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn gradcheck_small_chain() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 1)),
            Box::new(Silu::new()),
            Box::new(Conv2d::new(2, 1, 1, 2)),
        ]);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::from_vec(
            [1, 1, 3, 3],
            (0..9).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        check_layer(&mut net, x, 3e-2);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 0)),
            Box::new(Conv2d::new(2, 1, 1, 1)),
        ]);
        assert_eq!(net.param_count(), (2 * 9 + 2) + (2 + 1));
        assert_eq!(net.len(), 2);
    }
}
