//! Dense NCHW tensors.

use serde::{Deserialize, Serialize};

/// A dense 4-D tensor in NCHW layout (batch, channels, height, width).
///
/// Vectors and matrices are represented with trailing singleton
/// dimensions (e.g. a feature vector is `[n, c, 1, 1]`).
///
/// # Example
///
/// ```
/// use pp_nn::Tensor;
///
/// let mut t = Tensor::zeros([2, 3, 4, 4]);
/// t.set(1, 2, 3, 3, 7.0);
/// assert_eq!(t.get(1, 2, 3, 3), 7.0);
/// assert_eq!(t.len(), 2 * 3 * 4 * 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: [usize; 4],
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(shape: [usize; 4]) -> Self {
        assert!(shape.iter().all(|&d| d > 0), "tensor dims must be nonzero");
        Tensor {
            shape,
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Wraps a data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: [usize; 4], data: Vec<f32>) -> Self {
        assert!(shape.iter().all(|&d| d > 0), "tensor dims must be nonzero");
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length must match shape"
        );
        Tensor { shape, data }
    }

    /// The NCHW shape.
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Batch size.
    pub fn n(&self) -> usize {
        self.shape[0]
    }

    /// Channels.
    pub fn c(&self) -> usize {
        self.shape[1]
    }

    /// Height.
    pub fn h(&self) -> usize {
        self.shape[2]
    }

    /// Width.
    pub fn w(&self) -> usize {
        self.shape[3]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    fn index(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(
            n < self.shape[0] && c < self.shape[1] && y < self.shape[2] && x < self.shape[3]
        );
        ((n * self.shape[1] + c) * self.shape[2] + y) * self.shape[3] + x
    }

    /// Reads one element.
    #[inline]
    pub fn get(&self, n: usize, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.index(n, c, y, x)]
    }

    /// Writes one element.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, y: usize, x: usize, v: f32) {
        let i = self.index(n, c, y, x);
        self.data[i] = v;
    }

    /// One image plane (channel `c` of sample `n`) as a slice.
    pub fn plane(&self, n: usize, c: usize) -> &[f32] {
        let hw = self.shape[2] * self.shape[3];
        let start = (n * self.shape[1] + c) * hw;
        &self.data[start..start + hw]
    }

    /// Mutable image plane.
    pub fn plane_mut(&mut self, n: usize, c: usize) -> &mut [f32] {
        let hw = self.shape[2] * self.shape[3];
        let start = (n * self.shape[1] + c) * hw;
        &mut self.data[start..start + hw]
    }

    /// Reinterprets with a new shape of identical volume.
    ///
    /// # Panics
    ///
    /// Panics on volume mismatch.
    pub fn reshape(mut self, shape: [usize; 4]) -> Tensor {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve volume"
        );
        self.shape = shape;
        self
    }

    /// Elementwise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self * s` into a new tensor.
    pub fn scaled(&self, s: f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Concatenates along the channel axis.
    ///
    /// # Panics
    ///
    /// Panics unless batch and spatial dims match.
    pub fn concat_channels(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape[0], other.shape[0], "batch mismatch");
        assert_eq!(self.shape[2], other.shape[2], "height mismatch");
        assert_eq!(self.shape[3], other.shape[3], "width mismatch");
        let (n, c1, c2, h, w) = (
            self.shape[0],
            self.shape[1],
            other.shape[1],
            self.shape[2],
            self.shape[3],
        );
        let mut out = Tensor::zeros([n, c1 + c2, h, w]);
        for b in 0..n {
            for c in 0..c1 {
                out.plane_mut(b, c).copy_from_slice(self.plane(b, c));
            }
            for c in 0..c2 {
                out.plane_mut(b, c1 + c).copy_from_slice(other.plane(b, c));
            }
        }
        out
    }

    /// Channel-concatenates into a preallocated output (allocation-free
    /// variant of [`Tensor::concat_channels`]).
    ///
    /// # Panics
    ///
    /// Panics unless `out` is `[n, c1 + c2, h, w]` with matching batch
    /// and spatial dims.
    pub fn concat_channels_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape[0], other.shape[0], "batch mismatch");
        assert_eq!(self.shape[2], other.shape[2], "height mismatch");
        assert_eq!(self.shape[3], other.shape[3], "width mismatch");
        let (n, c1, c2) = (self.shape[0], self.shape[1], other.shape[1]);
        assert_eq!(
            out.shape,
            [n, c1 + c2, self.shape[2], self.shape[3]],
            "output shape mismatch"
        );
        for b in 0..n {
            for c in 0..c1 {
                out.plane_mut(b, c).copy_from_slice(self.plane(b, c));
            }
            for c in 0..c2 {
                out.plane_mut(b, c1 + c).copy_from_slice(other.plane(b, c));
            }
        }
    }

    /// Splits channels `[0, c_split)` and `[c_split, C)` into two tensors
    /// (inverse of [`Tensor::concat_channels`]).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < c_split < C`.
    pub fn split_channels(&self, c_split: usize) -> (Tensor, Tensor) {
        let [n, c, h, w] = self.shape;
        assert!(c_split > 0 && c_split < c, "invalid split point");
        let mut a = Tensor::zeros([n, c_split, h, w]);
        let mut b = Tensor::zeros([n, c - c_split, h, w]);
        for bi in 0..n {
            for ci in 0..c_split {
                a.plane_mut(bi, ci).copy_from_slice(self.plane(bi, ci));
            }
            for ci in c_split..c {
                b.plane_mut(bi, ci - c_split)
                    .copy_from_slice(self.plane(bi, ci));
            }
        }
        (a, b)
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        t.set(1, 2, 3, 4, 42.0);
        assert_eq!(t.get(1, 2, 3, 4), 42.0);
        assert_eq!(t.data()[t.len() - 1], 42.0); // last element
    }

    #[test]
    fn plane_is_contiguous() {
        let mut t = Tensor::zeros([1, 2, 2, 2]);
        for (i, v) in t.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        assert_eq!(t.plane(0, 1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn concat_then_split() {
        let a = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([1, 2, 1, 2], vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_channels(&b);
        assert_eq!(c.shape(), [1, 3, 1, 2]);
        let (a2, b2) = c.split_channels(1);
        assert_eq!(a2, a);
        assert_eq!(b2, b);
        let mut pre = Tensor::zeros([1, 3, 1, 2]);
        a.concat_channels_into(&b, &mut pre);
        assert_eq!(pre, c);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.clone().reshape([1, 4, 1, 1]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([1, 1, 1, 2], vec![10.0, 20.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        assert_eq!(a.scaled(0.5).data(), &[5.5, 11.0]);
    }

    #[test]
    fn mean_of_constant() {
        let t = Tensor::from_vec([1, 1, 1, 4], vec![3.0; 4]);
        assert_eq!(t.mean(), 3.0);
    }

    #[test]
    #[should_panic(expected = "must match shape")]
    fn from_vec_checks_len() {
        let _ = Tensor::from_vec([1, 1, 1, 3], vec![0.0; 4]);
    }
}
