//! Group normalisation.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use crate::Layer;

/// Group normalisation with per-channel affine parameters.
///
/// Each sample's channels are split into `groups`; every group is
/// normalised to zero mean / unit variance over its channels and spatial
/// extent, then scaled by γ and shifted by β per channel. GroupNorm is
/// the standard normaliser in diffusion U-Nets because it works at batch
/// size 1.
///
/// # Example
///
/// ```
/// use pp_nn::{GroupNorm, Layer, Tensor};
///
/// let mut gn = GroupNorm::new(4, 2);
/// let y = gn.forward(Tensor::zeros([1, 4, 3, 3]));
/// assert_eq!(y.shape(), [1, 4, 3, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct GroupNorm {
    channels: usize,
    groups: usize,
    eps: f32,
    gamma: Param,
    beta: Param,
    /// Cached (x̂, inverse σ per (n, group)) from forward.
    cache: Option<(Tensor, Vec<f32>)>,
}

impl GroupNorm {
    /// Creates a group norm over `channels` split into `groups`.
    ///
    /// # Panics
    ///
    /// Panics unless `groups` divides `channels`.
    pub fn new(channels: usize, groups: usize) -> Self {
        assert!(
            groups > 0 && channels.is_multiple_of(groups),
            "groups must divide channels"
        );
        GroupNorm {
            channels,
            groups,
            eps: 1e-5,
            gamma: Param::constant(channels, 1.0),
            beta: Param::zeros(channels),
            cache: None,
        }
    }

    /// Mean and inverse σ of group `g` in sample `b` (the exact
    /// summation order of the training forward, for bit-stable
    /// inference).
    fn group_stats(&self, x: &Tensor, b: usize, g: usize) -> (f32, f32) {
        let [_, c, h, w] = x.shape();
        let cpg = c / self.groups;
        let m = (cpg * h * w) as f32;
        let mut mean = 0.0f32;
        for ci in g * cpg..(g + 1) * cpg {
            mean += x.plane(b, ci).iter().sum::<f32>();
        }
        mean /= m;
        let mut var = 0.0f32;
        for ci in g * cpg..(g + 1) * cpg {
            var += x
                .plane(b, ci)
                .iter()
                .map(|&v| (v - mean) * (v - mean))
                .sum::<f32>();
        }
        var /= m;
        (mean, 1.0 / (var + self.eps).sqrt())
    }
}

impl Layer for GroupNorm {
    fn forward(&mut self, x: Tensor) -> Tensor {
        assert_eq!(x.c(), self.channels, "channel mismatch");
        let [n, c, _h, _w] = x.shape();
        let cpg = c / self.groups;
        let mut xhat = Tensor::zeros(x.shape());
        let mut inv_sigma = Vec::with_capacity(n * self.groups);
        for b in 0..n {
            for g in 0..self.groups {
                let (mean, is) = self.group_stats(&x, b, g);
                inv_sigma.push(is);
                for ci in g * cpg..(g + 1) * cpg {
                    let src = x.plane(b, ci).to_vec();
                    let dst = xhat.plane_mut(b, ci);
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d = (s - mean) * is;
                    }
                }
            }
        }
        // y = γ·x̂ + β.
        let mut y = xhat.clone();
        for b in 0..n {
            for ci in 0..c {
                let (gam, bet) = (self.gamma.value[ci], self.beta.value[ci]);
                for v in y.plane_mut(b, ci) {
                    *v = gam * *v + bet;
                }
            }
        }
        self.cache = Some((xhat, inv_sigma));
        y
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.c(), self.channels, "channel mismatch");
        let [n, c, _h, _w] = x.shape();
        let cpg = c / self.groups;
        let mut y = Tensor::from_vec(x.shape(), ws.take(x.len()));
        for b in 0..n {
            for g in 0..self.groups {
                let (mean, is) = self.group_stats(x, b, g);
                for ci in g * cpg..(g + 1) * cpg {
                    let (gam, bet) = (self.gamma.value[ci], self.beta.value[ci]);
                    let src = x.plane(b, ci);
                    let dst = y.plane_mut(b, ci);
                    for (d, &s) in dst.iter_mut().zip(src) {
                        // Same two rounding steps as the training path:
                        // x̂ first, then the affine map.
                        let xh = (s - mean) * is;
                        *d = gam * xh + bet;
                    }
                }
            }
        }
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let (xhat, inv_sigma) = self.cache.take().expect("backward called without forward");
        let [n, c, h, w] = xhat.shape();
        let cpg = c / self.groups;
        let m = (cpg * h * w) as f32;
        let mut gx = Tensor::zeros(xhat.shape());
        for b in 0..n {
            for g in 0..self.groups {
                let is = inv_sigma[b * self.groups + g];
                // Accumulate means of γ·dy and γ·dy·x̂ over the group.
                let mut sum_gdy = 0.0f32;
                let mut sum_gdy_xhat = 0.0f32;
                for ci in g * cpg..(g + 1) * cpg {
                    let gam = self.gamma.value[ci];
                    let dyp = grad.plane(b, ci);
                    let xp = xhat.plane(b, ci);
                    // Parameter gradients while we're here.
                    self.beta.grad[ci] += dyp.iter().sum::<f32>();
                    self.gamma.grad[ci] += dyp.iter().zip(xp).map(|(&d, &xh)| d * xh).sum::<f32>();
                    for (&d, &xh) in dyp.iter().zip(xp) {
                        sum_gdy += gam * d;
                        sum_gdy_xhat += gam * d * xh;
                    }
                }
                let mean_gdy = sum_gdy / m;
                let mean_gdy_xhat = sum_gdy_xhat / m;
                for ci in g * cpg..(g + 1) * cpg {
                    let gam = self.gamma.value[ci];
                    let dyp = grad.plane(b, ci).to_vec();
                    let xp = xhat.plane(b, ci).to_vec();
                    let gxp = gx.plane_mut(b, ci);
                    for ((gxv, d), xh) in gxp.iter_mut().zip(dyp).zip(xp) {
                        *gxv = is * (gam * d - mean_gdy - xh * mean_gdy_xhat);
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(shape: [usize; 4], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.iter().product())
            .map(|_| rng.gen_range(-2.0f32..2.0))
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn output_is_normalised() {
        let mut gn = GroupNorm::new(2, 1);
        let y = gn.forward(random_tensor([1, 2, 4, 4], 1));
        let mean = y.mean();
        let var = y
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / y.len() as f32;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn groups_are_independent() {
        let mut gn = GroupNorm::new(2, 2);
        // Channel 0 large values, channel 1 small: per-group norm fixes both.
        let mut x = Tensor::zeros([1, 2, 2, 2]);
        x.plane_mut(0, 0)
            .copy_from_slice(&[100.0, 101.0, 102.0, 103.0]);
        x.plane_mut(0, 1).copy_from_slice(&[0.1, 0.2, 0.3, 0.4]);
        let y = gn.forward(x);
        for c in 0..2 {
            let p = y.plane(0, c);
            let mean: f32 = p.iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-3);
        }
    }

    #[test]
    fn affine_params_apply() {
        let mut gn = GroupNorm::new(1, 1);
        gn.gamma.value[0] = 0.0;
        gn.beta.value[0] = 5.0;
        let y = gn.forward(random_tensor([1, 1, 3, 3], 2));
        assert!(y.data().iter().all(|&v| (v - 5.0).abs() < 1e-6));
    }

    #[test]
    fn gradcheck_two_groups() {
        let mut gn = GroupNorm::new(4, 2);
        check_layer(&mut gn, random_tensor([2, 4, 3, 3], 3), 3e-2);
    }

    #[test]
    fn gradcheck_single_group() {
        let mut gn = GroupNorm::new(2, 1);
        check_layer(&mut gn, random_tensor([1, 2, 4, 4], 4), 3e-2);
    }

    #[test]
    #[should_panic(expected = "divide channels")]
    fn rejects_bad_groups() {
        let _ = GroupNorm::new(5, 2);
    }
}
