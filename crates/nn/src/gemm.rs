//! Register-blocked, cache-tiled single-precision matrix multiply.
//!
//! This is the workhorse under [`crate::Conv2d`] and [`crate::Linear`]:
//! convolution lowers to `weights · im2col` and dense layers to
//! `x · Wᵀ`, so one good GEMM accelerates the whole sampling and
//! training hot path. Three memory layouts cover every call site without
//! materialising transposes:
//!
//! * [`sgemm`]   — `C = A·B + β·C`   with `A: m×k`, `B: k×n`;
//! * [`sgemm_tn`] — `C = Aᵀ·B + β·C` with `A` stored `k×m`;
//! * [`sgemm_nt`] — `C = A·Bᵀ + β·C` with `B` stored `n×k`.
//!
//! All matrices are dense row-major `f32` slices. The kernels tile the
//! k-dimension into L1/L2-sized panels (`KC`) and accumulate
//! `MR`×`NR` micro-tiles — in AVX2+FMA registers when the CPU has
//! them (runtime-detected), else in portable local arrays the compiler
//! vectorises. The reduction order over `k` for an output element is a
//! pure function of the call shape `(m, k, n)` and the element's
//! position, so equal-shaped calls on equal data are bit-identical —
//! the property batched sampling relies on, since batching runs the
//! same per-sample GEMM shapes as the solo path.
//!
//! A scalar reference implementation ([`sgemm_naive`] and friends) backs
//! the unit tests and the `force_naive` switch used by `pp-bench` to
//! measure the pre-GEMM baseline.
//!
//! # Example
//!
//! ```
//! use pp_nn::gemm::sgemm;
//!
//! // [1 2; 3 4] · [5 6; 7 8]
//! let a = [1.0, 2.0, 3.0, 4.0];
//! let b = [5.0, 6.0, 7.0, 8.0];
//! let mut c = [0.0; 4];
//! sgemm(2, 2, 2, &a, &b, &mut c, 0.0);
//! assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
//! ```

// Register-tile micro-kernels deliberately drive fixed-size accumulator
// arrays and packed panels by index, and thread the full blocking state
// through their signatures; the iterator/struct rewrites clippy suggests
// obscure the kernel shape.
#![allow(clippy::needless_range_loop, clippy::too_many_arguments)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Rows per register micro-tile (6×16 f32 = 12 ymm accumulators).
const MR: usize = 6;
/// Columns per register micro-tile (two 8-lane vectors on AVX2).
const NR: usize = 16;
/// k-panel depth: an `NR`-wide B panel of this depth is ~16 KiB and an
/// `MR`-tall A panel ~6 KiB, so both micro-panels live in L1.
const KC: usize = 256;

static FORCE_NAIVE: AtomicBool = AtomicBool::new(false);

/// Whether the AVX2+FMA micro-kernels are usable on this CPU (checked
/// once; the portable kernel is the fallback everywhere else).
#[cfg(target_arch = "x86_64")]
fn cpu_has_avx2_fma() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_has_avx2_fma() -> bool {
    false
}

/// Whether the AVX-512F micro-kernel is usable on this CPU.
#[cfg(target_arch = "x86_64")]
fn cpu_has_avx512f() -> bool {
    use std::sync::OnceLock;
    static DETECTED: OnceLock<bool> = OnceLock::new();
    *DETECTED.get_or_init(|| is_x86_feature_detected!("avx512f"))
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(dead_code)]
fn cpu_has_avx512f() -> bool {
    false
}

/// Routes the hot kernels (`sgemm*` and `Conv2d`'s im2col) through
/// their scalar reference implementations.
///
/// Benchmarks use this to measure the pre-optimisation per-sample
/// baseline on the exact same code path; it is not meant for production
/// use.
pub fn set_force_naive(enabled: bool) {
    FORCE_NAIVE.store(enabled, Ordering::Relaxed);
}

/// Whether [`set_force_naive`] is active.
pub fn force_naive() -> bool {
    FORCE_NAIVE.load(Ordering::Relaxed)
}

#[inline]
fn scale_c(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for v in c {
            *v *= beta;
        }
    }
}

/// Element accessors for the three operand layouts, so one blocked
/// driver serves NN/TN and one dot-product driver serves NT.
#[derive(Clone, Copy)]
enum ALayout {
    /// `A` stored `m×k` row-major: `a[i·k + p]`.
    Normal,
    /// `A` stored `k×m` row-major (op = `Aᵀ`): `a[p·m + i]`.
    Transposed,
}

impl ALayout {
    #[inline(always)]
    fn at(self, a: &[f32], i: usize, p: usize, m: usize, k: usize) -> f32 {
        match self {
            ALayout::Normal => a[i * k + p],
            ALayout::Transposed => a[p * m + i],
        }
    }
}

/// Portable `MR×nr` micro-kernel: accumulates a register tile over one
/// packed A panel (`ap`, `[kc][MR]`) and adds it into `C`.
#[inline]
fn kernel_tile(
    kc: usize,
    ap: &[f32],
    b: &[f32],
    row0: usize,
    n: usize,
    j0: usize,
    nr: usize,
    c: &mut [f32],
    i0: usize,
    mr: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let brow = &b[(row0 + p) * n + j0..(row0 + p) * n + j0 + nr];
        let apk = &ap[p * MR..p * MR + MR];
        for r in 0..MR {
            let av = apk[r];
            for (x, &bv) in acc[r][..nr].iter_mut().zip(brow) {
                *x += av * bv;
            }
        }
    }
    for r in 0..mr {
        let crow = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
        for (cv, &x) in crow.iter_mut().zip(&acc[r][..nr]) {
            *cv += x;
        }
    }
}

/// AVX2+FMA `6×16` micro-kernel: 12 ymm accumulators, one broadcast and
/// two loads per k-iteration.
///
/// # Safety
///
/// Caller must ensure AVX2+FMA are available and that the index ranges
/// (`row0+kc` rows of B at width ≥ `j0+16`, rows `i0..i0+mr` of C) are
/// in bounds; debug asserts guard the latter.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kernel_tile_avx(
    kc: usize,
    ap: &[f32],
    b: &[f32],
    row0: usize,
    n: usize,
    j0: usize,
    c: &mut [f32],
    i0: usize,
    mr: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR);
    debug_assert!((row0 + kc - 1) * n + j0 + NR <= b.len());
    debug_assert!((i0 + mr - 1) * n + j0 + NR <= c.len());
    // SAFETY: the caller upholds this fn's `# Safety` contract (AVX2+FMA
    // present, B/C index ranges in bounds, re-checked by the
    // debug_asserts above), so every load/store stays in bounds.
    unsafe {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        let bp = b.as_ptr();
        let app = ap.as_ptr();
        for p in 0..kc {
            let brow = bp.add((row0 + p) * n + j0);
            let b0 = _mm256_loadu_ps(brow);
            let b1 = _mm256_loadu_ps(brow.add(8));
            let apk = app.add(p * MR);
            for r in 0..MR {
                let a = _mm256_set1_ps(*apk.add(r));
                acc[r][0] = _mm256_fmadd_ps(a, b0, acc[r][0]);
                acc[r][1] = _mm256_fmadd_ps(a, b1, acc[r][1]);
            }
        }
        let cp = c.as_mut_ptr();
        for r in 0..mr {
            let crow = cp.add((i0 + r) * n + j0);
            _mm256_storeu_ps(crow, _mm256_add_ps(_mm256_loadu_ps(crow), acc[r][0]));
            _mm256_storeu_ps(
                crow.add(8),
                _mm256_add_ps(_mm256_loadu_ps(crow.add(8)), acc[r][1]),
            );
        }
    }
}

/// AVX-512F `6×32` micro-kernel: 12 zmm accumulators, one broadcast and
/// two loads per k-iteration.
///
/// # Safety
///
/// Caller must ensure AVX-512F is available and that `j0 + 32 ≤ n` with
/// rows `row0..row0+kc` of B and `i0..i0+mr` of C in bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_tile_avx512(
    kc: usize,
    ap: &[f32],
    b: &[f32],
    row0: usize,
    n: usize,
    j0: usize,
    c: &mut [f32],
    i0: usize,
    mr: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR);
    debug_assert!((row0 + kc - 1) * n + j0 + 32 <= b.len());
    debug_assert!((i0 + mr - 1) * n + j0 + 32 <= c.len());
    // SAFETY: the caller upholds this fn's `# Safety` contract (AVX-512F
    // present, B/C index ranges in bounds, re-checked by the
    // debug_asserts above), so every load/store stays in bounds.
    unsafe {
        let mut acc = [[_mm512_setzero_ps(); 2]; MR];
        let bp = b.as_ptr();
        let app = ap.as_ptr();
        for p in 0..kc {
            let brow = bp.add((row0 + p) * n + j0);
            let b0 = _mm512_loadu_ps(brow);
            let b1 = _mm512_loadu_ps(brow.add(16));
            let apk = app.add(p * MR);
            for r in 0..MR {
                let a = _mm512_set1_ps(*apk.add(r));
                acc[r][0] = _mm512_fmadd_ps(a, b0, acc[r][0]);
                acc[r][1] = _mm512_fmadd_ps(a, b1, acc[r][1]);
            }
        }
        let cp = c.as_mut_ptr();
        for r in 0..mr {
            let crow = cp.add((i0 + r) * n + j0);
            _mm512_storeu_ps(crow, _mm512_add_ps(_mm512_loadu_ps(crow), acc[r][0]));
            _mm512_storeu_ps(
                crow.add(16),
                _mm512_add_ps(_mm512_loadu_ps(crow.add(16)), acc[r][1]),
            );
        }
    }
}

/// `C = op(A)·B + β·C` for row-major `B: k×n`, blocked over k and
/// register-tiled `MR×NR`.
fn gemm_nx(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    lay: ALayout,
    b: &[f32],
    c: &mut [f32],
    beta: f32,
) {
    debug_assert_eq!(b.len(), k * n, "B must be k×n");
    debug_assert_eq!(c.len(), m * n, "C must be m×n");
    debug_assert_eq!(a.len(), m * k, "A must hold m·k elements");
    scale_c(c, beta);
    let avx = cpu_has_avx2_fma();
    #[cfg(target_arch = "x86_64")]
    let avx512 = cpu_has_avx512f();
    let mut ap = [0.0f32; MR * KC];
    for p0 in (0..k).step_by(KC) {
        let kc = KC.min(k - p0);
        for i0 in (0..m).step_by(MR) {
            let mr = MR.min(m - i0);
            // Pack the A micro-panel once per (i0, p0): contiguous
            // [kc][MR] layout so the inner loop reads one cache line.
            for p in 0..kc {
                for r in 0..mr {
                    ap[p * MR + r] = lay.at(a, i0 + r, p0 + p, m, k);
                }
                for r in mr..MR {
                    ap[p * MR + r] = 0.0;
                }
            }
            let mut j0 = 0;
            // Full-width tiles with register accumulators, widest
            // instruction set first.
            #[cfg(target_arch = "x86_64")]
            while avx512 && j0 + 32 <= n {
                // SAFETY: feature-detected above; j0+32 ≤ n and
                // i0+mr ≤ m keep every access in bounds.
                unsafe { kernel_tile_avx512(kc, &ap, b, p0, n, j0, c, i0, mr) };
                j0 += 32;
            }
            while j0 + NR <= n {
                #[cfg(target_arch = "x86_64")]
                if avx {
                    // SAFETY: feature-detected above; j0+NR ≤ n and
                    // i0+mr ≤ m keep every access in bounds.
                    unsafe { kernel_tile_avx(kc, &ap, b, p0, n, j0, c, i0, mr) };
                    j0 += NR;
                    continue;
                }
                let _ = avx;
                kernel_tile(kc, &ap, b, p0, n, j0, NR, c, i0, mr);
                j0 += NR;
            }
            // Ragged right edge: portable kernel at partial width.
            if j0 < n {
                kernel_tile(kc, &ap, b, p0, n, j0, n - j0, c, i0, mr);
            }
        }
    }
}

/// `C = A·B + β·C` (`A: m×k`, `B: k×n`, `C: m×n`, all row-major).
///
/// # Panics
///
/// Panics (debug) on slice-length/shape mismatches.
pub fn sgemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    if force_naive() {
        return sgemm_naive(m, k, n, a, b, c, beta);
    }
    gemm_nx(m, k, n, a, ALayout::Normal, b, c, beta);
}

/// `C = Aᵀ·B + β·C` with `A` stored `k×m` row-major.
pub fn sgemm_tn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    if force_naive() {
        return sgemm_tn_naive(m, k, n, a, b, c, beta);
    }
    gemm_nx(m, k, n, a, ALayout::Transposed, b, c, beta);
}

/// `C = A·Bᵀ + β·C` with `B` stored `n×k` row-major.
///
/// Both operand rows are contiguous here, so this uses an unrolled
/// dot-product kernel over k instead of the panel kernel.
pub fn sgemm_nt(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    if force_naive() {
        return sgemm_nt_naive(m, k, n, a, b, c, beta);
    }
    debug_assert_eq!(a.len(), m * k, "A must be m×k");
    debug_assert_eq!(b.len(), n * k, "B must be n×k");
    debug_assert_eq!(c.len(), m * n, "C must be m×n");
    scale_c(c, beta);
    let avx = cpu_has_avx2_fma();
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            #[cfg(target_arch = "x86_64")]
            if avx {
                // SAFETY: feature-detected; dot_avx stays within the
                // slices it is given.
                *cv += unsafe { dot_avx(arow, brow) };
                continue;
            }
            let _ = avx;
            *cv += dot_portable(arow, brow);
        }
    }
}

/// Fixed-order portable dot product (eight independent partial sums).
#[inline]
fn dot_portable(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for l in 0..8 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (&av, &bv) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        tail += av * bv;
    }
    let sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    sum + tail
}

/// FMA dot product with a fixed-order horizontal reduction.
///
/// # Safety
///
/// Requires AVX2+FMA; reads only within `a` and `b`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    // SAFETY: the caller upholds this fn's `# Safety` contract (AVX2+FMA
    // present); `len = min(a.len(), b.len())` bounds every read.
    unsafe {
        let len = a.len().min(b.len());
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0;
        while i + 16 <= len {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        if i + 8 <= len {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            i += 8;
        }
        let acc = _mm256_add_ps(acc0, acc1);
        let hi = _mm256_extractf128_ps::<1>(acc);
        let lo = _mm256_castps256_ps128(acc);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps::<1>(s, s));
        let mut sum = _mm_cvtss_f32(s);
        while i < len {
            sum += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        sum
    }
}

/// Scalar reference `C = A·B + β·C` (tests and the force-naive path).
pub fn sgemm_naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    scale_c(c, beta);
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av != 0.0 {
                let brow = &b[p * n..(p + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// Scalar reference for the TN layout.
pub fn sgemm_tn_naive(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    beta: f32,
) {
    scale_c(c, beta);
    for i in 0..m {
        for p in 0..k {
            let av = a[p * m + i];
            if av != 0.0 {
                let brow = &b[p * n..(p + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// Scalar reference for the NT layout.
pub fn sgemm_nt_naive(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    beta: f32,
) {
    scale_c(c, beta);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[j * k + p];
            }
            c[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0; src.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        out
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "mismatch at {i}: {x} vs {y}"
            );
        }
    }

    /// Shapes chosen to hit every edge: micro-tile remainders in m and n,
    /// multiple KC panels, tiny and skinny matrices.
    const SHAPES: [(usize, usize, usize); 8] = [
        (1, 1, 1),
        (4, 16, 16),
        (3, 7, 5),
        (17, 300, 33),
        (64, 576, 1024),
        (5, 1, 40),
        (2, 513, 19),
        (31, 31, 31),
    ];

    #[test]
    fn sgemm_matches_naive_on_random_shapes() {
        for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
            let a = random_matrix(m * k, 100 + si as u64);
            let b = random_matrix(k * n, 200 + si as u64);
            let mut c_fast = random_matrix(m * n, 300 + si as u64);
            let mut c_ref = c_fast.clone();
            sgemm(m, k, n, &a, &b, &mut c_fast, 1.0);
            sgemm_naive(m, k, n, &a, &b, &mut c_ref, 1.0);
            assert_close(&c_fast, &c_ref, 1e-4);
        }
    }

    #[test]
    fn sgemm_tn_matches_naive_on_random_shapes() {
        for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
            let at = random_matrix(k * m, 400 + si as u64); // stored k×m
            let b = random_matrix(k * n, 500 + si as u64);
            let mut c_fast = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            sgemm_tn(m, k, n, &at, &b, &mut c_fast, 0.0);
            sgemm_tn_naive(m, k, n, &at, &b, &mut c_ref, 0.0);
            assert_close(&c_fast, &c_ref, 1e-4);
            // Cross-check against NN on the materialised transpose.
            let a = transpose(&at, k, m);
            let mut c_nn = vec![0.0; m * n];
            sgemm_naive(m, k, n, &a, &b, &mut c_nn, 0.0);
            assert_close(&c_fast, &c_nn, 1e-4);
        }
    }

    #[test]
    fn sgemm_nt_matches_naive_on_random_shapes() {
        for (si, &(m, k, n)) in SHAPES.iter().enumerate() {
            let a = random_matrix(m * k, 600 + si as u64);
            let bt = random_matrix(n * k, 700 + si as u64); // stored n×k
            let mut c_fast = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            sgemm_nt(m, k, n, &a, &bt, &mut c_fast, 0.0);
            sgemm_nt_naive(m, k, n, &a, &bt, &mut c_ref, 0.0);
            assert_close(&c_fast, &c_ref, 1e-4);
            let b = transpose(&bt, n, k);
            let mut c_nn = vec![0.0; m * n];
            sgemm_naive(m, k, n, &a, &b, &mut c_nn, 0.0);
            assert_close(&c_fast, &c_nn, 1e-4);
        }
    }

    #[test]
    fn beta_scales_existing_c() {
        let a = [2.0f32];
        let b = [3.0f32];
        let mut c = [10.0f32];
        sgemm(1, 1, 1, &a, &b, &mut c, 0.5);
        assert_eq!(c[0], 11.0);
        sgemm(1, 1, 1, &a, &b, &mut c, 0.0);
        assert_eq!(c[0], 6.0);
    }

    /// Equal-shaped calls on equal data must produce identical bits —
    /// the property that makes batched sampling (which runs the same
    /// per-sample GEMM shapes as the solo path) bit-identical to it.
    #[test]
    fn equal_shapes_are_bit_identical() {
        for &(m, k, n) in &[(8usize, 96usize, 48usize), (16, 432, 1024), (3, 7, 5)] {
            let a = random_matrix(m * k, 1);
            let b = random_matrix(k * n, 2);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c1, 0.0);
            sgemm(m, k, n, &a, &b, &mut c2, 0.0);
            assert_eq!(c1, c2, "repeat call diverged at {m}x{k}x{n}");
            // Running the same rows through a fresh output buffer of the
            // same shape (what each micro-batch member sees) matches too.
            let mut c3 = vec![1.0; m * n];
            sgemm(m, k, n, &a, &b, &mut c3, 0.0);
            assert_eq!(c1, c3, "beta=0 must fully overwrite");
        }
    }

    // The force_naive switch is process-global, so its routing test
    // lives in tests/force_naive.rs: a separate test binary runs in its
    // own process and cannot race the bitwise-equality tests here.
}
