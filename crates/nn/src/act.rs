//! Activation functions.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::Layer;

/// SiLU (swish): `x · σ(x)` — the standard diffusion-U-Net activation.
///
/// # Example
///
/// ```
/// use pp_nn::{Layer, Silu, Tensor};
///
/// let mut act = Silu::new();
/// let y = act.forward(Tensor::from_vec([1, 1, 1, 2], vec![0.0, 10.0]));
/// assert_eq!(y.data()[0], 0.0);
/// assert!((y.data()[1] - 10.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Silu {
    cached_input: Option<Tensor>,
}

impl Silu {
    /// Creates the activation.
    pub fn new() -> Self {
        Silu::default()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Silu {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let mut y = x.clone();
        for v in y.data_mut() {
            *v = *v * sigmoid(*v);
        }
        self.cached_input = Some(x);
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called without forward");
        let mut gx = grad;
        for (g, &xv) in gx.data_mut().iter_mut().zip(x.data()) {
            let s = sigmoid(xv);
            *g *= s + xv * s * (1.0 - s);
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Hyperbolic tangent (used as the CUP decoder output squashing).
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates the activation.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let mut y = x;
        for v in y.data_mut() {
            *v = v.tanh();
        }
        self.cached_output = Some(y.clone());
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("backward called without forward");
        let mut gx = grad;
        for (g, &yv) in gx.data_mut().iter_mut().zip(y.data()) {
            *g *= 1.0 - yv * yv;
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            [1, 2, 3, 3],
            (0..18).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
        )
    }

    #[test]
    fn silu_known_values() {
        let mut act = Silu::new();
        let y = act.forward(Tensor::from_vec([1, 1, 1, 3], vec![-20.0, 0.0, 20.0]));
        assert!(y.data()[0].abs() < 1e-3);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 20.0).abs() < 1e-3);
    }

    #[test]
    fn tanh_bounds() {
        let mut act = Tanh::new();
        let y = act.forward(Tensor::from_vec([1, 1, 1, 2], vec![-100.0, 100.0]));
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck_silu() {
        check_layer(&mut Silu::new(), random_tensor(1), 1e-2);
    }

    #[test]
    fn gradcheck_tanh() {
        check_layer(&mut Tanh::new(), random_tensor(2), 1e-2);
    }
}
