//! Activation functions.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use crate::Layer;

/// SiLU (swish): `x · σ(x)` — the standard diffusion-U-Net activation.
///
/// # Example
///
/// ```
/// use pp_nn::{Layer, Silu, Tensor};
///
/// let mut act = Silu::new();
/// let y = act.forward(Tensor::from_vec([1, 1, 1, 2], vec![0.0, 10.0]));
/// assert_eq!(y.data()[0], 0.0);
/// assert!((y.data()[1] - 10.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Silu {
    cached_input: Option<Tensor>,
}

impl Silu {
    /// Creates the activation.
    pub fn new() -> Self {
        Silu::default()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Degree-5 polynomial for `2ʳ` on `r ∈ [-0.5, 0.5]` (Cephes exp2f
/// family; combined sigmoid error < 2e-6 relative).
const EXP2_POLY: [f32; 5] = [
    1.535_336_8e-4,
    1.339_887_e-3,
    9.618_437_e-3,
    5.550_332_7e-2,
    2.402_264_7e-1,
];
const LOG2E: f32 = std::f32::consts::LOG2_E;
const LN2: f32 = std::f32::consts::LN_2;

/// Scalar SiLU through the same polynomial (and FMA rounding, via
/// `mul_add`) as the vector kernel, so vector lanes and scalar tail
/// produce identical bits for identical inputs.
#[inline]
fn silu_poly_scalar(x: f32) -> f32 {
    let t = (-x * LOG2E).clamp(-126.0, 126.0);
    let n = t.round_ties_even();
    let r = t - n;
    let p = EXP2_POLY[0];
    let p = p.mul_add(r, EXP2_POLY[1]);
    let p = p.mul_add(r, EXP2_POLY[2]);
    let p = p.mul_add(r, EXP2_POLY[3]);
    let p = p.mul_add(r, EXP2_POLY[4]);
    // 2ʳ = 1 + ln2·r + p(r)·r².
    let p = (p * r).mul_add(r, LN2.mul_add(r, 1.0));
    let pow2n = f32::from_bits((((n as i32) + 127) << 23) as u32);
    x / (1.0 + p * pow2n)
}

/// AVX2+FMA SiLU over full 8-lane chunks; the caller handles the tail
/// with [`silu_poly_scalar`], which matches lane-for-lane.
///
/// # Safety
///
/// Requires AVX2+FMA; reads `src` and writes `dst` only within the
/// first `len - len % 8` elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn silu_avx(dst: &mut [f32], src: &[f32]) -> usize {
    use std::arch::x86_64::*;
    // SAFETY: the caller upholds this fn's `# Safety` contract (AVX2+FMA
    // present); `chunks = min(len) / 8` bounds every load/store.
    unsafe {
        let len = dst.len().min(src.len());
        let chunks = len / 8;
        let log2e = _mm256_set1_ps(-LOG2E);
        let lo = _mm256_set1_ps(-126.0);
        let hi = _mm256_set1_ps(126.0);
        let ln2 = _mm256_set1_ps(LN2);
        let one = _mm256_set1_ps(1.0);
        let bias = _mm256_set1_epi32(127);
        let c0 = _mm256_set1_ps(EXP2_POLY[0]);
        let c1 = _mm256_set1_ps(EXP2_POLY[1]);
        let c2 = _mm256_set1_ps(EXP2_POLY[2]);
        let c3 = _mm256_set1_ps(EXP2_POLY[3]);
        let c4 = _mm256_set1_ps(EXP2_POLY[4]);
        for i in 0..chunks {
            let x = _mm256_loadu_ps(src.as_ptr().add(i * 8));
            let t = _mm256_max_ps(lo, _mm256_min_ps(hi, _mm256_mul_ps(x, log2e)));
            let n = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(t);
            let r = _mm256_sub_ps(t, n);
            let p = _mm256_fmadd_ps(c0, r, c1);
            let p = _mm256_fmadd_ps(p, r, c2);
            let p = _mm256_fmadd_ps(p, r, c3);
            let p = _mm256_fmadd_ps(p, r, c4);
            // Mirror the scalar ops exactly: 2ʳ = (p·r)·r + (ln2·r + 1).
            let p = _mm256_fmadd_ps(_mm256_mul_ps(p, r), r, _mm256_fmadd_ps(ln2, r, one));
            let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
                _mm256_cvtps_epi32(n),
                bias,
            )));
            let denom = _mm256_fmadd_ps(p, pow2n, one);
            _mm256_storeu_ps(dst.as_mut_ptr().add(i * 8), _mm256_div_ps(x, denom));
        }
        chunks * 8
    }
}

/// Writes `silu(src)` into `dst`: libm reference when
/// [`crate::gemm::force_naive`] is set, the polynomial kernel otherwise
/// (vectorised where the CPU allows).
fn silu_slice(dst: &mut [f32], src: &[f32]) {
    if crate::gemm::force_naive() {
        for (o, &v) in dst.iter_mut().zip(src) {
            *o = v * sigmoid(v);
        }
        return;
    }
    let mut done = 0;
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        // SAFETY: feature-detected; silu_avx stays within both slices.
        done = unsafe { silu_avx(dst, src) };
    }
    for (o, &v) in dst[done..].iter_mut().zip(&src[done..]) {
        *o = silu_poly_scalar(v);
    }
}

impl Layer for Silu {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let mut y = x.clone();
        silu_slice(y.data_mut(), x.data());
        self.cached_input = Some(x);
        y
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut y = Tensor::from_vec(x.shape(), ws.take(x.len()));
        silu_slice(y.data_mut(), x.data());
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called without forward");
        let mut gx = grad;
        for (g, &xv) in gx.data_mut().iter_mut().zip(x.data()) {
            let s = sigmoid(xv);
            *g *= s + xv * s * (1.0 - s);
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Hyperbolic tangent (used as the CUP decoder output squashing).
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates the activation.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let mut y = x;
        for v in y.data_mut() {
            *v = v.tanh();
        }
        self.cached_output = Some(y.clone());
        y
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut y = Tensor::from_vec(x.shape(), ws.take(x.len()));
        for (o, &v) in y.data_mut().iter_mut().zip(x.data()) {
            *o = v.tanh();
        }
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let y = self
            .cached_output
            .take()
            .expect("backward called without forward");
        let mut gx = grad;
        for (g, &yv) in gx.data_mut().iter_mut().zip(y.data()) {
            *g *= 1.0 - yv * yv;
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            [1, 2, 3, 3],
            (0..18).map(|_| rng.gen_range(-2.0f32..2.0)).collect(),
        )
    }

    #[test]
    fn silu_known_values() {
        let mut act = Silu::new();
        let y = act.forward(Tensor::from_vec([1, 1, 1, 3], vec![-20.0, 0.0, 20.0]));
        assert!(y.data()[0].abs() < 1e-3);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 20.0).abs() < 1e-3);
    }

    #[test]
    fn tanh_bounds() {
        let mut act = Tanh::new();
        let y = act.forward(Tensor::from_vec([1, 1, 1, 2], vec![-100.0, 100.0]));
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck_silu() {
        check_layer(&mut Silu::new(), random_tensor(1), 1e-2);
    }

    /// The polynomial SiLU (scalar and vector lanes) must agree with the
    /// libm reference to well under any tolerance the models care about,
    /// and both code paths must agree with each other bitwise.
    #[test]
    fn poly_silu_matches_libm_and_is_lane_stable() {
        let src: Vec<f32> = (-4000..4000)
            .map(|i| i as f32 * 0.025) // [-100, 100]
            .chain([0.0, -0.0, 1e-30, -1e-30, 500.0, -500.0])
            .collect();
        let mut out = vec![0.0f32; src.len()];
        silu_slice(&mut out, &src);
        let mut worst = 0.0f32;
        for (&x, &y) in src.iter().zip(&out) {
            let reference = x * sigmoid(x);
            let err = (y - reference).abs() / (1.0 + reference.abs());
            worst = worst.max(err);
        }
        assert!(worst < 1e-5, "poly silu deviates by {worst}");
        // Lane stability: element j computes the same bits regardless of
        // whether it lands in a vector chunk or the scalar tail.
        for offset in [0usize, 1, 3, 7] {
            let sub = &src[offset..];
            let mut sub_out = vec![0.0f32; sub.len()];
            silu_slice(&mut sub_out, sub);
            assert_eq!(
                &sub_out[..],
                &out[offset..],
                "lane split changed bits at offset {offset}"
            );
        }
    }

    #[test]
    fn gradcheck_tanh() {
        check_layer(&mut Tanh::new(), random_tensor(2), 1e-2);
    }
}
