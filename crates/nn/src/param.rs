//! Learnable parameters and initialisation helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A learnable parameter: a value buffer and its gradient accumulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current values.
    pub value: Vec<f32>,
    /// Accumulated gradient (same length as `value`).
    pub grad: Vec<f32>,
}

impl Param {
    /// An all-zero parameter of the given length.
    pub fn zeros(len: usize) -> Self {
        Param {
            value: vec![0.0; len],
            grad: vec![0.0; len],
        }
    }

    /// Kaiming-style uniform initialisation with fan-in `fan_in`.
    ///
    /// Deterministic in `seed`.
    pub fn kaiming(len: usize, fan_in: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        Param {
            value: (0..len).map(|_| rng.gen_range(-bound..bound)).collect(),
            grad: vec![0.0; len],
        }
    }

    /// Constant-valued parameter (e.g. norm scales at 1).
    pub fn constant(len: usize, v: f32) -> Self {
        Param {
            value: vec![v; len],
            grad: vec![0.0; len],
        }
    }

    /// Number of scalars.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter is empty (never by construction).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_is_bounded_and_seeded() {
        let a = Param::kaiming(100, 64, 1);
        let b = Param::kaiming(100, 64, 1);
        let c = Param::kaiming(100, 64, 2);
        assert_eq!(a.value, b.value);
        assert_ne!(a.value, c.value);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(a.value.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zeros_and_constant() {
        assert!(Param::zeros(4).value.iter().all(|&v| v == 0.0));
        assert!(Param::constant(4, 1.0).value.iter().all(|&v| v == 1.0));
    }
}
