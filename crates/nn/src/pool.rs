//! Spatial down/up-sampling.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use crate::Layer;

/// 2×2 average pooling of `x` into `y` (shared by train/infer paths).
fn avgpool_into(x: &Tensor, y: &mut Tensor) {
    let [n, c, h, w] = x.shape();
    let (oh, ow) = (h / 2, w / 2);
    for b in 0..n {
        for ci in 0..c {
            let src = x.plane(b, ci);
            let dst = y.plane_mut(b, ci);
            for oy in 0..oh {
                for ox in 0..ow {
                    let s = src[(2 * oy) * w + 2 * ox]
                        + src[(2 * oy) * w + 2 * ox + 1]
                        + src[(2 * oy + 1) * w + 2 * ox]
                        + src[(2 * oy + 1) * w + 2 * ox + 1];
                    dst[oy * ow + ox] = 0.25 * s;
                }
            }
        }
    }
}

/// 2× nearest-neighbour upsampling of `x` into `y`.
fn upsample_into(x: &Tensor, y: &mut Tensor) {
    let [n, c, h, _w] = x.shape();
    let w = x.w();
    let (oh, ow) = (h * 2, w * 2);
    for b in 0..n {
        for ci in 0..c {
            let src = x.plane(b, ci);
            let dst = y.plane_mut(b, ci);
            for oy in 0..oh {
                for ox in 0..ow {
                    dst[oy * ow + ox] = src[(oy / 2) * w + ox / 2];
                }
            }
        }
    }
}

/// 2×2 average pooling (halves height and width).
///
/// # Example
///
/// ```
/// use pp_nn::{AvgPool2, Layer, Tensor};
///
/// let mut pool = AvgPool2::new();
/// let y = pool.forward(Tensor::zeros([1, 2, 8, 8]));
/// assert_eq!(y.shape(), [1, 2, 4, 4]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AvgPool2 {
    input_shape: Option<[usize; 4]>,
}

impl AvgPool2 {
    /// Creates the pool.
    pub fn new() -> Self {
        AvgPool2::default()
    }
}

impl Layer for AvgPool2 {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let [n, c, h, w] = x.shape();
        assert!(h % 2 == 0 && w % 2 == 0, "spatial dims must be even");
        let mut y = Tensor::zeros([n, c, h / 2, w / 2]);
        avgpool_into(&x, &mut y);
        self.input_shape = Some(x.shape());
        y
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let [n, c, h, w] = x.shape();
        assert!(h % 2 == 0 && w % 2 == 0, "spatial dims must be even");
        let mut y = Tensor::from_vec([n, c, h / 2, w / 2], ws.take(n * c * (h / 2) * (w / 2)));
        avgpool_into(x, &mut y);
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let shape = self.input_shape.take().expect("backward without forward");
        let [n, c, h, w] = shape;
        let (oh, ow) = (h / 2, w / 2);
        let mut gx = Tensor::zeros(shape);
        for b in 0..n {
            for ci in 0..c {
                let src = grad.plane(b, ci).to_vec();
                let dst = gx.plane_mut(b, ci);
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = 0.25 * src[oy * ow + ox];
                        dst[(2 * oy) * w + 2 * ox] = g;
                        dst[(2 * oy) * w + 2 * ox + 1] = g;
                        dst[(2 * oy + 1) * w + 2 * ox] = g;
                        dst[(2 * oy + 1) * w + 2 * ox + 1] = g;
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// 2× nearest-neighbour upsampling (doubles height and width).
#[derive(Debug, Clone, Default)]
pub struct Upsample2 {
    input_shape: Option<[usize; 4]>,
}

impl Upsample2 {
    /// Creates the upsampler.
    pub fn new() -> Self {
        Upsample2::default()
    }
}

impl Layer for Upsample2 {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let [n, c, h, w] = x.shape();
        let mut y = Tensor::zeros([n, c, h * 2, w * 2]);
        upsample_into(&x, &mut y);
        self.input_shape = Some(x.shape());
        y
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let [n, c, h, w] = x.shape();
        let mut y = Tensor::from_vec([n, c, h * 2, w * 2], ws.take(n * c * h * 2 * w * 2));
        upsample_into(x, &mut y);
        y
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let shape = self.input_shape.take().expect("backward without forward");
        let [n, c, h, w] = shape;
        let ow = w * 2;
        let mut gx = Tensor::zeros(shape);
        for b in 0..n {
            for ci in 0..c {
                let src = grad.plane(b, ci).to_vec();
                let dst = gx.plane_mut(b, ci);
                for oy in 0..h * 2 {
                    for ox in 0..ow {
                        dst[(oy / 2) * w + ox / 2] += src[oy * ow + ox];
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(shape: [usize; 4], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::from_vec(
            shape,
            (0..shape.iter().product())
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
        )
    }

    #[test]
    fn avgpool_averages() {
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = pool.forward(x);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn upsample_replicates() {
        let mut up = Upsample2::new();
        let x = Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]);
        let y = up.forward(x);
        assert_eq!(y.shape(), [1, 1, 2, 4]);
        assert_eq!(y.data(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_then_upsample_shape_roundtrip() {
        let mut pool = AvgPool2::new();
        let mut up = Upsample2::new();
        let x = random_tensor([2, 3, 4, 4], 1);
        let y = up.forward(pool.forward(x.clone()));
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn gradcheck_avgpool() {
        check_layer(&mut AvgPool2::new(), random_tensor([1, 2, 4, 4], 2), 1e-2);
    }

    #[test]
    fn gradcheck_upsample() {
        check_layer(&mut Upsample2::new(), random_tensor([1, 2, 3, 3], 3), 1e-2);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn avgpool_rejects_odd() {
        let _ = AvgPool2::new().forward(Tensor::zeros([1, 1, 3, 4]));
    }
}
