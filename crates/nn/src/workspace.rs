//! A reusable buffer arena for allocation-free steady-state inference.
//!
//! Layers grab scratch (im2col panels, activation buffers) with
//! [`Workspace::take`] and return it with [`Workspace::give`]; after the
//! first pass through a network every buffer comes from the pool, so a
//! DDIM sampling loop performs no heap allocation per step.

/// A pool of `f32` buffers recycled across forward passes.
///
/// # Example
///
/// ```
/// use pp_nn::Workspace;
///
/// let mut ws = Workspace::new();
/// let buf = ws.take(128);
/// assert_eq!(buf.len(), 128);
/// ws.give(buf);
/// // The next take of any size reuses the same allocation when it fits.
/// let again = ws.take(64);
/// assert!(again.capacity() >= 128);
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    /// Buffers kept sorted ascending by capacity (maintained by
    /// [`Workspace::give`]), so `take` can best-fit in O(log n).
    pool: Vec<Vec<f32>>,
}

/// Upper bound on pooled buffers; beyond this, returned buffers are
/// simply dropped (a U-Net forward holds well under this many live
/// intermediates).
const MAX_POOLED: usize = 64;

impl Workspace {
    /// An empty pool.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A buffer of exactly `len` elements.
    ///
    /// Contents are unspecified (callers are expected to overwrite every
    /// element). Best-fit reuse: the smallest pooled buffer whose
    /// capacity already covers `len`, else the largest one (grown),
    /// so small requests don't capture — and permanently inflate — the
    /// big activation buffers.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        if self.pool.is_empty() {
            return vec![0.0; len];
        }
        let i = self.pool.partition_point(|b| b.capacity() < len);
        let mut buf = if i < self.pool.len() {
            self.pool.remove(i)
        } else {
            self.pool.pop().expect("pool is non-empty")
        };
        buf.resize(len, 0.0);
        buf
    }

    /// Like [`Workspace::take`] but guarantees an all-zero buffer.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse (sorted insert, keeping
    /// the pool ordered by capacity for best-fit `take`).
    pub fn give(&mut self, buf: Vec<f32>) {
        if self.pool.len() < MAX_POOLED && buf.capacity() > 0 {
            let i = self.pool.partition_point(|b| b.capacity() < buf.capacity());
            self.pool.insert(i, buf);
        }
    }

    /// Number of pooled buffers (diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Workspaces embedded in layers are scratch, not state: cloning a
/// network must not duplicate (or share) pool memory.
impl Clone for Workspace {
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_recycles_allocations() {
        let mut ws = Workspace::new();
        let buf = ws.take(100);
        let ptr = buf.as_ptr();
        ws.give(buf);
        let buf2 = ws.take(50);
        assert_eq!(buf2.as_ptr(), ptr, "expected the pooled allocation back");
        assert_eq!(buf2.len(), 50);
    }

    #[test]
    fn take_zeroed_clears_previous_contents() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(4);
        buf.fill(7.0);
        ws.give(buf);
        let buf = ws.take_zeroed(4);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn large_requests_get_the_large_buffer() {
        let mut ws = Workspace::new();
        let small = ws.take(8);
        let big = ws.take(1024);
        let big_ptr = big.as_ptr();
        ws.give(small);
        ws.give(big);
        let got = ws.take(512);
        assert_eq!(got.as_ptr(), big_ptr);
    }

    /// Small requests must not capture (and then permanently grow) the
    /// big activation buffers: best-fit hands back the smallest buffer
    /// that already fits.
    #[test]
    fn small_requests_do_not_steal_large_buffers() {
        let mut ws = Workspace::new();
        let small = ws.take(8);
        let big = ws.take(1024);
        let small_ptr = small.as_ptr();
        let big_ptr = big.as_ptr();
        ws.give(big);
        ws.give(small);
        let got = ws.take(4);
        assert_eq!(got.as_ptr(), small_ptr);
        let got_big = ws.take(1000);
        assert_eq!(got_big.as_ptr(), big_ptr);
    }

    #[test]
    fn clone_is_empty() {
        let mut ws = Workspace::new();
        ws.give(vec![0.0; 16]);
        assert_eq!(ws.clone().pooled(), 0);
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..(MAX_POOLED + 10) {
            ws.give(vec![0.0; 4]);
        }
        assert_eq!(ws.pooled(), MAX_POOLED);
    }
}
