//! The Adam and SGD optimisers.

use crate::param::Param;
use crate::Layer;

/// A snapshot of an [`Adam`] optimiser's mutable state (step counter +
/// first/second moment buffers), detached from the learning-rate
/// hyperparameter so a resumed training run can restore the exact
/// update trajectory: `Adam::restore(lr, state)` followed by the same
/// gradient sequence is bit-identical to an optimiser that never
/// stopped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamState {
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// Per-parameter-tensor `(m, v)` moment buffers, in
    /// [`Layer::visit_params`] visitation order.
    pub moments: Vec<(Vec<f32>, Vec<f32>)>,
}

/// Adam (Kingma & Ba) over the parameters of one network.
///
/// Moment buffers are allocated lazily on the first step and matched to
/// parameters by visitation order, which [`Layer::visit_params`]
/// guarantees to be stable.
///
/// # Example
///
/// ```
/// use pp_nn::{Adam, Layer, Linear, Tensor};
///
/// let mut net = Linear::new(2, 1, 0);
/// let mut opt = Adam::new(1e-2);
/// // One dummy step: forward, backward, update.
/// let y = net.forward(Tensor::from_vec([1, 2, 1, 1], vec![1.0, -1.0]));
/// let _ = net.backward(y); // loss = 0.5 y²
/// opt.step(&mut net);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates an optimiser with the given learning rate and standard
    /// betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Updates the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Rebuilds an optimiser from a learning rate and a state snapshot
    /// (see [`Adam::state`]); stepping it continues the original update
    /// trajectory bit for bit.
    pub fn restore(lr: f32, state: AdamState) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: state.t,
            moments: state.moments,
        }
    }

    /// Snapshots the mutable state (step counter + moment buffers) for
    /// checkpointing; hyperparameters are the caller's to persist.
    pub fn state(&self) -> AdamState {
        AdamState {
            t: self.t,
            moments: self.moments.clone(),
        }
    }

    /// Applies one update step from the accumulated gradients, then
    /// leaves gradients untouched (call [`Layer::zero_grad`] yourself,
    /// which allows gradient accumulation across micro-batches).
    pub fn step<L: Layer + ?Sized>(&mut self, net: &mut L) {
        self.t += 1;
        let t = self.t as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let lr = self.lr;
        let eps = self.eps;
        let moments = &mut self.moments;
        let mut idx = 0usize;
        net.visit_params(&mut |p: &mut Param| {
            if moments.len() <= idx {
                moments.push((vec![0.0; p.len()], vec![0.0; p.len()]));
            }
            let (m, v) = &mut moments[idx];
            assert_eq!(m.len(), p.len(), "parameter shape changed between steps");
            for i in 0..p.len() {
                let g = p.grad[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                p.value[i] -= lr * mh / (vh.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Plain stochastic gradient descent: `p -= lr · g`.
///
/// Stateless between steps, so it needs no checkpointable state — the
/// cheap baseline next to [`Adam`] for ablations and for workloads
/// where the moment buffers' memory matters.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an optimiser with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Updates the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one descent step from the accumulated gradients; like
    /// [`Adam::step`], gradients are left untouched for accumulation.
    pub fn step<L: Layer + ?Sized>(&mut self, net: &mut L) {
        let lr = self.lr;
        net.visit_params(&mut |p: &mut Param| {
            for i in 0..p.len() {
                p.value[i] -= lr * p.grad[i];
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::tensor::Tensor;

    /// Adam drives a linear model to fit y = 2x.
    #[test]
    fn fits_linear_function() {
        let mut net = Linear::new(1, 1, 3);
        let mut opt = Adam::new(0.05);
        for _ in 0..300 {
            net.zero_grad();
            let mut loss = 0.0;
            for &(x, target) in &[(-1.0f32, -2.0f32), (0.5, 1.0), (2.0, 4.0)] {
                let y = net.forward(Tensor::from_vec([1, 1, 1, 1], vec![x]));
                let err = y.data()[0] - target;
                loss += err * err;
                let _ = net.backward(Tensor::from_vec([1, 1, 1, 1], vec![2.0 * err]));
            }
            opt.step(&mut net);
            if loss < 1e-8 {
                break;
            }
        }
        let y = net.forward(Tensor::from_vec([1, 1, 1, 1], vec![3.0]));
        assert!((y.data()[0] - 6.0).abs() < 0.05, "got {}", y.data()[0]);
    }

    #[test]
    fn step_decreases_quadratic_loss() {
        let mut net = Linear::new(2, 2, 5);
        let mut opt = Adam::new(0.01);
        let x = Tensor::from_vec([1, 2, 1, 1], vec![1.0, -0.5]);
        let loss_of = |net: &mut Linear| {
            let y = net.forward(x.clone());
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let before = loss_of(&mut net);
        for _ in 0..50 {
            net.zero_grad();
            let y = net.forward(x.clone());
            let _ = net.backward(y);
            opt.step(&mut net);
        }
        let after = loss_of(&mut net);
        assert!(after < before * 0.5, "loss {before} -> {after}");
    }

    #[test]
    fn lr_accessor() {
        let mut opt = Adam::new(0.1);
        opt.set_lr(0.2);
        assert_eq!(opt.lr(), 0.2);
        let mut sgd = Sgd::new(0.1);
        sgd.set_lr(0.3);
        assert_eq!(sgd.lr(), 0.3);
    }

    /// Snapshot-and-restore mid-training continues the exact update
    /// trajectory: interleaved steps match an uninterrupted optimiser
    /// bit for bit.
    #[test]
    fn state_roundtrip_is_bit_identical() {
        let run = |split: bool| {
            let mut net = Linear::new(2, 2, 9);
            let x = Tensor::from_vec([1, 2, 1, 1], vec![0.7, -1.3]);
            let mut opt = Adam::new(0.02);
            for step in 0..8 {
                if split && step == 4 {
                    // Park and resume: serialize through the snapshot.
                    let state = opt.state();
                    opt = Adam::restore(0.02, state);
                }
                net.zero_grad();
                let y = net.forward(x.clone());
                let _ = net.backward(y);
                opt.step(&mut net);
            }
            let mut weights = Vec::new();
            net.visit_params(&mut |p: &mut Param| weights.extend_from_slice(&p.value));
            weights
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn sgd_decreases_quadratic_loss() {
        let mut net = Linear::new(2, 2, 5);
        let mut opt = Sgd::new(0.05);
        let x = Tensor::from_vec([1, 2, 1, 1], vec![1.0, -0.5]);
        let loss_of = |net: &mut Linear| {
            let y = net.forward(x.clone());
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        let before = loss_of(&mut net);
        for _ in 0..50 {
            net.zero_grad();
            let y = net.forward(x.clone());
            let _ = net.backward(y);
            opt.step(&mut net);
        }
        let after = loss_of(&mut net);
        assert!(after < before * 0.5, "loss {before} -> {after}");
    }
}
