//! Fully connected layers over `[n, c, 1, 1]` feature vectors.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::Layer;

/// A dense layer `y = Wx + b` acting on the channel dimension.
///
/// Inputs must have spatial size 1×1 (feature vectors); used for time
/// embeddings and the CUP latent head.
///
/// # Example
///
/// ```
/// use pp_nn::{Layer, Linear, Tensor};
///
/// let mut lin = Linear::new(3, 5, 0);
/// let y = lin.forward(Tensor::zeros([2, 3, 1, 1]));
/// assert_eq!(y.shape(), [2, 5, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    in_c: usize,
    out_c: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a dense layer with Kaiming-initialised weights.
    pub fn new(in_c: usize, out_c: usize, seed: u64) -> Self {
        Linear {
            in_c,
            out_c,
            weight: Param::kaiming(out_c * in_c, in_c, seed),
            bias: Param::zeros(out_c),
            cached_input: None,
        }
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input feature mismatch");
        assert_eq!((x.h(), x.w()), (1, 1), "linear expects 1x1 spatial dims");
        let n = x.n();
        let mut out = Tensor::zeros([n, self.out_c, 1, 1]);
        for b in 0..n {
            let xi = &x.data()[b * self.in_c..(b + 1) * self.in_c];
            let oi = &mut out.data_mut()[b * self.out_c..(b + 1) * self.out_c];
            for (o, (orow, bias)) in oi
                .iter_mut()
                .zip(self.weight.value.chunks(self.in_c).zip(&self.bias.value))
                .map(|(o, wb)| (o, wb))
            {
                *o = *bias + orow.iter().zip(xi).map(|(&w, &v)| w * v).sum::<f32>();
            }
        }
        self.cached_input = Some(x);
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called without forward");
        let n = x.n();
        let mut gx = Tensor::zeros(x.shape());
        for b in 0..n {
            let xi = &x.data()[b * self.in_c..(b + 1) * self.in_c];
            let gi = &grad.data()[b * self.out_c..(b + 1) * self.out_c];
            for (oc, &g) in gi.iter().enumerate() {
                self.bias.grad[oc] += g;
                let wrow = &self.weight.value[oc * self.in_c..(oc + 1) * self.in_c];
                let wgrow = &mut self.weight.grad[oc * self.in_c..(oc + 1) * self.in_c];
                let gxi = &mut gx.data_mut()[b * self.in_c..(b + 1) * self.in_c];
                for i in 0..self.in_c {
                    wgrow[i] += g * xi[i];
                    gxi[i] += g * wrow[i];
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn known_weights() {
        let mut lin = Linear::new(2, 1, 0);
        lin.weight.value = vec![2.0, -1.0];
        lin.bias.value = vec![0.5];
        let y = lin.forward(Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]));
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn batch_independent() {
        let mut lin = Linear::new(1, 1, 0);
        lin.weight.value = vec![1.0];
        let y = lin.forward(Tensor::from_vec([2, 1, 1, 1], vec![1.0, 5.0]));
        assert_eq!(y.data(), &[1.0, 5.0]);
    }

    #[test]
    fn gradcheck() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::from_vec(
            [2, 3, 1, 1],
            (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        check_layer(&mut Linear::new(3, 4, 11), x, 1e-2);
    }

    #[test]
    #[should_panic(expected = "1x1 spatial")]
    fn rejects_spatial_input() {
        let mut lin = Linear::new(2, 2, 0);
        let _ = lin.forward(Tensor::zeros([1, 2, 2, 2]));
    }
}
