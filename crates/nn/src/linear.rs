//! Fully connected layers over `[n, c, 1, 1]` feature vectors.

use crate::gemm::{sgemm, sgemm_nt, sgemm_tn};
use crate::param::Param;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use crate::Layer;

/// A dense layer `y = Wx + b` acting on the channel dimension.
///
/// Inputs must have spatial size 1×1 (feature vectors); used for time
/// embeddings and the CUP latent head. Forward is one `X·Wᵀ` GEMM over
/// the whole batch; backward accumulates `Gᵀ·X` (weights) and `G·W`
/// (inputs) through the transposed GEMM variants.
///
/// # Example
///
/// ```
/// use pp_nn::{Layer, Linear, Tensor};
///
/// let mut lin = Linear::new(3, 5, 0);
/// let y = lin.forward(Tensor::zeros([2, 3, 1, 1]));
/// assert_eq!(y.shape(), [2, 5, 1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    in_c: usize,
    out_c: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a dense layer with Kaiming-initialised weights.
    pub fn new(in_c: usize, out_c: usize, seed: u64) -> Self {
        Linear {
            in_c,
            out_c,
            weight: Param::kaiming(out_c * in_c, in_c, seed),
            bias: Param::zeros(out_c),
            cached_input: None,
        }
    }
    /// The shared forward body: `out = X·Wᵀ + b` in one GEMM, with the
    /// output buffer drawn from `ws`.
    fn run_forward(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input feature mismatch");
        assert_eq!((x.h(), x.w()), (1, 1), "linear expects 1x1 spatial dims");
        let n = x.n();
        let mut out = Tensor::from_vec([n, self.out_c, 1, 1], ws.take(n * self.out_c));
        sgemm_nt(
            n,
            self.in_c,
            self.out_c,
            x.data(),
            &self.weight.value,
            out.data_mut(),
            0.0,
        );
        for b in 0..n {
            let oi = &mut out.data_mut()[b * self.out_c..(b + 1) * self.out_c];
            for (o, &bias) in oi.iter_mut().zip(&self.bias.value) {
                *o += bias;
            }
        }
        out
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let mut ws = Workspace::new();
        let out = self.run_forward(&x, &mut ws);
        self.cached_input = Some(x);
        out
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        self.run_forward(x, ws)
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called without forward");
        let n = x.n();
        let mut gx = Tensor::zeros(x.shape());
        // Bias gradient: column sums of G.
        for b in 0..n {
            let gi = &grad.data()[b * self.out_c..(b + 1) * self.out_c];
            for (bg, &g) in self.bias.grad.iter_mut().zip(gi) {
                *bg += g;
            }
        }
        // Weight gradient: Wg += Gᵀ·X (G stored n×out_c, i.e. k×m).
        sgemm_tn(
            self.out_c,
            n,
            self.in_c,
            grad.data(),
            x.data(),
            &mut self.weight.grad,
            1.0,
        );
        // Input gradient: Gx = G·W.
        sgemm(
            n,
            self.out_c,
            self.in_c,
            grad.data(),
            &self.weight.value,
            gx.data_mut(),
            0.0,
        );
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn known_weights() {
        let mut lin = Linear::new(2, 1, 0);
        lin.weight.value = vec![2.0, -1.0];
        lin.bias.value = vec![0.5];
        let y = lin.forward(Tensor::from_vec([1, 2, 1, 1], vec![3.0, 4.0]));
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn batch_independent() {
        let mut lin = Linear::new(1, 1, 0);
        lin.weight.value = vec![1.0];
        let y = lin.forward(Tensor::from_vec([2, 1, 1, 1], vec![1.0, 5.0]));
        assert_eq!(y.data(), &[1.0, 5.0]);
    }

    #[test]
    fn gradcheck() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::from_vec(
            [2, 3, 1, 1],
            (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        check_layer(&mut Linear::new(3, 4, 11), x, 1e-2);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_vec(
            [3, 4, 1, 1],
            (0..12).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let mut lin = Linear::new(4, 6, 3);
        let y = lin.forward(x.clone());
        let mut ws = Workspace::new();
        let yi = lin.forward_infer(&x, &mut ws);
        assert_eq!(y.data(), yi.data());
    }

    #[test]
    #[should_panic(expected = "1x1 spatial")]
    fn rejects_spatial_input() {
        let mut lin = Linear::new(2, 2, 0);
        let _ = lin.forward(Tensor::zeros([1, 2, 2, 2]));
    }
}
