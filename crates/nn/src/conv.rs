//! 2-D convolution (stride 1, "same" padding) via im2col + GEMM.

use crate::gemm::{sgemm, sgemm_nt, sgemm_tn};
use crate::param::Param;
use crate::tensor::Tensor;
use crate::workspace::Workspace;
use crate::Layer;

/// A stride-1 convolution with odd kernel size and same padding.
///
/// Weight layout is `[out_c][in_c][ky][kx]`; bias is per output channel.
/// Forward lowers each sample to an im2col matrix and multiplies it with
/// the weight matrix through the register-blocked [`crate::gemm`]
/// kernels; backward rebuilds the col matrix (recompute-over-store) and
/// produces both parameter and input gradients through the transposed
/// GEMM variants. The im2col scratch persists across calls (training) or
/// comes from a caller [`Workspace`] (inference), so steady-state passes
/// perform no scratch allocation.
///
/// # Example
///
/// ```
/// use pp_nn::{Conv2d, Layer, Tensor};
///
/// let mut conv = Conv2d::new(1, 4, 3, 0);
/// let y = conv.forward(Tensor::zeros([2, 1, 8, 8]));
/// assert_eq!(y.shape(), [2, 4, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    scratch: Workspace,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (same padding needs odd kernels).
    pub fn new(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        assert!(k % 2 == 1, "kernel size must be odd");
        let fan_in = in_c * k * k;
        Conv2d {
            in_c,
            out_c,
            k,
            weight: Param::kaiming(out_c * fan_in, fan_in, seed),
            bias: Param::zeros(out_c),
            cached_input: None,
            scratch: Workspace::new(),
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Builds the im2col matrix `[in_c·k·k, h·w]` for one sample.
    ///
    /// Each (channel, tap, row) strip is one contiguous copy of
    /// `w − |shift|` pixels plus zeroed edges, instead of a per-pixel
    /// branch; the per-pixel reference below is kept for the
    /// [`crate::gemm::set_force_naive`] baseline and the tests.
    fn im2col(&self, x: &Tensor, n: usize, col: &mut [f32]) {
        if crate::gemm::force_naive() {
            return self.im2col_reference(x, n, col);
        }
        let (h, w) = (x.h(), x.w());
        let k = self.k;
        let pad = k / 2;
        let hw = h * w;
        for ic in 0..self.in_c {
            let plane = x.plane(n, ic);
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ic * k + ky) * k + kx) * hw;
                    // Source x = out x + shift; valid out x range is
                    // [d0, d0 + len) copied from source offset s0.
                    let shift = kx as isize - pad as isize;
                    let d0 = shift.unsigned_abs().min(w) * usize::from(shift < 0);
                    let s0 = (shift.max(0) as usize).min(w);
                    let len = w - shift.unsigned_abs().min(w);
                    for oy in 0..h {
                        let iy = oy + ky;
                        let dst = &mut col[row + oy * w..row + (oy + 1) * w];
                        if iy < pad || iy >= h + pad {
                            dst.fill(0.0);
                            continue;
                        }
                        let sy = iy - pad;
                        dst[..d0].fill(0.0);
                        dst[d0 + len..].fill(0.0);
                        dst[d0..d0 + len].copy_from_slice(&plane[sy * w + s0..sy * w + s0 + len]);
                    }
                }
            }
        }
    }

    /// Per-pixel reference im2col (the pre-rework implementation).
    fn im2col_reference(&self, x: &Tensor, n: usize, col: &mut [f32]) {
        let (h, w) = (x.h(), x.w());
        let k = self.k;
        let pad = k / 2;
        let hw = h * w;
        for ic in 0..self.in_c {
            let plane = x.plane(n, ic);
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ic * k + ky) * k + kx) * hw;
                    for oy in 0..h {
                        let iy = oy + ky;
                        let out_row = row + oy * w;
                        if iy < pad || iy >= h + pad {
                            col[out_row..out_row + w].fill(0.0);
                            continue;
                        }
                        let sy = iy - pad;
                        for ox in 0..w {
                            let ix = ox + kx;
                            col[out_row + ox] = if ix < pad || ix >= w + pad {
                                0.0
                            } else {
                                plane[sy * w + (ix - pad)]
                            };
                        }
                    }
                }
            }
        }
    }

    /// Scatter-adds a col-gradient back to an input-gradient plane set.
    fn col2im(&self, colg: &[f32], gx: &mut Tensor, n: usize) {
        let (h, w) = (gx.h(), gx.w());
        let k = self.k;
        let pad = k / 2;
        let hw = h * w;
        for ic in 0..self.in_c {
            let plane = gx.plane_mut(n, ic);
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ic * k + ky) * k + kx) * hw;
                    for oy in 0..h {
                        let iy = oy + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        let sy = iy - pad;
                        for ox in 0..w {
                            let ix = ox + kx;
                            if ix >= pad && ix < w + pad {
                                plane[sy * w + (ix - pad)] += colg[row + oy * w + ox];
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whether the sample's input planes can feed the GEMM directly: a
    /// 1×1 same-padding conv's im2col matrix *is* the input.
    fn direct_input(&self) -> bool {
        self.k == 1 && !crate::gemm::force_naive()
    }

    /// The shared forward body: `out[b] = W · col(x[b]) + bias` per
    /// sample, with scratch and the output buffer drawn from `ws`.
    fn run_forward(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input channel mismatch");
        let (n, h, w) = (x.n(), x.h(), x.w());
        let hw = h * w;
        let ick = self.in_c * self.k * self.k;
        // Take the col scratch first: in the training path (layer-owned
        // pool) it is the buffer `give`n back last call, so it gets
        // reused while the returned output draws a fresh allocation.
        let mut col = if self.direct_input() {
            Vec::new()
        } else {
            ws.take(ick * hw)
        };
        let mut out = Tensor::from_vec([n, self.out_c, h, w], ws.take(n * self.out_c * hw));
        for b in 0..n {
            // out rows for sample b are contiguous: one GEMM per sample.
            let c = &mut out.data_mut()[b * self.out_c * hw..(b + 1) * self.out_c * hw];
            if self.direct_input() {
                let xb = &x.data()[b * ick * hw..(b + 1) * ick * hw];
                sgemm(self.out_c, ick, hw, &self.weight.value, xb, c, 0.0);
            } else {
                self.im2col(x, b, &mut col);
                sgemm(self.out_c, ick, hw, &self.weight.value, &col, c, 0.0);
            }
            for oc in 0..self.out_c {
                let bias = self.bias.value[oc];
                if bias != 0.0 {
                    for v in &mut c[oc * hw..(oc + 1) * hw] {
                        *v += bias;
                    }
                }
            }
        }
        ws.give(col);
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor) -> Tensor {
        let mut ws = std::mem::take(&mut self.scratch);
        let out = self.run_forward(&x, &mut ws);
        self.scratch = ws;
        self.cached_input = Some(x);
        out
    }

    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        self.run_forward(x, ws)
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called without forward");
        let (n, h, w) = (x.n(), x.h(), x.w());
        let hw = h * w;
        let ick = self.in_c * self.k * self.k;
        let mut ws = std::mem::take(&mut self.scratch);
        let mut gx = Tensor::zeros(x.shape());
        let direct = self.direct_input();
        let mut col = if direct {
            Vec::new()
        } else {
            ws.take(ick * hw)
        };
        let mut colg = if direct {
            Vec::new()
        } else {
            ws.take(ick * hw)
        };
        for b in 0..n {
            let go = &grad.data()[b * self.out_c * hw..(b + 1) * self.out_c * hw];
            // Bias gradient: per-channel sums of the output gradient.
            for oc in 0..self.out_c {
                self.bias.grad[oc] += go[oc * hw..(oc + 1) * hw].iter().sum::<f32>();
            }
            if direct {
                // 1×1: the col matrix is the input and col2im is the
                // identity, so both GEMMs run on the tensors in place.
                let xb = &x.data()[b * ick * hw..(b + 1) * ick * hw];
                sgemm_nt(self.out_c, hw, ick, go, xb, &mut self.weight.grad, 1.0);
                let gxb = &mut gx.data_mut()[b * ick * hw..(b + 1) * ick * hw];
                sgemm_tn(ick, self.out_c, hw, &self.weight.value, go, gxb, 0.0);
            } else {
                self.im2col(&x, b, &mut col);
                // Weight gradient: Wg += gradOut · colᵀ.
                sgemm_nt(self.out_c, hw, ick, go, &col, &mut self.weight.grad, 1.0);
                // Input gradient via colᵍ = Wᵀ · gradOut, scattered back.
                sgemm_tn(ick, self.out_c, hw, &self.weight.value, go, &mut colg, 0.0);
                self.col2im(&colg, &mut gx, b);
            }
        }
        ws.give(col);
        ws.give(colg);
        self.scratch = ws;
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(shape: [usize; 4], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.iter().product())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.weight.value.fill(0.0);
        conv.weight.value[4] = 1.0; // centre tap
        conv.bias.value[0] = 0.0;
        let x = random_tensor([1, 1, 5, 5], 1);
        let y = conv.forward(x.clone());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_offsets_output() {
        let mut conv = Conv2d::new(1, 2, 1, 0);
        conv.weight.value.fill(0.0);
        conv.bias.value = vec![1.5, -2.0];
        let y = conv.forward(Tensor::zeros([1, 1, 2, 2]));
        assert!(y.plane(0, 0).iter().all(|&v| v == 1.5));
        assert!(y.plane(0, 1).iter().all(|&v| v == -2.0));
    }

    #[test]
    fn padding_zeroes_outside() {
        // All-ones 3x3 kernel over all-ones image: corners see 4 taps.
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.weight.value.fill(1.0);
        let x = Tensor::from_vec([1, 1, 3, 3], vec![1.0; 9]);
        let y = conv.forward(x);
        assert_eq!(y.get(0, 0, 0, 0), 4.0);
        assert_eq!(y.get(0, 0, 1, 1), 9.0);
        assert_eq!(y.get(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn gradcheck_3x3() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        check_layer(&mut conv, random_tensor([2, 2, 4, 4], 3), 2e-2);
    }

    #[test]
    fn gradcheck_1x1() {
        let mut conv = Conv2d::new(3, 2, 1, 9);
        check_layer(&mut conv, random_tensor([1, 3, 3, 3], 5), 2e-2);
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut conv = Conv2d::new(3, 5, 3, 13);
        let x = random_tensor([2, 3, 6, 6], 21);
        let y_train = conv.forward(x.clone());
        let mut ws = Workspace::new();
        let y_infer = conv.forward_infer(&x, &mut ws);
        assert_eq!(y_train.data(), y_infer.data());
        // Second call reuses pooled buffers and still matches.
        ws.give(y_infer.into_vec());
        let y_again = conv.forward_infer(&x, &mut ws);
        assert_eq!(y_train.data(), y_again.data());
    }

    /// Each sample in a batch must compute exactly what it computes
    /// alone — the invariant batched DDIM sampling relies on.
    #[test]
    fn batch_rows_match_solo_bitwise() {
        let mut conv = Conv2d::new(2, 4, 3, 17);
        let xb = random_tensor([3, 2, 5, 5], 31);
        let yb = conv.forward(xb.clone());
        for b in 0..3 {
            let mut xs = Tensor::zeros([1, 2, 5, 5]);
            for c in 0..2 {
                xs.plane_mut(0, c).copy_from_slice(xb.plane(b, c));
            }
            let ys = conv.forward(xs);
            for c in 0..4 {
                assert_eq!(ys.plane(0, c), yb.plane(b, c), "sample {b} channel {c}");
            }
        }
    }

    #[test]
    fn im2col_fast_matches_reference() {
        for &(ic, k, h, w) in &[
            (2usize, 3usize, 5usize, 5usize),
            (1, 1, 4, 6),
            (3, 5, 4, 4),
            (2, 3, 6, 3),
        ] {
            let conv = Conv2d::new(ic, 2, k, 3);
            let x = random_tensor([2, ic, h, w], (ic + k + h + w) as u64);
            let len = ic * k * k * h * w;
            let mut fast = vec![7.0f32; len];
            let mut reference = vec![-7.0f32; len];
            for b in 0..2 {
                conv.im2col(&x, b, &mut fast);
                conv.im2col_reference(&x, b, &mut reference);
                assert_eq!(fast, reference, "ic={ic} k={k} {h}x{w} sample {b}");
            }
        }
    }

    #[test]
    fn param_count() {
        let mut conv = Conv2d::new(2, 4, 3, 0);
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channels() {
        let mut conv = Conv2d::new(2, 2, 3, 0);
        let _ = conv.forward(Tensor::zeros([1, 3, 4, 4]));
    }
}
