//! 2-D convolution (stride 1, "same" padding) via im2col.

use crate::param::Param;
use crate::tensor::Tensor;
use crate::Layer;

/// A stride-1 convolution with odd kernel size and same padding.
///
/// Weight layout is `[out_c][in_c][ky][kx]`; bias is per output channel.
/// Forward lowers each sample to an im2col matrix and performs a GEMM;
/// backward rebuilds the col matrix (recompute-over-store) and produces
/// both parameter and input gradients.
///
/// # Example
///
/// ```
/// use pp_nn::{Conv2d, Layer, Tensor};
///
/// let mut conv = Conv2d::new(1, 4, 3, 0);
/// let y = conv.forward(Tensor::zeros([2, 1, 8, 8]));
/// assert_eq!(y.shape(), [2, 4, 8, 8]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (same padding needs odd kernels).
    pub fn new(in_c: usize, out_c: usize, k: usize, seed: u64) -> Self {
        assert!(k % 2 == 1, "kernel size must be odd");
        let fan_in = in_c * k * k;
        Conv2d {
            in_c,
            out_c,
            k,
            weight: Param::kaiming(out_c * fan_in, fan_in, seed),
            bias: Param::zeros(out_c),
            cached_input: None,
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Builds the im2col matrix `[in_c·k·k, h·w]` for one sample.
    fn im2col(&self, x: &Tensor, n: usize, col: &mut [f32]) {
        let (h, w) = (x.h(), x.w());
        let k = self.k;
        let pad = k / 2;
        let hw = h * w;
        for ic in 0..self.in_c {
            let plane = x.plane(n, ic);
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ic * k + ky) * k + kx) * hw;
                    for oy in 0..h {
                        let iy = oy + ky;
                        let out_row = row + oy * w;
                        if iy < pad || iy >= h + pad {
                            col[out_row..out_row + w].fill(0.0);
                            continue;
                        }
                        let sy = iy - pad;
                        for ox in 0..w {
                            let ix = ox + kx;
                            col[out_row + ox] = if ix < pad || ix >= w + pad {
                                0.0
                            } else {
                                plane[sy * w + (ix - pad)]
                            };
                        }
                    }
                }
            }
        }
    }

    /// Scatter-adds a col-gradient back to an input-gradient plane set.
    fn col2im(&self, colg: &[f32], gx: &mut Tensor, n: usize) {
        let (h, w) = (gx.h(), gx.w());
        let k = self.k;
        let pad = k / 2;
        let hw = h * w;
        for ic in 0..self.in_c {
            let plane = gx.plane_mut(n, ic);
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((ic * k + ky) * k + kx) * hw;
                    for oy in 0..h {
                        let iy = oy + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        let sy = iy - pad;
                        for ox in 0..w {
                            let ix = ox + kx;
                            if ix >= pad && ix < w + pad {
                                plane[sy * w + (ix - pad)] += colg[row + oy * w + ox];
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: Tensor) -> Tensor {
        assert_eq!(x.c(), self.in_c, "input channel mismatch");
        let (n, h, w) = (x.n(), x.h(), x.w());
        let hw = h * w;
        let ick = self.in_c * self.k * self.k;
        let mut out = Tensor::zeros([n, self.out_c, h, w]);
        let mut col = vec![0.0f32; ick * hw];
        for b in 0..n {
            self.im2col(&x, b, &mut col);
            for oc in 0..self.out_c {
                let wrow = &self.weight.value[oc * ick..(oc + 1) * ick];
                let oplane = out.plane_mut(b, oc);
                oplane.fill(self.bias.value[oc]);
                for (p, &wv) in wrow.iter().enumerate() {
                    if wv != 0.0 {
                        let crow = &col[p * hw..(p + 1) * hw];
                        for (o, &c) in oplane.iter_mut().zip(crow) {
                            *o += wv * c;
                        }
                    }
                }
            }
        }
        self.cached_input = Some(x);
        out
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("backward called without forward");
        let (n, h, w) = (x.n(), x.h(), x.w());
        let hw = h * w;
        let ick = self.in_c * self.k * self.k;
        let mut gx = Tensor::zeros(x.shape());
        let mut col = vec![0.0f32; ick * hw];
        let mut colg = vec![0.0f32; ick * hw];
        for b in 0..n {
            self.im2col(&x, b, &mut col);
            // Bias and weight gradients.
            for oc in 0..self.out_c {
                let go = grad.plane(b, oc);
                self.bias.grad[oc] += go.iter().sum::<f32>();
                let wg = &mut self.weight.grad[oc * ick..(oc + 1) * ick];
                for p in 0..ick {
                    let crow = &col[p * hw..(p + 1) * hw];
                    let mut acc = 0.0f32;
                    for (g, c) in go.iter().zip(crow) {
                        acc += g * c;
                    }
                    wg[p] += acc;
                }
            }
            // Input gradient via colᵍ = Wᵀ · gradOut.
            colg.fill(0.0);
            for oc in 0..self.out_c {
                let go = grad.plane(b, oc);
                let wrow = &self.weight.value[oc * ick..(oc + 1) * ick];
                for (p, &wv) in wrow.iter().enumerate() {
                    if wv != 0.0 {
                        let crow = &mut colg[p * hw..(p + 1) * hw];
                        for (cg, &g) in crow.iter_mut().zip(go) {
                            *cg += wv * g;
                        }
                    }
                }
            }
            self.col2im(&colg, &mut gx, b);
        }
        gx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(shape: [usize; 4], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.iter().product())
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.weight.value.fill(0.0);
        conv.weight.value[4] = 1.0; // centre tap
        conv.bias.value[0] = 0.0;
        let x = random_tensor([1, 1, 5, 5], 1);
        let y = conv.forward(x.clone());
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn bias_offsets_output() {
        let mut conv = Conv2d::new(1, 2, 1, 0);
        conv.weight.value.fill(0.0);
        conv.bias.value = vec![1.5, -2.0];
        let y = conv.forward(Tensor::zeros([1, 1, 2, 2]));
        assert!(y.plane(0, 0).iter().all(|&v| v == 1.5));
        assert!(y.plane(0, 1).iter().all(|&v| v == -2.0));
    }

    #[test]
    fn padding_zeroes_outside() {
        // All-ones 3x3 kernel over all-ones image: corners see 4 taps.
        let mut conv = Conv2d::new(1, 1, 3, 0);
        conv.weight.value.fill(1.0);
        let x = Tensor::from_vec([1, 1, 3, 3], vec![1.0; 9]);
        let y = conv.forward(x);
        assert_eq!(y.get(0, 0, 0, 0), 4.0);
        assert_eq!(y.get(0, 0, 1, 1), 9.0);
        assert_eq!(y.get(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn gradcheck_3x3() {
        let mut conv = Conv2d::new(2, 3, 3, 7);
        check_layer(&mut conv, random_tensor([2, 2, 4, 4], 3), 2e-2);
    }

    #[test]
    fn gradcheck_1x1() {
        let mut conv = Conv2d::new(3, 2, 1, 9);
        check_layer(&mut conv, random_tensor([1, 3, 3, 3], 5), 2e-2);
    }

    #[test]
    fn param_count() {
        let mut conv = Conv2d::new(2, 4, 3, 0);
        assert_eq!(conv.param_count(), 4 * 2 * 9 + 4);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channels() {
        let mut conv = Conv2d::new(2, 2, 3, 0);
        let _ = conv.forward(Tensor::zeros([1, 3, 4, 4]));
    }
}
