//! A minimal from-scratch neural-network substrate.
//!
//! The PatternPaint paper builds on pretrained Stable Diffusion inpainting
//! models. No Rust diffusion ecosystem (or GPU) is available in this
//! reproduction, so this crate provides the smallest NN stack that lets
//! `pp-diffusion` train and run a pixel-space U-Net denoiser on CPU:
//!
//! * [`Tensor`] — dense NCHW f32 tensors;
//! * layers with **hand-written backward passes** ([`Conv2d`],
//!   [`Linear`], [`GroupNorm`], [`Silu`], [`Tanh`], [`AvgPool2`],
//!   [`Upsample2`]), each verified against finite differences in tests;
//! * [`Sequential`] composition for simple chains (used by the CUP
//!   baseline's autoencoder);
//! * the [`Adam`] optimiser.
//!
//! The design is deliberately cache-oriented rather than abstraction
//! oriented: every layer owns its forward activations (call
//! [`Layer::forward`] then [`Layer::backward`] in LIFO order), and
//! networks with skip connections (the U-Net) wire layers explicitly
//! instead of through a graph runtime.
//!
//! # Example
//!
//! ```
//! use pp_nn::{Layer, Linear, Tensor};
//!
//! let mut layer = Linear::new(4, 2, 0);
//! let x = Tensor::zeros([1, 4, 1, 1]);
//! let y = layer.forward(x);
//! assert_eq!(y.shape(), [1, 2, 1, 1]);
//! ```

// The SIMD kernels mark every pointer-touching operation with an
// explicit `unsafe {}` block plus a SAFETY comment; nothing is
// implicitly unsafe just because the enclosing fn is.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod act;
pub mod conv;
pub mod gemm;
pub mod linear;
pub mod norm;
pub mod optim;
pub mod param;
pub mod pool;
pub mod seq;
pub mod tensor;
pub mod workspace;

pub use act::{Silu, Tanh};
pub use conv::Conv2d;
pub use linear::Linear;
pub use norm::GroupNorm;
pub use optim::{Adam, AdamState, Sgd};
pub use param::Param;
pub use pool::{AvgPool2, Upsample2};
pub use seq::Sequential;
pub use tensor::Tensor;
pub use workspace::Workspace;

/// A differentiable module with owned parameters and cached activations.
///
/// Call [`Layer::forward`] exactly once before each [`Layer::backward`];
/// backward consumes the cached activations of the matching forward and
/// accumulates parameter gradients (zeroed via [`Layer::zero_grad`]).
pub trait Layer {
    /// Runs the layer, caching whatever backward will need.
    fn forward(&mut self, x: Tensor) -> Tensor;

    /// Propagates `grad` (∂loss/∂output) back, returning ∂loss/∂input and
    /// accumulating parameter gradients.
    fn backward(&mut self, grad: Tensor) -> Tensor;

    /// Inference-only forward: borrows the input, caches nothing for
    /// backward, and draws every scratch/output buffer from `ws` so a
    /// warmed-up sampling loop allocates nothing.
    ///
    /// The arithmetic is bit-identical to [`Layer::forward`]; the
    /// default falls back to it for layers without a dedicated path.
    fn forward_infer(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let _ = &ws;
        self.forward(x.clone())
    }

    /// Visits every parameter (stable order across calls).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.grad.iter_mut().for_each(|g| *g = 0.0));
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use crate::{Layer, Tensor};

    /// Verifies `layer`'s input gradient and parameter gradients against
    /// central finite differences of the scalar loss `0.5·Σ y²`.
    ///
    /// # Panics
    ///
    /// Panics when any analytic gradient deviates beyond `tol`.
    // The parameter loop drives a visit_params counter, not a slice walk.
    #[allow(clippy::needless_range_loop)]
    pub fn check_layer<L: Layer>(layer: &mut L, x: Tensor, tol: f32) {
        let eps = 1e-3f32;
        // Analytic gradients.
        layer.zero_grad();
        let y = layer.forward(x.clone());
        let grad_out = y.clone(); // d(0.5 Σ y²)/dy = y
        let grad_in = layer.backward(grad_out);

        // Input gradient check.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = half_sq(&layer.forward(xp));
            let lm = half_sq(&layer.forward(xm));
            let num = (lp - lm) / (2.0 * eps);
            let ana = grad_in.data()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                "input grad mismatch at {i}: numeric {num}, analytic {ana}"
            );
        }

        // Parameter gradient check (sampled to keep tests fast).
        let mut param_grads: Vec<Vec<f32>> = Vec::new();
        layer.visit_params(&mut |p| param_grads.push(p.grad.clone()));
        let mut pidx = 0;
        let nparams = param_grads.len();
        for pi in 0..nparams {
            let plen = param_grads[pi].len();
            let stride = (plen / 5).max(1);
            for i in (0..plen).step_by(stride) {
                let bump = |layer: &mut L, delta: f32| {
                    let mut count = 0;
                    layer.visit_params(&mut |p| {
                        if count == pi {
                            p.value[i] += delta;
                        }
                        count += 1;
                    });
                };
                bump(layer, eps);
                let lp = half_sq(&layer.forward(x.clone()));
                bump(layer, -2.0 * eps);
                let lm = half_sq(&layer.forward(x.clone()));
                bump(layer, eps);
                let num = (lp - lm) / (2.0 * eps);
                let ana = param_grads[pi][i];
                assert!(
                    (num - ana).abs() <= tol * (1.0 + num.abs().max(ana.abs())),
                    "param {pi}[{i}] grad mismatch: numeric {num}, analytic {ana}"
                );
            }
            pidx += 1;
        }
        let _ = pidx;
    }

    fn half_sq(y: &Tensor) -> f32 {
        0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
    }
}
