//! Routing test for [`pp_nn::gemm::set_force_naive`].
//!
//! The switch is process-global, so this lives in its own integration
//! binary (one process, one test): toggling it inside the `pp-nn` lib
//! tests would race the parallel bitwise-equality tests, which read the
//! flag on every kernel call.

use pp_nn::gemm::{force_naive, set_force_naive, sgemm};
use pp_nn::{Conv2d, Layer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

#[test]
fn force_naive_switch_routes_gemm_and_conv() {
    let (m, k, n) = (3usize, 5usize, 4usize);
    let a = random_vec(m * k, 11);
    let b = random_vec(k * n, 12);
    let mut c_blocked = vec![0.0; m * n];
    sgemm(m, k, n, &a, &b, &mut c_blocked, 0.0);

    set_force_naive(true);
    assert!(force_naive());
    let mut c_naive = vec![0.0; m * n];
    sgemm(m, k, n, &a, &b, &mut c_naive, 0.0);

    // Conv2d under the reference path must still agree with the blocked
    // path within float tolerance.
    let mut conv = Conv2d::new(2, 3, 3, 7);
    let x = Tensor::from_vec([1, 2, 6, 6], random_vec(72, 21));
    let y_naive = conv.forward(x.clone());
    set_force_naive(false);
    let y_blocked = conv.forward(x);

    for (i, (&p, &q)) in c_blocked.iter().zip(&c_naive).enumerate() {
        assert!(
            (p - q).abs() <= 1e-5 * (1.0 + p.abs().max(q.abs())),
            "gemm mismatch at {i}: {p} vs {q}"
        );
    }
    for (i, (&p, &q)) in y_blocked.data().iter().zip(y_naive.data()).enumerate() {
        assert!(
            (p - q).abs() <= 1e-4 * (1.0 + p.abs().max(q.abs())),
            "conv mismatch at {i}: {p} vs {q}"
        );
    }
}
