//! Kernel-throughput diagnostics (not part of tier-1: run with
//! `cargo test --release -p pp-nn --test perf_probe -- --ignored --nocapture`).
//!
//! Prints GF/s for the blocked and reference GEMM at the shapes the
//! standard 32×32 U-Net actually runs, so kernel regressions show up as
//! numbers rather than as a mysteriously slower `sampling_bench`.

use pp_nn::gemm::{sgemm, sgemm_naive};
use std::time::Instant;

fn gflops(
    m: usize,
    k: usize,
    n: usize,
    iters: usize,
    f: impl Fn(&[f32], &[f32], &mut [f32]),
) -> f64 {
    let a = vec![0.5f32; m * k];
    let b = vec![0.25f32; k * n];
    let mut c = vec![0.0f32; m * n];
    f(&a, &b, &mut c); // warmup
    let t0 = Instant::now();
    for _ in 0..iters {
        f(&a, &b, &mut c);
    }
    let secs = t0.elapsed().as_secs_f64();
    (2.0 * m as f64 * k as f64 * n as f64 * iters as f64) / secs / 1e9
}

#[test]
#[ignore = "perf diagnostic, not a correctness test"]
fn probe_gemm_rates() {
    // (m, k, n) = (out_c, in_c·k², h·w) for the U-Net's heaviest convs,
    // plus two wide-n shapes approximating a 16-job micro-batch.
    for &(m, k, n) in &[
        (16usize, 144usize, 1024usize),
        (32, 288, 256),
        (64, 576, 64),
        (32, 864, 256),
        (16, 432, 1024),
        (32, 288, 4096),
        (16, 432, 16384),
    ] {
        let blocked = gflops(m, k, n, 200, |a, b, c| sgemm(m, k, n, a, b, c, 0.0));
        let naive = gflops(m, k, n, 50, |a, b, c| sgemm_naive(m, k, n, a, b, c, 0.0));
        println!("{m}x{k}x{n}: blocked {blocked:.2} GF/s, reference {naive:.2} GF/s");
    }
}
