//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Benches compile and run as plain timing loops: each benchmark runs a
//! short warmup plus `sample_size` timed iterations and prints the mean
//! wall-clock time. No statistics, plots, or baselines — for rigorous
//! numbers use `pp-bench`'s dedicated binaries (e.g. `sampling_bench`),
//! which this workspace treats as the source of truth.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimiser from discarding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times one closure repeatedly.
pub struct Bencher {
    iters: usize,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations and reports the
    /// mean time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup iteration keeps cold-start noise out of the mean.
        black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let mean = t0.elapsed().as_secs_f64() / self.iters as f64;
        println!("    mean {:>12.6} s over {} iters", mean, self.iters);
    }
}

/// A benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench {name}");
        f(&mut Bencher {
            iters: self.sample_size,
        });
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("  {id}");
        f(&mut Bencher {
            iters: self.sample_size,
        });
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  {id}");
        f(
            &mut Bencher {
                iters: self.sample_size,
            },
            input,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0usize;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        // 1 warmup + 3 timed iterations.
        assert_eq!(count, 4);
    }

    #[test]
    fn group_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut seen = 0;
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &v| {
            b.iter(|| seen = v)
        });
        g.finish();
        assert_eq!(seen, 7);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
