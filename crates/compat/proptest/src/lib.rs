//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro over `pattern in strategy` arguments, integer
//! range strategies, tuple strategies, `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Instead of shrinking counterexamples it simply runs each property
//! over a deterministic sample stream and panics with the case inputs
//! on failure — enough to keep the workspace's property tests meaningful
//! without registry access.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (`with_cases` is the only knob used here).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

pub mod collection {
    //! Collection strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing vectors of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-property RNG (salted by property name hash).
pub fn runner_rng(salt: &str) -> StdRng {
    let mut h = 0xcbf29ce484222325u64;
    for b in salt.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// Fails the current property case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition (no re-draw here: the case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Fails the current property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// item runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { cases = ($cfg).cases as usize; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            cases = $crate::ProptestConfig::default().cases as usize;
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cases = $cases:expr; ) => {};
    ( cases = $cases:expr;
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cases: usize = $cases;
            let mut rng = $crate::runner_rng(stringify!($name));
            for case in 0..cases {
                let result: Result<(), String> = (|| {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!("property {} failed at case {case}: {msg}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { cases = $cases; $($rest)* }
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges and tuples sample within bounds.
        #[test]
        fn bounds_hold(a in 3usize..9, (x, y) in (0u32..4, 10u32..12)) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(x < 4 && (10..12).contains(&y), "got {x} {y}");
        }
    }

    proptest! {
        /// Vec strategy respects the size range.
        #[test]
        fn vec_sizes(v in collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 5).count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case() {
        // No #[test] on the inner property: it is invoked directly.
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
