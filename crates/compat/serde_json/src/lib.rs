//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! the [`Value`] tree, the [`json!`] macro over flat key/expression
//! objects, and [`to_string_pretty`].
//!
//! Object keys keep insertion order (the real crate's `preserve_order`
//! behaviour), which keeps report files diffable across runs.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64, printed without a fraction when whole).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

macro_rules! value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
    )*};
}

value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

/// Builds a [`Value`] from JSON-ish syntax.
///
/// Supports object literals with string-literal keys and Rust
/// expressions as values, array literals of expressions, `null`, and
/// bare expressions convertible via `Into<Value>` — the forms this
/// workspace's report writers use. Unlike the real crate, values cannot
/// be *nested* object/array literals; bind them to a variable with their
/// own `json!` call first.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::Value::from($value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($value) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serde_json refuses them, we print null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Pretty-prints a value with two-space indentation.
///
/// # Errors
///
/// Never fails; the `Result` mirrors the real crate's signature.
pub fn to_string_pretty(value: &Value) -> Result<String, std::fmt::Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_roundtrip_shape() {
        let rows = vec![json!({ "a": 1, "b": 2.5 })];
        let v = json!({ "rows": rows, "name": "x\"y", "flag": true });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": 1"));
        assert!(s.contains("\"b\": 2.5"));
        assert!(s.contains("\\\"y"));
        assert!(s.contains("\"flag\": true"));
    }

    #[test]
    fn whole_floats_print_as_integers() {
        let s = to_string_pretty(&json!({ "n": 3.0f64 })).unwrap();
        assert!(s.contains("\"n\": 3"), "{s}");
    }

    #[test]
    fn arrays_from_fixed_size() {
        let avg = [1.0f64, 2.0, 3.5];
        let s = to_string_pretty(&json!({ "avg": avg })).unwrap();
        assert!(s.contains("3.5"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string_pretty(&json!([])).unwrap(), "[]");
        assert_eq!(to_string_pretty(&json!({})).unwrap(), "{}");
        assert_eq!(to_string_pretty(&json!(null)).unwrap(), "null");
    }
}
