//! Offline stand-in for the subset of the `rand` crate API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods `gen_range`/`gen_bool`).
//!
//! The build container has no registry access, so this path dependency
//! replaces crates.io `rand`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic in the seed, which is all the workspace
//! relies on (reproducibility of a given seed, not the exact crates.io
//! `StdRng` stream).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler over half-open and closed ranges.
///
/// Mirrors rand's `SampleUniform` so that `gen_range(0..4)` infers the
/// integer type from context (a single blanket range impl, below).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        // 24 uniform bits, exact in f32: unit ∈ [0, 1 − 2⁻²⁴], so the
        // excluded upper bound cannot be produced by cast rounding
        // (a 53-bit f64 unit cast to f32 rounds to exactly 1.0 with
        // probability ~2⁻²⁵).
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        // 53 uniform bits, exact in f64: unit ∈ [0, 1 − 2⁻⁵³].
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; same role, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce it from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let av: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let bv: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        let cv: Vec<u32> = (0..8).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&w));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn untyped_literals_infer_from_context() {
        let mut rng = StdRng::seed_from_u64(4);
        let base: u32 = 10;
        let v = base + rng.gen_range(0..4);
        assert!((10..14).contains(&v));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f32_range_never_returns_upper_bound() {
        // Directly drive the unit construction at its extreme: a source
        // yielding all-ones bits must still stay below the bound.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v: f32 = crate::SampleRange::sample_single(-1.0f32..1.0, &mut MaxRng);
        assert!(v < 1.0, "upper bound leaked: {v}");
        let w: f64 = crate::SampleRange::sample_single(0.0f64..1.0, &mut MaxRng);
        assert!(w < 1.0, "upper bound leaked: {w}");
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(0.0f64..1.0);
            lo |= v < 0.25;
            hi |= v > 0.75;
        }
        assert!(lo && hi, "samples should spread across the range");
    }
}
