//! Offline stand-in for `serde`'s derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types but
//! never invokes serde-based (de)serialization at runtime — weights use
//! a hand-rolled binary format and reports go through the local
//! `serde_json` stand-in's `Value` type, which needs no trait bounds.
//! With no registry access in the build container, these no-op derives
//! keep the annotations compiling at zero cost.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
