//! Fixture tests: each rule fires on a minimal violating snippet, stays
//! quiet on the compliant twin, and is suppressible by a narrowly-scoped
//! `analyze.allow` waiver.
//!
//! Fixtures are in-memory `(path, source)` pairs fed through
//! [`pp_analyze::analyze_sources`]; paths are chosen to land inside (or
//! outside) each rule's scope in the default [`Config`].

use pp_analyze::allow::AllowList;
use pp_analyze::analyze_sources;
use pp_analyze::report::Analysis;
use pp_analyze::rules::Config;

fn run(sources: &[(&str, &str)]) -> Analysis {
    analyze_sources(sources, &Config::default(), &AllowList::default())
}

fn run_with_allow(sources: &[(&str, &str)], allow: &str) -> Analysis {
    let allow = AllowList::parse(allow).expect("fixture allow file parses");
    analyze_sources(sources, &Config::default(), &allow)
}

/// The distinct rule ids among the unwaived findings.
fn rules_of(a: &Analysis) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = a.findings.iter().map(|f| f.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

mod poison_hygiene {
    use super::*;

    const BAD: &str = r#"
        fn tick(m: &std::sync::Mutex<u32>) {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
    "#;

    #[test]
    fn fires_on_lock_unwrap() {
        let a = run(&[("crates/geometry/src/grid.rs", BAD)]);
        assert_eq!(rules_of(&a), ["poison-hygiene"], "{}", a.render_text());
        assert_eq!(a.findings[0].line, 3);
    }

    #[test]
    fn fires_on_rwlock_read_expect() {
        let src = r#"
            fn peek(m: &std::sync::RwLock<u32>) -> u32 {
                *m.read().expect("poisoned")
            }
        "#;
        let a = run(&[("crates/geometry/src/grid.rs", src)]);
        assert_eq!(rules_of(&a), ["poison-hygiene"], "{}", a.render_text());
    }

    #[test]
    fn quiet_on_poison_recovery() {
        let src = r#"
            use std::sync::PoisonError;
            fn tick(m: &std::sync::Mutex<u32>) {
                let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
                *g += 1;
            }
        "#;
        let a = run(&[("crates/geometry/src/grid.rs", src)]);
        assert!(a.is_clean(), "{}", a.render_text());
    }

    #[test]
    fn quiet_in_test_code_strings_and_comments() {
        let src = r#"
            // not real: m.lock().unwrap()
            const DOC: &str = "m.lock().unwrap()";
            #[cfg(test)]
            mod tests {
                #[test]
                fn t(m: &std::sync::Mutex<u32>) {
                    let _ = m.lock().unwrap();
                }
            }
        "#;
        let a = run(&[("crates/geometry/src/grid.rs", src)]);
        assert!(a.is_clean(), "{}", a.render_text());
    }

    #[test]
    fn waiver_suppresses_the_finding() {
        let a = run_with_allow(
            &[("crates/geometry/src/grid.rs", BAD)],
            "poison-hygiene | crates/geometry/src/grid.rs | m.lock().unwrap() | fixture\n",
        );
        assert!(a.is_clean(), "{}", a.render_text());
        assert_eq!(a.waived.len(), 1);
    }
}

mod unsafe_audit {
    use super::*;

    #[test]
    fn fires_on_unsafe_without_safety_comment() {
        let src = r#"
            fn f(p: *const u8) -> u8 {
                unsafe { *p }
            }
        "#;
        let a = run(&[("crates/nn/src/kern.rs", src)]);
        assert_eq!(rules_of(&a), ["unsafe-audit"], "{}", a.render_text());
    }

    #[test]
    fn quiet_with_safety_comment() {
        let src = r#"
            fn f(p: *const u8) -> u8 {
                // SAFETY: the caller guarantees `p` is valid for reads.
                unsafe { *p }
            }
        "#;
        let a = run(&[("crates/nn/src/kern.rs", src)]);
        assert!(a.is_clean(), "{}", a.render_text());
    }

    #[test]
    fn safety_doc_section_counts_for_unsafe_fn() {
        let src = r#"
            /// Reads a byte.
            ///
            /// # Safety
            ///
            /// `p` must be valid for reads.
            pub unsafe fn read(p: *const u8) -> u8 {
                // SAFETY: contract forwarded from this fn's `# Safety`.
                unsafe { *p }
            }
        "#;
        let a = run(&[("crates/nn/src/kern.rs", src)]);
        assert!(a.is_clean(), "{}", a.render_text());
    }

    #[test]
    fn unsafe_free_crate_root_needs_forbid() {
        let a = run(&[("crates/demo/src/lib.rs", "pub fn f() {}\n")]);
        assert_eq!(rules_of(&a), ["unsafe-audit"], "{}", a.render_text());
        let clean = run(&[(
            "crates/demo/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        )]);
        assert!(clean.is_clean(), "{}", clean.render_text());
    }

    #[test]
    fn unsafe_using_crate_lib_needs_deny_unsafe_op() {
        let lib = "pub mod kern;\n";
        let kern = r#"
            pub fn f(p: *const u8) -> u8 {
                // SAFETY: the caller guarantees `p` is valid for reads.
                unsafe { *p }
            }
        "#;
        let a = run(&[
            ("crates/demo/src/lib.rs", lib),
            ("crates/demo/src/kern.rs", kern),
        ]);
        assert_eq!(rules_of(&a), ["unsafe-audit"], "{}", a.render_text());
        let lib_ok = "#![deny(unsafe_op_in_unsafe_fn)]\npub mod kern;\n";
        let clean = run(&[
            ("crates/demo/src/lib.rs", lib_ok),
            ("crates/demo/src/kern.rs", kern),
        ]);
        assert!(clean.is_clean(), "{}", clean.render_text());
    }

    #[test]
    fn waiver_suppresses_the_finding() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let a = run_with_allow(
            &[("crates/nn/src/kern.rs", src)],
            "unsafe-audit | crates/nn/src/kern.rs | unsafe | fixture\n",
        );
        assert!(a.is_clean(), "{}", a.render_text());
    }
}

mod determinism {
    use super::*;

    const BAD: &str = r#"
        fn stamp() -> std::time::Instant {
            std::time::Instant::now()
        }
    "#;

    #[test]
    fn fires_on_ambient_clock() {
        let a = run(&[("crates/geometry/src/grid.rs", BAD)]);
        assert_eq!(rules_of(&a), ["determinism"], "{}", a.render_text());
    }

    #[test]
    fn fires_on_entropy_rng() {
        let src = r#"
            fn roll() -> u64 {
                let mut rng = rand::thread_rng();
                rng.next_u64()
            }
        "#;
        let a = run(&[("crates/geometry/src/grid.rs", src)]);
        assert_eq!(rules_of(&a), ["determinism"], "{}", a.render_text());
    }

    #[test]
    fn quiet_in_timing_allowlist_and_tests() {
        // The bench harness is allowlisted; test code anywhere is fine.
        let a = run(&[("crates/bench/src/lib.rs", BAD)]);
        // (the bench fixture still needs its forbid attr to scan clean)
        let bench = format!("#![forbid(unsafe_code)]\n{BAD}");
        let a2 = run(&[("crates/bench/src/lib.rs", bench.as_str())]);
        assert!(
            !rules_of(&a).contains(&"determinism"),
            "{}",
            a.render_text()
        );
        assert!(a2.is_clean(), "{}", a2.render_text());

        let test_src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let _ = std::time::Instant::now();
                }
            }
        "#;
        let a3 = run(&[("crates/geometry/src/grid.rs", test_src)]);
        assert!(a3.is_clean(), "{}", a3.render_text());
    }

    #[test]
    fn waiver_suppresses_the_finding() {
        let a = run_with_allow(
            &[("crates/geometry/src/grid.rs", BAD)],
            "determinism | crates/geometry/src/grid.rs | Instant::now | fixture\n",
        );
        assert!(a.is_clean(), "{}", a.render_text());
    }
}

mod panic_hygiene {
    use super::*;

    const BAD: &str = r#"
        fn pick(q: &[u32]) -> u32 {
            if q.is_empty() {
                panic!("empty queue");
            }
            q.first().copied().unwrap()
        }
    "#;

    #[test]
    fn fires_in_the_scheduler_surface() {
        let a = run(&[("crates/core/src/scheduler.rs", BAD)]);
        let f = &a.findings;
        assert_eq!(rules_of(&a), ["panic-hygiene"], "{}", a.render_text());
        assert_eq!(f.len(), 2, "both the panic! and the .unwrap()");
    }

    #[test]
    fn quiet_outside_the_protected_files_and_in_tests() {
        let a = run(&[("crates/core/src/artifact.rs", BAD)]);
        assert!(
            !rules_of(&a).contains(&"panic-hygiene"),
            "{}",
            a.render_text()
        );
        let test_src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    Some(1).unwrap();
                }
            }
        "#;
        let a2 = run(&[("crates/core/src/scheduler.rs", test_src)]);
        assert!(a2.is_clean(), "{}", a2.render_text());
    }

    #[test]
    fn waiver_suppresses_the_finding() {
        let a = run_with_allow(
            &[("crates/core/src/scheduler.rs", BAD)],
            "panic-hygiene | crates/core/src/scheduler.rs | panic!(\"empty queue\") | fixture\n\
             panic-hygiene | crates/core/src/scheduler.rs | .unwrap() | fixture\n",
        );
        assert!(a.is_clean(), "{}", a.render_text());
        assert_eq!(a.waived.len(), 2);
    }
}

mod lock_order {
    use super::*;

    /// Two functions taking `alpha`/`beta` in opposite nesting orders.
    const CYCLE: &str = r#"
        fn forward(s: &S) {
            let a = s.alpha.lock();
            let b = s.beta.lock();
            drop(b);
            drop(a);
        }
        fn backward(s: &S) {
            let b = s.beta.lock();
            let a = s.alpha.lock();
            drop(a);
            drop(b);
        }
    "#;

    #[test]
    fn fires_on_opposite_nesting_orders() {
        let a = run(&[("crates/core/src/scheduler.rs", CYCLE)]);
        assert_eq!(rules_of(&a), ["lock-order"], "{}", a.render_text());
        assert!(a.findings[0].message.contains("alpha"));
        assert!(a.findings[0].message.contains("beta"));
    }

    #[test]
    fn fires_on_reacquiring_a_held_lock() {
        let src = r#"
            fn twice(s: &S) {
                let a = s.alpha.lock();
                let b = s.alpha.lock();
            }
        "#;
        let a = run(&[("crates/core/src/scheduler.rs", src)]);
        assert_eq!(rules_of(&a), ["lock-order"], "{}", a.render_text());
    }

    #[test]
    fn quiet_on_block_scoped_sequential_sections() {
        let src = r#"
            fn forward(s: &S) {
                {
                    let a = s.alpha.lock();
                }
                {
                    let b = s.beta.lock();
                }
            }
            fn backward(s: &S) {
                {
                    let b = s.beta.lock();
                }
                {
                    let a = s.alpha.lock();
                }
            }
        "#;
        let a = run(&[("crates/core/src/scheduler.rs", src)]);
        assert!(a.is_clean(), "{}", a.render_text());
    }

    #[test]
    fn explicit_drop_releases_before_the_next_acquire() {
        let src = r#"
            fn forward(s: &S) {
                let a = s.alpha.lock();
                drop(a);
                let b = s.beta.lock();
            }
            fn backward(s: &S) {
                let b = s.beta.lock();
                drop(b);
                let a = s.alpha.lock();
            }
        "#;
        let a = run(&[("crates/core/src/scheduler.rs", src)]);
        assert!(a.is_clean(), "{}", a.render_text());
    }

    #[test]
    fn sees_through_guard_returning_helpers() {
        let src = r#"
            fn lock_alpha(s: &S) -> Guard {
                s.alpha.lock()
            }
            fn forward(s: &S) {
                let a = lock_alpha(s);
                let b = s.beta.lock();
            }
            fn backward(s: &S) {
                let b = s.beta.lock();
                let a = lock_alpha(s);
            }
        "#;
        let a = run(&[("crates/core/src/scheduler.rs", src)]);
        assert_eq!(rules_of(&a), ["lock-order"], "{}", a.render_text());
    }

    #[test]
    fn waiver_suppresses_the_finding() {
        let a = run_with_allow(
            &[("crates/core/src/scheduler.rs", CYCLE)],
            "lock-order | crates/core/src/scheduler.rs | * | fixture\n",
        );
        assert!(a.is_clean(), "{}", a.render_text());
    }
}

mod error_surface {
    use super::*;

    #[test]
    fn fires_on_stringly_and_opaque_results() {
        let src = r#"
            pub fn bad() -> Result<u32, String> {
                Err("nope".to_string())
            }
            pub fn opaque() -> Result<u32> {
                Ok(1)
            }
        "#;
        let a = run(&[("crates/core/src/api.rs", src)]);
        assert_eq!(rules_of(&a), ["error-surface"], "{}", a.render_text());
        assert_eq!(a.findings.len(), 2, "{}", a.render_text());
    }

    #[test]
    fn quiet_on_typed_errors_aliases_and_private_fns() {
        let src = r#"
            pub fn good(x: u32) -> Result<u32, PpError> {
                Ok(x)
            }
            pub fn tuple_err() -> Result<u32, (PpError, usize)> {
                Ok(1)
            }
            pub fn io_alias() -> io::Result<()> {
                Ok(())
            }
            pub(crate) fn internal() -> Result<u32, String> {
                Ok(1)
            }
            fn private() -> Result<u32, String> {
                Ok(1)
            }
            pub fn no_result(cb: impl Fn() -> Result<u32, String>) -> u32 {
                1
            }
        "#;
        let a = run(&[("crates/core/src/api.rs", src)]);
        assert!(
            !rules_of(&a).contains(&"error-surface"),
            "{}",
            a.render_text()
        );
    }

    #[test]
    fn out_of_scope_crates_are_not_checked() {
        let src = "pub fn bad() -> Result<u32, String> { Err(String::new()) }\n";
        let a = run(&[("crates/geometry/src/api.rs", src)]);
        assert!(
            !rules_of(&a).contains(&"error-surface"),
            "{}",
            a.render_text()
        );
    }

    #[test]
    fn waiver_suppresses_the_finding() {
        let src = "pub fn bad() -> Result<u32, String> { Err(String::new()) }\n";
        let a = run_with_allow(
            &[("crates/core/src/api.rs", src)],
            "error-surface | crates/core/src/api.rs | fn bad | fixture\n",
        );
        assert!(a.is_clean(), "{}", a.render_text());
    }
}

mod waiver_mechanics {
    use super::*;

    #[test]
    fn stale_waivers_fail_the_run() {
        let a = run_with_allow(
            &[("crates/geometry/src/grid.rs", "fn f() {}\n")],
            "determinism | crates/geometry/src/grid.rs | Instant::now | nothing matches\n",
        );
        assert!(!a.is_clean());
        assert_eq!(a.stale.len(), 1);
        assert!(a.render_text().contains("stale-waiver"));
    }

    #[test]
    fn compat_crates_are_never_scanned() {
        let bad = "fn f(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n";
        let a = run(&[("crates/compat/rand/src/lib.rs", bad)]);
        assert!(a.is_clean(), "{}", a.render_text());
        assert_eq!(a.files_scanned, 0);
    }

    #[test]
    fn json_report_carries_findings_and_waived_flags() {
        let a = run_with_allow(
            &[(
                "crates/geometry/src/grid.rs",
                "fn f(m: &std::sync::Mutex<u32>) { let a = m.lock().unwrap(); let _ = std::time::Instant::now(); }\n",
            )],
            "determinism | crates/geometry/src/grid.rs | Instant::now | fixture\n",
        );
        let json = a.render_json();
        assert!(json.contains("\"clean\": false"), "{json}");
        assert!(json.contains("\"rule\": \"poison-hygiene\""), "{json}");
        assert!(json.contains("\"waived\": true"), "{json}");
        assert!(json.contains("\"waived\": false"), "{json}");
    }
}
