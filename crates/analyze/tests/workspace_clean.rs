//! The real workspace must scan clean: zero unwaived findings and zero
//! stale waivers against the checked-in `analyze.allow`. This is the
//! same gate `./ci.sh --analyze` runs, kept in the test suite so a
//! plain `cargo test` catches a new violation before CI does.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

#[test]
fn workspace_scans_clean() {
    let analysis = pp_analyze::analyze_root(&repo_root()).expect("analysis runs");
    assert!(
        analysis.is_clean(),
        "workspace has unwaived findings or stale waivers:\n{}",
        analysis.render_text()
    );
    assert!(
        analysis.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walker break?",
        analysis.files_scanned
    );
}

#[test]
fn every_waiver_is_exercised() {
    // `is_clean` already fails on stale waivers; this documents the
    // expectation that the baseline stays small and fully live.
    let analysis = pp_analyze::analyze_root(&repo_root()).expect("analysis runs");
    assert!(
        analysis.waived.len() >= analysis_waiver_floor(),
        "waived {} findings; the checked-in baseline should cover each entry",
        analysis.waived.len()
    );
}

/// One finding per `analyze.allow` line is the floor; a needle may
/// legitimately match several findings in the same file.
fn analysis_waiver_floor() -> usize {
    let allow = std::fs::read_to_string(repo_root().join("analyze.allow")).unwrap_or_default();
    allow
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .count()
}
