//! A minimal Rust lexer: just enough structure for lexical rules
//! without an external parser dependency.
//!
//! The scanner distinguishes comments (line, nested block), string
//! literals (plain, raw with any `#` count, byte variants), char
//! literals vs lifetimes, identifiers, numbers, and single-character
//! punctuation. That is sufficient for every rule in this crate: rules
//! match on *code* token sequences, so a forbidden pattern inside a
//! string or comment never fires, and comment tokens keep their text so
//! the unsafe-audit rule can look for `// SAFETY:` markers.

/// What a token is; `Punct` carries the single character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String literal of any flavour, escapes resolved lexically only.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (integers, floats, suffixed forms).
    Num,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// `// ...` comment, text preserved (doc comments included).
    LineComment,
    /// `/* ... */` comment, nesting-aware, text preserved.
    BlockComment,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens. The lexer never fails: unterminated
/// constructs simply run to end of input, which is fine for a linter
/// whose inputs already compile.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    let count_newlines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        let start = i;
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == '/' && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == '*' && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
                line += count_newlines(&b[start..i]);
            }
            '"' => {
                i = scan_string(&b, i);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
                line += count_newlines(&b[start..i]);
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime starts with an ident char and is
                // NOT followed by a closing quote right after it.
                if i + 1 < n && is_ident_start(b[i + 1]) && !(i + 2 < n && b[i + 2] == '\'') {
                    i += 1;
                    while i < n && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..i].iter().collect(),
                        line: start_line,
                    });
                } else {
                    i += 1;
                    if i < n && b[i] == '\\' {
                        i += 1; // skip the escape introducer
                        if i < n {
                            i += 1; // and the escaped char
                        }
                        // \u{...} and \x.. run until the quote below.
                    } else if i < n {
                        i += 1;
                    }
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    if i < n {
                        i += 1; // closing quote
                    }
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: b[start..i].iter().collect(),
                        line: start_line,
                    });
                }
            }
            'r' | 'b' if raw_or_byte_prefix(&b, i) => {
                i = scan_prefixed_literal(&b, i);
                let text: String = b[start..i].iter().collect();
                let kind = if text.ends_with('\'') {
                    TokKind::Char
                } else {
                    TokKind::Str
                };
                toks.push(Tok {
                    kind,
                    text,
                    line: start_line,
                });
                line += count_newlines(&b[start..i]);
            }
            c if is_ident_start(c) => {
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < n {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        i += 1;
                    } else if d == '.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                        i += 1; // decimal point of a float, not `..`
                    } else if (d == '+' || d == '-') && i > start && matches!(b[i - 1], 'e' | 'E') {
                        i += 1; // exponent sign
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            other => {
                i += 1;
                toks.push(Tok {
                    kind: TokKind::Punct(other),
                    text: other.to_string(),
                    line: start_line,
                });
            }
        }
    }
    toks
}

/// Scans a plain (escaping) string starting at the opening quote;
/// returns the index one past the closing quote.
fn scan_string(b: &[char], mut i: usize) -> usize {
    let n = b.len();
    i += 1; // opening quote
    while i < n {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// True when the `r`/`b` at `i` starts a raw string, byte string, raw
/// byte string, or byte char rather than an identifier.
fn raw_or_byte_prefix(b: &[char], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        'r' => {
            let mut j = i + 1;
            while j < n && b[j] == '#' {
                j += 1;
            }
            j < n && b[j] == '"' && j > i // r" only counts with quote or #s+quote
                || (i + 1 < n && b[i + 1] == '"')
        }
        'b' => {
            if i + 1 >= n {
                return false;
            }
            match b[i + 1] {
                '"' | '\'' => true,
                'r' => {
                    let mut j = i + 2;
                    while j < n && b[j] == '#' {
                        j += 1;
                    }
                    j < n && b[j] == '"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Scans `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, or `b'x'`
/// starting at the prefix; returns the index one past the end.
fn scan_prefixed_literal(b: &[char], mut i: usize) -> usize {
    let n = b.len();
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
        if i < n && b[i] == '\'' {
            // byte char: reuse char-literal shape
            i += 1;
            if i < n && b[i] == '\\' {
                i += 2;
            } else if i < n {
                i += 1;
            }
            while i < n && b[i] != '\'' {
                i += 1;
            }
            return (i + 1).min(n);
        }
    }
    if i < n && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || b[i] != '"' {
        return i; // not actually a literal; let the caller move on
    }
    i += 1; // opening quote
    if raw || hashes > 0 {
        // Raw: ends at `"` followed by the same number of `#`s.
        while i < n {
            if b[i] == '"' {
                let mut j = i + 1;
                let mut k = 0usize;
                while j < n && k < hashes && b[j] == '#' {
                    j += 1;
                    k += 1;
                }
                if k == hashes {
                    return j;
                }
            }
            i += 1;
        }
        n
    } else {
        scan_string(b, i - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = lex("let s = \"a.lock().unwrap()\"; // .lock().unwrap()\n");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::LineComment));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let toks = lex(r####"let s = r#"contains "quotes" and unwrap"#; x"####);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s", "x"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* outer /* inner */ still */ code");
        assert_eq!(
            kinds("/* a /* b */ c */ x"),
            vec![TokKind::BlockComment, TokKind::Ident]
        );
        assert!(toks.iter().any(|t| t.is_ident("code")));
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let toks = lex("let a = \"two\nlines\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn identifiers_starting_with_r_and_b_survive() {
        let toks = lex("let row0 = broadcast + r + b;");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "row0", "broadcast", "r", "b"]);
    }
}
