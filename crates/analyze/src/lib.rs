//! pp-analyze: in-repo static analysis for the invariants this
//! workspace actually depends on.
//!
//! Generic lints (clippy) cannot know that this repo promises
//! bit-identical replay, poison-tolerant locking, and a panic-free
//! scheduler surface. This crate lexes every workspace source file
//! with its own small Rust lexer — no external parser — and runs six
//! project-specific rules over the token streams (see
//! [`rules::CATALOGUE`]). Violations that are deliberate carry
//! narrowly-scoped waivers in `analyze.allow`; a waiver that stops
//! matching anything is itself a failure, so the baseline only ever
//! shrinks.
//!
//! Run it as `cargo run -p pp-analyze` (or `./ci.sh --analyze`); add
//! `--json` for the machine-readable report.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod workspace;

use allow::AllowList;
use model::SourceFile;
use report::Analysis;
use rules::Config;
use std::path::Path;

/// Analyzes the workspace rooted at `root` with the default [`Config`]
/// and the `analyze.allow` baseline found there.
pub fn analyze_root(root: &Path) -> Result<Analysis, String> {
    let cfg = Config::default();
    let files = workspace::load_sources(root, &cfg)?;
    let allow = AllowList::parse(&workspace::load_allow(root)?)?;
    Ok(analyze_files(files, &cfg, &allow))
}

/// Analyzes in-memory `(path, source)` pairs — the entry point the
/// fixture tests drive, and what [`analyze_root`] delegates to.
pub fn analyze_sources(sources: &[(&str, &str)], cfg: &Config, allow: &AllowList) -> Analysis {
    let files = sources
        .iter()
        .filter(|(p, _)| !cfg.skipped(p))
        .map(|(p, s)| SourceFile::new(p, s))
        .collect();
    analyze_files(files, cfg, allow)
}

fn analyze_files(files: Vec<SourceFile>, cfg: &Config, allow: &AllowList) -> Analysis {
    let raw = rules::run_rules(&files, cfg);
    let (findings, waived, stale) = allow.apply(raw);
    Analysis {
        findings,
        waived,
        stale,
        files_scanned: files.len(),
    }
}
