//! Workspace discovery: which `.rs` files a run scans and where the
//! `analyze.allow` baseline lives.
//!
//! The walk starts from the repo root and descends `src/`, `crates/`,
//! `tests/`, and `examples/`, skipping build output (`target/`) and
//! anything the [`Config`] excludes (the
//! `crates/compat/` stand-ins). Paths come back repo-relative with `/`
//! separators, sorted, so findings are stable across machines.

use crate::model::SourceFile;
use crate::rules::Config;
use std::fs;
use std::path::{Path, PathBuf};

/// Scan roots relative to the repo root.
const ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// Collects and lexes every analyzable `.rs` file under `root`.
pub fn load_sources(root: &Path, cfg: &Config) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for r in ROOTS {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = rel_path(root, &p);
        if cfg.skipped(&rel) {
            continue;
        }
        let src = fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        files.push(SourceFile::new(&rel, &src));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.iter().any(|s| *s == name) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators.
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Reads the `analyze.allow` baseline next to the workspace root;
/// a missing file is an empty baseline, not an error.
pub fn load_allow(root: &Path) -> Result<String, String> {
    let p = root.join("analyze.allow");
    if !p.exists() {
        return Ok(String::new());
    }
    fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))
}
