//! Findings and their rendering: human `file:line: rule: message`
//! lines and the machine-readable `--json` document.

use crate::allow::Waiver;

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule identifier (e.g. `poison-hygiene`).
    pub rule: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and how to fix it.
    pub message: String,
    /// The offending source line, used for waiver needle matching.
    pub snippet: String,
}

/// The result of a full run: findings split by waiver status, plus any
/// waivers that matched nothing (stale baseline entries are themselves
/// failures — they mean the violation they excused is gone).
#[derive(Debug)]
pub struct Analysis {
    /// Violations not covered by the allow file, ordered by path/line.
    pub findings: Vec<Finding>,
    /// Violations excused by an `analyze.allow` entry.
    pub waived: Vec<Finding>,
    /// Allow entries that matched no finding.
    pub stale: Vec<Waiver>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Analysis {
    /// True when CI should pass: nothing unwaived and no stale waivers.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        for w in &self.stale {
            out.push_str(&format!(
                "analyze.allow:{}: stale-waiver: `{} | {} | {}` matched no finding; delete it\n",
                w.line_no, w.rule, w.path, w.needle
            ));
        }
        out.push_str(&format!(
            "pp-analyze: {} file(s), {} finding(s), {} waived, {} stale waiver(s)\n",
            self.files_scanned,
            self.findings.len(),
            self.waived.len(),
            self.stale.len()
        ));
        out
    }

    /// Machine-readable report (schema documented in the README).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"findings\": [\n");
        let all: Vec<(&Finding, bool)> = self
            .findings
            .iter()
            .map(|f| (f, false))
            .chain(self.waived.iter().map(|f| (f, true)))
            .collect();
        for (i, (f, waived)) in all.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"waived\": {}}}{}\n",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message),
                waived,
                if i + 1 < all.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"stale_waivers\": [\n");
        for (i, w) in self.stale.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"line\": {}, \"rule\": {}, \"path\": {}, \"needle\": {}, \"reason\": {}}}{}\n",
                w.line_no,
                json_str(&w.rule),
                json_str(&w.path),
                json_str(&w.needle),
                json_str(&w.reason),
                if i + 1 < self.stale.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc"), "\"a\\\"b\\nc\"");
    }

    #[test]
    fn clean_requires_no_findings_and_no_stale() {
        let a = Analysis {
            findings: vec![],
            waived: vec![],
            stale: vec![],
            files_scanned: 1,
        };
        assert!(a.is_clean());
    }
}
