//! The `pp-analyze` CLI.
//!
//! ```text
//! pp-analyze [--root DIR] [--json] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings or stale waivers, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for (id, what) in pp_analyze::rules::CATALOGUE {
                    println!("{id}: {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!("usage: pp-analyze [--root DIR] [--json] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = root.unwrap_or_else(find_root);
    match pp_analyze::analyze_root(&root) {
        Ok(analysis) => {
            if json {
                print!("{}", analysis.render_json());
            } else {
                print!("{}", analysis.render_text());
            }
            if analysis.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pp-analyze: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the workspace root (the
/// directory holding a `[workspace]` Cargo.toml), so the tool works
/// from any subdirectory. Falls back to `.`.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pp-analyze: {msg}\nusage: pp-analyze [--root DIR] [--json] [--list-rules]");
    ExitCode::from(2)
}
