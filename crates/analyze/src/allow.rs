//! The `analyze.allow` baseline: narrowly-scoped waivers.
//!
//! Format, one waiver per line, fields separated by `|`:
//!
//! ```text
//! rule | path | needle | reason
//! ```
//!
//! * `rule` — the rule id the waiver applies to;
//! * `path` — the exact repo-relative file;
//! * `needle` — a substring the offending source line must contain
//!   (`*` matches any line, use sparingly);
//! * `reason` — required free text: why this violation is acceptable.
//!
//! Blank lines and `#` comments are ignored. A waiver that matches no
//! finding is *stale* and fails the run: the baseline may only ever
//! shrink to match reality.

use crate::report::Finding;

/// One parsed waiver line.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule id this waiver applies to.
    pub rule: String,
    /// Exact repo-relative path the finding must be in.
    pub path: String,
    /// Substring of the offending line (`*` = any).
    pub needle: String,
    /// Why the violation is acceptable (required).
    pub reason: String,
    /// 1-based line in `analyze.allow`, for stale reporting.
    pub line_no: u32,
}

impl Waiver {
    /// Whether this waiver excuses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.rule == f.rule
            && self.path == f.file
            && (self.needle == "*" || f.snippet.contains(&self.needle))
    }
}

/// The parsed allow file.
#[derive(Debug, Default)]
pub struct AllowList {
    /// Waivers in file order.
    pub waivers: Vec<Waiver>,
}

impl AllowList {
    /// Parses the allow-file text; malformed lines are errors (a
    /// baseline that silently ignores typos grants nothing reliably).
    pub fn parse(text: &str) -> Result<AllowList, String> {
        let mut waivers = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            if parts.len() != 4 || parts.iter().any(|p| p.is_empty()) {
                return Err(format!(
                    "analyze.allow:{}: expected `rule | path | needle | reason`, got: {line}",
                    i + 1
                ));
            }
            waivers.push(Waiver {
                rule: parts[0].to_string(),
                path: parts[1].to_string(),
                needle: parts[2].to_string(),
                reason: parts[3].to_string(),
                line_no: i as u32 + 1,
            });
        }
        Ok(AllowList { waivers })
    }

    /// Splits raw findings into (unwaived, waived) and returns the
    /// stale waivers that matched nothing.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<Waiver>) {
        let mut hit = vec![false; self.waivers.len()];
        let mut unwaived = Vec::new();
        let mut waived = Vec::new();
        for f in findings {
            let mut excused = false;
            for (i, w) in self.waivers.iter().enumerate() {
                if w.matches(&f) {
                    hit[i] = true;
                    excused = true;
                }
            }
            if excused {
                waived.push(f);
            } else {
                unwaived.push(f);
            }
        }
        let stale = self
            .waivers
            .iter()
            .zip(&hit)
            .filter(|(_, h)| !**h)
            .map(|(w, _)| w.clone())
            .collect();
        (unwaived, waived, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 1,
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn waiver_requires_rule_path_and_needle() {
        let allow =
            AllowList::parse("poison-hygiene | src/a.rs | .lock().unwrap() | legacy\n").unwrap();
        let f = finding("poison-hygiene", "src/a.rs", "x.lock().unwrap();");
        assert!(allow.waivers[0].matches(&f));
        let other_file = finding("poison-hygiene", "src/b.rs", "x.lock().unwrap();");
        assert!(!allow.waivers[0].matches(&other_file));
        let other_rule = finding("determinism", "src/a.rs", "x.lock().unwrap();");
        assert!(!allow.waivers[0].matches(&other_rule));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(AllowList::parse("rule-only-no-path\n").is_err());
        assert!(AllowList::parse("a | b | c |\n").is_err(), "empty reason");
        assert!(AllowList::parse("# comment\n\n")
            .unwrap()
            .waivers
            .is_empty());
    }

    #[test]
    fn stale_waivers_are_returned() {
        let allow = AllowList::parse("determinism | src/a.rs | * | because\n").unwrap();
        let (unwaived, waived, stale) = allow.apply(vec![]);
        assert!(unwaived.is_empty() && waived.is_empty());
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].line_no, 1);
    }
}
