//! `error-surface`: `pub fn ... -> Result<..>` in pp-core uses
//! `PpError` (or another typed `*Error`) as its error type.
//!
//! The service front door maps typed errors to admission rejections,
//! retries, and client responses; an ad-hoc error type (or a stringly
//! `Box<dyn Error>`) in the public surface breaks that mapping. The
//! rule parses every `pub fn` signature's return type: a `Result`
//! whose error argument neither is `PpError` nor ends in `Error`
//! is a finding. A qualified one-argument alias such as `io::Result`
//! resolves to the qualifier's `Error` type and passes; a bare
//! `Result<T>` alias is opaque and flagged.

use super::{finding, Config};
use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::report::Finding;

pub(super) fn check(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !f.path.starts_with(cfg.core_prefix.as_str()) {
            continue;
        }
        let n = f.code_len();
        let mut k = 0usize;
        while k < n {
            if !f.ct(k).is_ident("pub") {
                k += 1;
                continue;
            }
            let mut j = k + 1;
            // pub(crate) / pub(super) / pub(in ...) is restricted
            // visibility, not the public surface — skip it.
            if j < n && f.ct(j).is_punct('(') {
                k = j + 1;
                continue;
            }
            // qualifiers before `fn`
            while j < n
                && (f.ct(j).is_ident("const")
                    || f.ct(j).is_ident("async")
                    || f.ct(j).is_ident("unsafe")
                    || f.ct(j).is_ident("extern")
                    || f.ct(j).kind == TokKind::Str)
            {
                j += 1;
            }
            if !(j + 1 < n && f.ct(j).is_ident("fn")) {
                k += 1;
                continue;
            }
            let name = f.ct(j + 1).text.clone();
            let line = f.ct(j + 1).line;
            if f.is_test_line(line) {
                k = j + 2;
                continue;
            }
            // Signature runs to the body `{` or a `;` (trait decls).
            let mut end = j + 2;
            while end < n && !(f.ct(end).is_punct('{') || f.ct(end).is_punct(';')) {
                end += 1;
            }
            if let Some(msg) = check_signature(f, j + 2, end, &name) {
                out.push(finding("error-surface", f, line, msg));
            }
            k = end;
        }
    }
    out
}

/// Examines code tokens `[start, end)` of one signature; returns a
/// message when its return type misuses `Result`.
fn check_signature(f: &SourceFile, start: usize, end: usize, name: &str) -> Option<String> {
    // The *last* `->` before the body belongs to the fn itself (earlier
    // ones sit inside `Fn() -> T` bounds in the parameter list).
    let mut arrow = None;
    let mut i = start;
    while i + 1 < end {
        if f.ct(i).is_punct('-') && f.ct(i + 1).is_punct('>') {
            arrow = Some(i + 2);
        }
        i += 1;
    }
    let mut i = arrow?;
    // Find `Result` in the return type (stop at `where`).
    let mut res = None;
    while i < end && !f.ct(i).is_ident("where") {
        if f.ct(i).is_ident("Result") {
            res = Some(i);
            break;
        }
        i += 1;
    }
    let res = res?;
    let qualifier = (res >= 2
        && f.ct(res - 1).is_punct(':')
        && f.ct(res - 2).is_punct(':')
        && res >= 3
        && f.ct(res - 3).kind == TokKind::Ident)
        .then(|| f.ct(res - 3).text.clone());
    if !(res + 1 < end && f.ct(res + 1).is_punct('<')) {
        // `Result` with no generics: some alias we cannot see through.
        return match qualifier {
            Some(_) => None,
            None => Some(format!(
                "pub fn `{name}` returns a bare `Result` alias; spell out `Result<_, PpError>`"
            )),
        };
    }
    // Split the generic arguments at angle depth 1 (and paren/bracket
    // depth 0, so tuple and array error types stay whole).
    let mut depth = 0i32;
    let mut nest = 0i32;
    let mut args: Vec<Vec<String>> = vec![Vec::new()];
    let mut i = res + 1;
    while i < end {
        let t = f.ct(i);
        match t.kind {
            TokKind::Punct('<') => {
                depth += 1;
                if depth > 1 {
                    args.last_mut()
                        .expect("args starts non-empty")
                        .push("<".into());
                }
            }
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                args.last_mut()
                    .expect("args starts non-empty")
                    .push(">".into());
            }
            TokKind::Punct(',') if depth == 1 && nest == 0 => args.push(Vec::new()),
            _ => {
                match t.kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => nest -= 1,
                    _ => {}
                }
                args.last_mut()
                    .expect("args starts non-empty")
                    .push(t.text.clone());
            }
        }
        i += 1;
    }
    if args.len() < 2 {
        // One-argument Result: a qualified alias (io::Result) resolves
        // to the qualifier's Error type; a bare one is opaque.
        return match qualifier {
            Some(_) => None,
            None => Some(format!(
                "pub fn `{name}` returns a single-argument `Result` alias; use `PpError`"
            )),
        };
    }
    let err = &args[1];
    let typed = err.iter().any(|t| t == "PpError") || err.iter().any(|t| t.ends_with("Error"));
    if typed {
        return None;
    }
    Some(format!(
        "pub fn `{name}` returns `Result<_, {}>`; pp-core's surface uses `PpError` \
         (or a typed `*Error`)",
        err.join("")
    ))
}
