//! `panic-hygiene`: the scheduler/service/tail library surface must not
//! panic — it returns typed `PpError`s.
//!
//! These are the files between a tenant's request and the worker pool;
//! a panic here is either a whole-pool wedge or a poisoned lock for
//! every other tenant. The rule bans the panic macro family and
//! `.unwrap()` / `.expect()` in their non-test code. (Slice indexing is
//! out of lexical reach — clippy's `indexing_slicing` exists when that
//! is wanted.) The deliberate fault-injection panic in the scheduler's
//! chaos hook carries a narrowly-scoped `analyze.allow` waiver.

use super::{finding, Config};
use crate::model::SourceFile;
use crate::report::Finding;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const SINKS: [&str; 2] = ["unwrap", "expect"];

pub(super) fn check(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.panic_files.iter().any(|p| p.as_str() == f.path) {
            continue;
        }
        let n = f.code_len();
        for k in 0..n {
            let t = f.ct(k);
            let line = t.line;
            if f.is_test_line(line) {
                continue;
            }
            if k + 1 < n && PANIC_MACROS.iter().any(|m| t.is_ident(m)) && f.ct(k + 1).is_punct('!')
            {
                out.push(finding(
                    "panic-hygiene",
                    f,
                    line,
                    format!(
                        "`{}!` in the {} library surface; return a typed `PpError` instead",
                        t.text,
                        short(&f.path)
                    ),
                ));
            }
            if k >= 1
                && k + 1 < n
                && f.ct(k - 1).is_punct('.')
                && SINKS.iter().any(|s| t.is_ident(s))
                && f.ct(k + 1).is_punct('(')
            {
                out.push(finding(
                    "panic-hygiene",
                    f,
                    line,
                    format!(
                        "`.{}(..)` in the {} library surface; propagate a typed `PpError` \
                         (or restructure so the value is statically present)",
                        t.text,
                        short(&f.path)
                    ),
                ));
            }
        }
    }
    out
}

fn short(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}
