//! The rule engine: six project-specific invariants over the lexed
//! workspace. Each rule is a function from the prepared sources to
//! findings; `run_rules` runs them all and sorts the result.

mod determinism;
mod error_surface;
mod lock_order;
mod panic_hygiene;
mod poison;
mod unsafe_audit;

use crate::model::SourceFile;
use crate::report::Finding;

/// Which paths each rule applies to. Paths are repo-relative with `/`
/// separators; "prefix" entries match with `starts_with`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path prefixes never scanned at all (offline compat stand-ins
    /// mirror external crates and follow their idioms, not ours).
    pub skip_prefixes: Vec<String>,
    /// Timing/backoff modules where ambient clocks are the point:
    /// deadline enforcement, retry backoff, and the benchmark harness.
    /// Everything else needs an `analyze.allow` waiver per site.
    pub determinism_allowed: Vec<String>,
    /// Library files where the panic-hygiene rule bans `panic!` /
    /// `.unwrap()` / `.expect()` outright (typed `PpError` only).
    pub panic_files: Vec<String>,
    /// The crate whose public surface must return `PpError` and whose
    /// lock graph is checked for cycles.
    pub core_prefix: String,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            skip_prefixes: vec!["crates/compat/".into()],
            determinism_allowed: vec![
                "crates/bench/".into(),
                "examples/".into(),
                "crates/core/src/scheduler.rs".into(),
                "crates/core/src/service.rs".into(),
                "crates/core/src/fleet.rs".into(),
            ],
            panic_files: vec![
                "crates/core/src/scheduler.rs".into(),
                "crates/core/src/service.rs".into(),
                "crates/core/src/fleet.rs".into(),
                "crates/core/src/tail.rs".into(),
                "crates/core/src/train.rs".into(),
            ],
            core_prefix: "crates/core/src/".into(),
        }
    }
}

impl Config {
    /// Whether `path` is excluded from scanning entirely.
    pub fn skipped(&self, path: &str) -> bool {
        self.skip_prefixes.iter().any(|p| path.starts_with(p))
    }
}

/// The rule catalogue: `(id, what it enforces)`, for `--list-rules`.
pub const CATALOGUE: [(&str, &str); 6] = [
    (
        "poison-hygiene",
        "lock()/read()/write() results recover poisoning via PoisonError::into_inner, never .unwrap()/.expect()",
    ),
    (
        "unsafe-audit",
        "every unsafe block/fn carries a SAFETY comment; unsafe-free crates carry #![forbid(unsafe_code)]",
    ),
    (
        "determinism",
        "no ambient clocks (SystemTime::now, Instant::now) or entropy RNGs outside timing/backoff modules",
    ),
    (
        "panic-hygiene",
        "no panic!/unwrap/expect in the scheduler/service/tail library surface (typed PpError only)",
    ),
    (
        "lock-order",
        "the static lock-acquisition graph of pp-core is cycle-free (no potential deadlocks)",
    ),
    (
        "error-surface",
        "pub fns in pp-core returning Result use PpError (or a typed *Error)",
    ),
];

/// Runs every rule over `files` and returns findings sorted by
/// (path, line, rule) so output is stable run to run.
pub fn run_rules(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(poison::check(files, cfg));
    findings.extend(unsafe_audit::check(files, cfg));
    findings.extend(determinism::check(files, cfg));
    findings.extend(panic_hygiene::check(files, cfg));
    findings.extend(lock_order::check(files, cfg));
    findings.extend(error_surface::check(files, cfg));
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Builds a [`Finding`] with the snippet filled in from the file.
pub(crate) fn finding(
    rule: &'static str,
    file: &SourceFile,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: file.path.clone(),
        line,
        message,
        snippet: file.snippet(line).to_string(),
    }
}
