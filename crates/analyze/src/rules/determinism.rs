//! `determinism`: no ambient clocks or entropy in seeded paths.
//!
//! The repo's headline guarantee is bit-identical resumable runs:
//! every sample is a pure function of `(model, template, mask,
//! seed ^ job_index)`. An `Instant::now()` feeding a decision, or an
//! RNG seeded from the environment, silently breaks that. The rule
//! forbids `SystemTime::now`, `Instant::now`, and entropy-sourced RNG
//! construction (`thread_rng`, `from_entropy`, `OsRng`) outside the
//! configured timing/backoff modules (deadline enforcement and retry
//! backoff are wall-clock by nature) and the benchmark harness. Any
//! other site needs an `analyze.allow` waiver naming the reason.

use super::{finding, Config};
use crate::model::SourceFile;
use crate::report::Finding;

const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];
const ENTROPY_IDENTS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

pub(super) fn check(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if cfg
            .determinism_allowed
            .iter()
            .any(|p| f.path.starts_with(p.as_str()))
        {
            continue;
        }
        let n = f.code_len();
        for k in 0..n {
            let t = f.ct(k);
            let line = t.line;
            if f.is_test_line(line) {
                continue;
            }
            if t.is_ident("now")
                && k >= 3
                && f.ct(k - 1).is_punct(':')
                && f.ct(k - 2).is_punct(':')
                && CLOCK_TYPES.iter().any(|c| f.ct(k - 3).is_ident(c))
            {
                let ty = &f.ct(k - 3).text;
                out.push(finding(
                    "determinism",
                    f,
                    line,
                    format!(
                        "ambient clock `{ty}::now()` outside the timing/backoff allowlist; \
                         thread timing through the caller or add an analyze.allow waiver"
                    ),
                ));
            }
            if ENTROPY_IDENTS.iter().any(|e| t.is_ident(e)) {
                out.push(finding(
                    "determinism",
                    f,
                    line,
                    format!(
                        "entropy-sourced RNG `{}` breaks bit-identical replay; derive seeds \
                         from the request (`seed ^ job_index`) instead",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}
