//! `poison-hygiene`: results of `Mutex::lock` / `RwLock::read` /
//! `RwLock::write` must recover from poisoning, never `.unwrap()` /
//! `.expect()`.
//!
//! The supervised runtime's whole fault story (PR 6) rests on poisoned
//! locks being *recovered*, not re-panicked: one tenant's panic must
//! not condemn `submit()`/`stats()`/shutdown for everyone else. The
//! rule matches the token sequence `. lock ( ) . unwrap|expect` (and
//! the `read`/`write` variants) in non-test code; `unwrap_or_else`
//! is a different identifier and does not fire.

use super::{finding, Config};
use crate::model::SourceFile;
use crate::report::Finding;

const ACQUIRES: [&str; 3] = ["lock", "read", "write"];
const SINKS: [&str; 2] = ["unwrap", "expect"];

pub(super) fn check(files: &[SourceFile], _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let n = f.code_len();
        for k in 0..n.saturating_sub(5) {
            if f.ct(k).is_punct('.')
                && ACQUIRES.iter().any(|a| f.ct(k + 1).is_ident(a))
                && f.ct(k + 2).is_punct('(')
                && f.ct(k + 3).is_punct(')')
                && f.ct(k + 4).is_punct('.')
                && SINKS.iter().any(|s| f.ct(k + 5).is_ident(s))
            {
                let line = f.ct(k + 1).line;
                if f.is_test_line(line) {
                    continue;
                }
                let acquire = &f.ct(k + 1).text;
                let sink = &f.ct(k + 5).text;
                out.push(finding(
                    "poison-hygiene",
                    f,
                    line,
                    format!(
                        "`.{acquire}().{sink}(..)` re-panics on a poisoned lock; recover with \
                         `.unwrap_or_else(PoisonError::into_inner)` (or handle the error)"
                    ),
                ));
            }
        }
    }
    out
}
