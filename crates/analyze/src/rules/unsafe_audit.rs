//! `unsafe-audit`: every `unsafe` occurrence must be justified in
//! writing, and crates that need no unsafe must say so enforceably.
//!
//! Two checks:
//!
//! 1. Each `unsafe` keyword (block, fn, impl) must have a `// SAFETY:`
//!    comment — or a `# Safety` doc section for `unsafe fn` — on the
//!    lines directly above it (blank lines and attributes may
//!    intervene).
//! 2. Per crate: if no file under its `src/` contains `unsafe`, every
//!    crate root (`lib.rs`, `main.rs`, `bin/*.rs`) must carry
//!    `#![forbid(unsafe_code)]`; if the crate *does* use unsafe, its
//!    `lib.rs` must carry `#![deny(unsafe_op_in_unsafe_fn)]` so every
//!    unsafe operation sits in an explicit, commented block.

use super::{finding, Config};
use crate::model::SourceFile;
use crate::report::Finding;
use std::collections::BTreeMap;

pub(super) fn check(files: &[SourceFile], _cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    check_safety_comments(files, &mut out);
    check_crate_attrs(files, &mut out);
    out
}

fn check_safety_comments(files: &[SourceFile], out: &mut Vec<Finding>) {
    for f in files {
        for k in 0..f.code_len() {
            if !f.ct(k).is_ident("unsafe") {
                continue;
            }
            let line = f.ct(k).line;
            if !has_safety_note(f, line) {
                out.push(finding(
                    "unsafe-audit",
                    f,
                    line,
                    "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section) on the \
                     preceding lines; state the invariant that makes this sound"
                        .to_string(),
                ));
            }
        }
    }
}

/// Looks for a SAFETY marker on `line` itself or on the comment block
/// directly above it, skipping blank and attribute-only lines.
fn has_safety_note(f: &SourceFile, line: u32) -> bool {
    let marker = |text: &str| text.contains("SAFETY:") || text.contains("# Safety");
    if marker(&f.line_info(line).comment) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let info = f.line_info(l);
        let blank = !info.has_code && info.comment.is_empty() && !info.comment_cont;
        if blank || info.attr_only {
            l -= 1;
            continue;
        }
        if info.has_code {
            // Nearest line above is code: accept only a trailing
            // SAFETY comment on that same line.
            return marker(&info.comment);
        }
        // A comment block: scan it upward as one unit.
        while l >= 1 {
            let ci = f.line_info(l);
            if ci.has_code {
                break;
            }
            if marker(&ci.comment) {
                return true;
            }
            if ci.comment.is_empty() && !ci.comment_cont {
                break;
            }
            l -= 1;
        }
        return false;
    }
    false
}

fn check_crate_attrs(files: &[SourceFile], out: &mut Vec<Finding>) {
    // Group the `src/` files of each crate; `crates/<name>/src/...`
    // plus the workspace-root crate at `src/...`.
    let mut crates: BTreeMap<String, Vec<&SourceFile>> = BTreeMap::new();
    for f in files {
        if let Some(key) = crate_key(&f.path) {
            crates.entry(key).or_default().push(f);
        }
    }
    for srcs in crates.values() {
        let has_unsafe = srcs
            .iter()
            .any(|f| (0..f.code_len()).any(|k| f.ct(k).is_ident("unsafe")));
        for f in srcs {
            if !is_crate_root(&f.path) {
                continue;
            }
            if !has_unsafe && !has_inner_attr(f, "forbid", "unsafe_code") {
                out.push(finding(
                    "unsafe-audit",
                    f,
                    1,
                    "crate has no unsafe code but its root lacks `#![forbid(unsafe_code)]`; \
                     forbid it so none can creep in"
                        .to_string(),
                ));
            }
            if has_unsafe
                && f.path.ends_with("/lib.rs")
                && !has_inner_attr(f, "deny", "unsafe_op_in_unsafe_fn")
            {
                out.push(finding(
                    "unsafe-audit",
                    f,
                    1,
                    "crate uses unsafe but its lib.rs lacks `#![deny(unsafe_op_in_unsafe_fn)]`; \
                     deny it so each unsafe operation needs an explicit commented block"
                        .to_string(),
                ));
            }
        }
    }
}

/// The crate grouping key for a `src/` file, `None` for test/example
/// targets (separate compilation units; crate attrs do not reach them).
fn crate_key(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        let src_prefix = format!("crates/{name}/src/");
        return path
            .starts_with(&src_prefix)
            .then(|| format!("crates/{name}"));
    }
    path.starts_with("src/").then(|| ".".to_string())
}

/// Whether this file is a crate root (its own compilation unit root).
fn is_crate_root(path: &str) -> bool {
    path.ends_with("/lib.rs") && path.matches('/').count() <= 3 && path.contains("/src/")
        || path == "src/lib.rs"
        || path.ends_with("/src/main.rs")
        || path.contains("/src/bin/")
}

/// Looks for `#![<level>(<lint>)]` in the file's code tokens.
fn has_inner_attr(f: &SourceFile, level: &str, lint: &str) -> bool {
    let n = f.code_len();
    for k in 0..n.saturating_sub(7) {
        if f.ct(k).is_punct('#')
            && f.ct(k + 1).is_punct('!')
            && f.ct(k + 2).is_punct('[')
            && f.ct(k + 3).is_ident(level)
            && f.ct(k + 4).is_punct('(')
            && f.ct(k + 5).is_ident(lint)
            && f.ct(k + 6).is_punct(')')
            && f.ct(k + 7).is_punct(']')
        {
            return true;
        }
    }
    false
}
