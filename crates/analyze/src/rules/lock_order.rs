//! `lock-order`: the static lock-acquisition graph of pp-core must be
//! cycle-free.
//!
//! For every function in `crates/core/src/` the rule extracts which
//! named lock fields are acquired (`x.state.lock()` → `state`) and
//! which are still held at that point: a guard bound with `let` is held
//! until its enclosing block closes (or an explicit `drop(guard)`);
//! an unbound guard is held to the end of its statement. Helper
//! functions that acquire and return guards (`lock_state`,
//! `lock_counters`) are expanded at their call sites, so indirection
//! does not hide an acquisition. Every "B acquired while A held" pair
//! becomes an edge A→B; a cycle in the resulting graph — including a
//! self-edge, since `std::sync::Mutex` is not re-entrant — is a
//! potential deadlock and fails the pass.
//!
//! This is a conservative lexical approximation: guards moved across
//! functions or stored in structs are invisible, and a guard is
//! assumed held to end of block even if dropped early by shadowing.
//! For the scheduler/service/engine layer — short, block-scoped
//! critical sections by policy — that approximation is exact.

use super::{finding, Config};
use crate::model::SourceFile;
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

pub(super) fn check(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut fns: Vec<FnDef> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.path.starts_with(cfg.core_prefix.as_str()) {
            continue;
        }
        extract_functions(f, fi, &mut fns);
    }
    let by_name: BTreeMap<&str, usize> = fns
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.as_str(), i))
        .collect();

    // Edges: (held, acquired) -> example site.
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for def in &fns {
        simulate(def, &fns, &by_name, &mut edges);
    }

    let mut out = Vec::new();
    for cycle in find_cycles(&edges) {
        let mut route = String::new();
        let mut sites = Vec::new();
        for w in cycle.windows(2) {
            if let Some(&(fi, line)) = edges.get(&(w[0].clone(), w[1].clone())) {
                sites.push(format!(
                    "{} -> {} at {}:{}",
                    w[0], w[1], files[fi].path, line
                ));
            }
        }
        route.push_str(&cycle.join(" -> "));
        let &(fi, line) = edges
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .expect("cycle edges exist in the map");
        out.push(finding(
            "lock-order",
            &files[fi],
            line,
            format!(
                "potential deadlock: lock-order cycle {route} ({}); acquire these locks in \
                 one global order or narrow the critical sections",
                sites.join(", ")
            ),
        ));
    }
    out
}

/// One event inside a function body, in lexical order.
#[derive(Debug, Clone)]
enum Event {
    /// `{`
    Open,
    /// `}`
    Close,
    /// `;` (statement boundary at the current depth)
    Semi,
    /// A named lock acquisition, with its binding if `let`-bound.
    Acquire {
        lock: String,
        line: u32,
        binding: Option<String>,
    },
    /// A call to a function that may acquire locks.
    Call {
        callee: String,
        line: u32,
        binding: Option<String>,
    },
    /// `drop(name)` — an explicit early release.
    Drop { name: String },
}

#[derive(Debug)]
struct FnDef {
    name: String,
    file: usize,
    events: Vec<Event>,
}

const ACQUIRES: [&str; 3] = ["lock", "read", "write"];
const KEYWORDS: [&str; 14] = [
    "if", "while", "match", "for", "return", "let", "loop", "move", "in", "else", "fn", "drop",
    "Some", "Ok",
];

fn extract_functions(f: &SourceFile, fi: usize, out: &mut Vec<FnDef>) {
    let n = f.code_len();
    let mut k = 0usize;
    while k < n {
        if !(f.ct(k).is_ident("fn")
            && k + 1 < n
            && f.ct(k + 1).kind == crate::lexer::TokKind::Ident)
        {
            k += 1;
            continue;
        }
        let name = f.ct(k + 1).text.clone();
        if f.is_test_line(f.ct(k).line) {
            k += 2;
            continue;
        }
        // Find the body opening brace (or `;` for trait decls).
        let mut j = k + 2;
        let mut open = None;
        while j < n {
            if f.ct(j).is_punct('{') {
                open = Some(j);
                break;
            }
            if f.ct(j).is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            k = j + 1;
            continue;
        };
        // Match the closing brace.
        let mut depth = 0i32;
        let mut close = open;
        while close < n {
            if f.ct(close).is_punct('{') {
                depth += 1;
            } else if f.ct(close).is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        let events = extract_events(f, open, close.min(n - 1));
        out.push(FnDef {
            name,
            file: fi,
            events,
        });
        k += 2; // keep walking inside the body: nested fns are rare but real
    }
}

/// Builds the event stream for code tokens `(open, close)`.
fn extract_events(f: &SourceFile, open: usize, close: usize) -> Vec<Event> {
    let mut ev = Vec::new();
    let mut k = open + 1;
    while k < close {
        let t = f.ct(k);
        if t.is_punct('{') {
            ev.push(Event::Open);
        } else if t.is_punct('}') {
            ev.push(Event::Close);
        } else if t.is_punct(';') {
            ev.push(Event::Semi);
        } else if t.is_punct('.')
            && k + 3 < close
            && ACQUIRES.iter().any(|a| f.ct(k + 1).is_ident(a))
            && f.ct(k + 2).is_punct('(')
            && f.ct(k + 3).is_punct(')')
        {
            // `recv.lock()` — name the receiver field if we can see it.
            if k >= 1 && f.ct(k - 1).kind == crate::lexer::TokKind::Ident {
                ev.push(Event::Acquire {
                    lock: f.ct(k - 1).text.clone(),
                    line: f.ct(k + 1).line,
                    binding: statement_binding(f, open, k),
                });
            }
            k += 4;
            continue;
        } else if t.is_ident("drop")
            && k + 3 < close
            && f.ct(k + 1).is_punct('(')
            && f.ct(k + 2).kind == crate::lexer::TokKind::Ident
            && f.ct(k + 3).is_punct(')')
        {
            ev.push(Event::Drop {
                name: f.ct(k + 2).text.clone(),
            });
            k += 4;
            continue;
        } else if t.kind == crate::lexer::TokKind::Ident
            && k + 1 < close
            && f.ct(k + 1).is_punct('(')
            && !KEYWORDS.contains(&t.text.as_str())
            && !(k >= 1 && (f.ct(k - 1).is_punct('.') || f.ct(k - 1).is_punct(':')))
        {
            ev.push(Event::Call {
                callee: t.text.clone(),
                line: t.line,
                binding: statement_binding(f, open, k),
            });
        }
        k += 1;
    }
    ev
}

/// If the statement containing code position `k` starts with
/// `let [mut] NAME`, returns `NAME`.
fn statement_binding(f: &SourceFile, open: usize, k: usize) -> Option<String> {
    let mut s = k;
    while s > open {
        let t = f.ct(s - 1);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    if !f.ct(s).is_ident("let") {
        return None;
    }
    let mut p = s + 1;
    if f.ct(p).is_ident("mut") {
        p += 1;
    }
    (f.ct(p).kind == crate::lexer::TokKind::Ident).then(|| f.ct(p).text.clone())
}

/// Ordered locks a function acquires, following calls transitively.
fn flatten(
    idx: usize,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, usize>,
    visiting: &mut BTreeSet<usize>,
) -> Vec<String> {
    if !visiting.insert(idx) {
        return Vec::new(); // recursion guard
    }
    let mut locks = Vec::new();
    for e in &fns[idx].events {
        match e {
            Event::Acquire { lock, .. } => locks.push(lock.clone()),
            Event::Call { callee, .. } => {
                if let Some(&ci) = by_name.get(callee.as_str()) {
                    locks.extend(flatten(ci, fns, by_name, visiting));
                }
            }
            _ => {}
        }
    }
    visiting.remove(&idx);
    locks
}

#[derive(Debug)]
struct Held {
    lock: String,
    depth: i32,
    binding: Option<String>,
}

fn simulate(
    def: &FnDef,
    fns: &[FnDef],
    by_name: &BTreeMap<&str, usize>,
    edges: &mut BTreeMap<(String, String), (usize, u32)>,
) {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0i32;
    let acquire = |held: &mut Vec<Held>,
                   lock: &str,
                   line: u32,
                   binding: &Option<String>,
                   depth: i32,
                   edges: &mut BTreeMap<(String, String), (usize, u32)>| {
        for h in held.iter() {
            edges
                .entry((h.lock.clone(), lock.to_string()))
                .or_insert((def.file, line));
        }
        held.push(Held {
            lock: lock.to_string(),
            depth,
            binding: binding.clone(),
        });
    };
    for e in &def.events {
        match e {
            Event::Open => depth += 1,
            Event::Close => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            Event::Semi => {
                // Unbound guards are temporaries: dead at the `;`.
                held.retain(|h| h.binding.is_some() || h.depth < depth);
            }
            Event::Drop { name } => {
                held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
            }
            Event::Acquire {
                lock,
                line,
                binding,
            } => acquire(&mut held, lock, *line, binding, depth, edges),
            Event::Call {
                callee,
                line,
                binding,
            } => {
                if let Some(&ci) = by_name.get(callee.as_str()) {
                    let locks = flatten(ci, fns, by_name, &mut BTreeSet::new());
                    if binding.is_some() {
                        // `let g = self.lock_x();` — the callee's guard
                        // lives on at the call site; treat its locks as
                        // acquired here.
                        for lock in locks {
                            acquire(&mut held, &lock, *line, binding, depth, edges);
                        }
                    } else {
                        // A plain call: the callee's acquisitions are
                        // transient (its own simulation covers their
                        // internal ordering), but anything held *here*
                        // still orders before them.
                        for lock in locks {
                            for h in held.iter() {
                                edges
                                    .entry((h.lock.clone(), lock.clone()))
                                    .or_insert((def.file, *line));
                            }
                        }
                    }
                }
            }
        }
    }
}

/// All distinct cycles (as node paths `a -> b -> a`) in the edge set.
fn find_cycles(edges: &BTreeMap<(String, String), (usize, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_keys: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into_iter().collect();
        dfs(
            start,
            start,
            &adj,
            &mut stack,
            &mut on_path,
            &mut cycles,
            &mut seen_keys,
        );
    }
    cycles
}

fn dfs<'a>(
    node: &'a str,
    start: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    cycles: &mut Vec<Vec<String>>,
    seen_keys: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start {
            let mut cyc: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            cyc.push(start.to_string());
            // Canonical key: the sorted node set, so each cycle
            // reports once regardless of entry point.
            let mut key: Vec<String> = stack.iter().map(|s| s.to_string()).collect();
            key.sort();
            if seen_keys.insert(key) {
                cycles.push(cyc);
            }
        } else if !on_path.contains(next) {
            stack.push(next);
            on_path.insert(next);
            dfs(next, start, adj, stack, on_path, cycles, seen_keys);
            stack.pop();
            on_path.remove(next);
        }
    }
}
