//! Per-file analysis model: the lexed token stream plus the line-level
//! classification rules need — which lines are code vs comment vs
//! attribute-only, and which lines sit inside `#[cfg(test)]` items.

use crate::lexer::{lex, Tok};

/// How one physical line reads at a glance.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Any non-comment token starts on this line.
    pub has_code: bool,
    /// Every code token on this line belongs to an attribute
    /// (`#[...]` / `#![...]`).
    pub attr_only: bool,
    /// Concatenated text of comments starting on this line.
    pub comment: String,
    /// The line lies inside a multi-line comment that started earlier.
    pub comment_cont: bool,
}

/// One source file prepared for the rule engine.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Raw lines, for snippets and waiver matching.
    pub lines: Vec<String>,
    /// All tokens, comments included.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    line_info: Vec<LineInfo>,
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Lexes and classifies `src`.
    pub fn new(path: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let n_lines = lines.len();

        let attr_toks = attribute_tokens(&toks, &code);
        let mut line_info = vec![LineInfo::default(); n_lines];
        for t in toks.iter() {
            let l = t.line as usize - 1;
            if l >= n_lines {
                continue;
            }
            if t.is_comment() {
                if !line_info[l].comment.is_empty() {
                    line_info[l].comment.push('\n');
                }
                line_info[l].comment.push_str(&t.text);
                // Mark the lines a block comment spans beyond its first.
                let extra = t.text.matches('\n').count();
                for k in 1..=extra {
                    if l + k < n_lines {
                        line_info[l + k].comment_cont = true;
                    }
                }
            } else {
                line_info[l].has_code = true;
            }
        }
        // A line is attribute-only when it has code and every code
        // token on it is inside an attribute.
        let mut all_attr = vec![true; n_lines];
        for (i, t) in toks.iter().enumerate() {
            if t.is_comment() {
                continue;
            }
            let l = t.line as usize - 1;
            if l < n_lines && !attr_toks[i] {
                all_attr[l] = false;
            }
        }
        for (l, info) in line_info.iter_mut().enumerate() {
            info.attr_only = info.has_code && all_attr[l];
        }

        let mut test_lines = vec![false; n_lines];
        let dir_is_test = path.starts_with("tests/") || path.contains("/tests/");
        if dir_is_test {
            test_lines.iter_mut().for_each(|t| *t = true);
        } else {
            mark_cfg_test_items(&toks, &code, &mut test_lines);
        }

        SourceFile {
            path: path.to_string(),
            lines,
            toks,
            code,
            line_info,
            test_lines,
        }
    }

    /// Line classification for 1-based `line` (default beyond EOF).
    pub fn line_info(&self, line: u32) -> LineInfo {
        self.line_info
            .get(line as usize - 1)
            .cloned()
            .unwrap_or_default()
    }

    /// True when 1-based `line` is inside `#[cfg(test)]` code or the
    /// whole file is a test target (under a `tests/` directory).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line as usize - 1)
            .copied()
            .unwrap_or(false)
    }

    /// The raw text of 1-based `line` (empty beyond EOF).
    pub fn snippet(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// The code token at code-stream position `k`.
    pub fn ct(&self, k: usize) -> &Tok {
        &self.toks[self.code[k]]
    }

    /// Number of code tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }
}

/// Marks which token indices belong to attributes (`#[...]`, `#![...]`).
fn attribute_tokens(toks: &[Tok], code: &[usize]) -> Vec<bool> {
    let mut attr = vec![false; toks.len()];
    let mut k = 0usize;
    while k < code.len() {
        if toks[code[k]].is_punct('#') {
            let mut j = k + 1;
            if j < code.len() && toks[code[j]].is_punct('!') {
                j += 1;
            }
            if j < code.len() && toks[code[j]].is_punct('[') {
                let mut depth = 0i32;
                while j < code.len() {
                    if toks[code[j]].is_punct('[') {
                        depth += 1;
                    } else if toks[code[j]].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end = j.min(code.len() - 1);
                for pos in k..=end {
                    attr[code[pos]] = true;
                }
                k = end + 1;
                continue;
            }
        }
        k += 1;
    }
    attr
}

/// Finds `#[cfg(test)]` attributes and marks the lines of the item each
/// one gates (through the matching close brace, or the terminating
/// semicolon for brace-less items).
fn mark_cfg_test_items(toks: &[Tok], code: &[usize], test_lines: &mut [bool]) {
    let n = code.len();
    let mut k = 0usize;
    while k < n {
        if !(toks[code[k]].is_punct('#') && k + 1 < n && toks[code[k + 1]].is_punct('[')) {
            k += 1;
            continue;
        }
        // Collect the attribute token span.
        let mut j = k + 1;
        let mut depth = 0i32;
        let mut is_cfg = false;
        let mut is_test = false;
        while j < n {
            let t = &toks[code[j]];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("cfg") {
                is_cfg = true;
            } else if t.is_ident("test") {
                is_test = true;
            }
            j += 1;
        }
        if !(is_cfg && is_test) || j >= n {
            k = j.max(k + 1);
            continue;
        }
        let attr_start_line = toks[code[k]].line;
        // Skip any further attributes between this one and the item.
        let mut p = j + 1;
        while p + 1 < n && toks[code[p]].is_punct('#') && toks[code[p + 1]].is_punct('[') {
            let mut d = 0i32;
            let mut q = p + 1;
            while q < n {
                if toks[code[q]].is_punct('[') {
                    d += 1;
                } else if toks[code[q]].is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                q += 1;
            }
            p = q + 1;
        }
        // Walk the item: to `;` before any brace, else to matching `}`.
        let mut brace = 0i32;
        let mut end_line = attr_start_line;
        let mut seen_brace = false;
        while p < n {
            let t = &toks[code[p]];
            if t.is_punct('{') {
                brace += 1;
                seen_brace = true;
            } else if t.is_punct('}') {
                brace -= 1;
                if seen_brace && brace == 0 {
                    end_line = t.line;
                    break;
                }
            } else if t.is_punct(';') && !seen_brace {
                end_line = t.line;
                break;
            }
            end_line = t.line;
            p += 1;
        }
        for l in (attr_start_line as usize - 1)..(end_line as usize) {
            if l < test_lines.len() {
                test_lines[l] = true;
            }
        }
        k = p + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_lines_are_marked() {
        let src =
            "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn tests_directory_files_are_all_test() {
        let f = SourceFile::new("tests/integration.rs", "fn x() {}\n");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn attribute_only_lines_are_classified() {
        let src = "#[cfg(feature = \"x\")]\nfn f() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.line_info(1).attr_only);
        assert!(!f.line_info(2).attr_only);
        assert!(f.line_info(2).has_code);
    }

    #[test]
    fn comments_attach_to_their_lines() {
        let src = "// SAFETY: fine\nlet x = 1; // trailing\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.line_info(1).comment.contains("SAFETY:"));
        assert!(!f.line_info(1).has_code);
        assert!(f.line_info(2).has_code);
        assert!(f.line_info(2).comment.contains("trailing"));
    }
}
