//! Pattern-library diversity metrics: H1/H2 entropies and uniqueness.
//!
//! The paper scores a generated pattern library with:
//!
//! * **Legality** — the fraction of DR-clean patterns (computed by
//!   `pp-drc`, not here);
//! * **H1** — the Shannon entropy (base 2) of the distribution of
//!   *complexity tuples* `(Cx, Cy)` — scan-line counts minus one per axis.
//!   H1 sees only topology complexity, not geometry;
//! * **H2** — the entropy of the distribution over *geometry classes*:
//!   patterns sharing identical `(Δx, Δy)` vectors fall into one class.
//!   H2 is the paper's headline diversity metric because it captures
//!   physical-width variation at fixed topology;
//! * **Unique patterns** — the number of distinct full squish signatures
//!   (topology + Δx + Δy).
//!
//! Base-2 logarithms reproduce the paper's scale: 20 all-distinct starter
//! patterns give `H2 = log2(20) ≈ 4.32`, exactly Table I's starter row.
//!
//! # Example
//!
//! ```
//! use pp_metrics::LibraryStats;
//! use pp_pdk::SynthNode;
//!
//! let starters = SynthNode::default().starter_patterns();
//! let stats = LibraryStats::from_layouts(&starters);
//! assert_eq!(stats.unique, 20);
//! assert!((stats.h2 - 20f64.log2()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

use pp_geometry::{Layout, Signature, SquishPattern};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

#[cfg(test)]
use pp_pdk as _; // dev-only usage in doctests

/// Shannon entropy (base 2) of a discrete distribution given by counts.
///
/// Zero-count entries are ignored; an empty or all-zero histogram has zero
/// entropy.
///
/// # Example
///
/// ```
/// use pp_metrics::entropy_base2;
/// // A uniform distribution over 4 classes has 2 bits of entropy.
/// assert!((entropy_base2(&[5, 5, 5, 5]) - 2.0).abs() < 1e-12);
/// assert_eq!(entropy_base2(&[10]), 0.0);
/// ```
pub fn entropy_base2(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            p * p.log2()
        })
        .sum::<f64>()
}

/// H1: entropy of the complexity-tuple distribution `(Cx, Cy)`.
pub fn h1_entropy(patterns: &[SquishPattern]) -> f64 {
    let mut hist: HashMap<(u32, u32), usize> = HashMap::new();
    for p in patterns {
        *hist.entry(p.complexity()).or_insert(0) += 1;
    }
    let counts: Vec<usize> = hist.into_values().collect();
    entropy_base2(&counts)
}

/// H2: entropy of the geometry-class distribution (identical `(Δx, Δy)`).
pub fn h2_entropy(patterns: &[SquishPattern]) -> f64 {
    let mut hist: HashMap<Signature, usize> = HashMap::new();
    for p in patterns {
        *hist.entry(Signature::of_deltas(p)).or_insert(0) += 1;
    }
    let counts: Vec<usize> = hist.into_values().collect();
    entropy_base2(&counts)
}

/// Number of distinct patterns by full squish signature.
pub fn unique_count(patterns: &[SquishPattern]) -> usize {
    patterns
        .iter()
        .map(Signature::of_squish)
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Summary statistics of a pattern library (one row of the paper's
/// Table I, minus the legality column which the caller supplies).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LibraryStats {
    /// Number of patterns scored.
    pub count: usize,
    /// Distinct full squish signatures.
    pub unique: usize,
    /// Topology-complexity entropy.
    pub h1: f64,
    /// Geometry-class entropy (the headline metric).
    pub h2: f64,
}

impl LibraryStats {
    /// Scores a library given in squish form.
    pub fn from_squish(patterns: &[SquishPattern]) -> Self {
        LibraryStats {
            count: patterns.len(),
            unique: unique_count(patterns),
            h1: h1_entropy(patterns),
            h2: h2_entropy(patterns),
        }
    }

    /// Scores a library of raster layouts (squishes them first).
    pub fn from_layouts(layouts: &[Layout]) -> Self {
        let patterns: Vec<SquishPattern> = layouts.iter().map(SquishPattern::from_layout).collect();
        Self::from_squish(&patterns)
    }
}

impl std::fmt::Display for LibraryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} unique={} H1={:.2} H2={:.2}",
            self.count, self.unique, self.h1, self.h2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Rect;
    use proptest::prelude::*;

    fn wire(x: u32, w: u32, len: u32) -> Layout {
        let mut l = Layout::new(32, 32);
        l.fill_rect(Rect::new(x, 2, w, len));
        l
    }

    #[test]
    fn entropy_of_uniform() {
        assert!((entropy_base2(&[1, 1]) - 1.0).abs() < 1e-12);
        assert!((entropy_base2(&[2, 2, 2, 2, 2, 2, 2, 2]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_degenerate() {
        assert_eq!(entropy_base2(&[]), 0.0);
        assert_eq!(entropy_base2(&[0, 0]), 0.0);
        assert_eq!(entropy_base2(&[42]), 0.0);
    }

    #[test]
    fn entropy_handles_skew() {
        let h = entropy_base2(&[9, 1]);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn all_distinct_library_has_log2_n_h2() {
        // 8 wires at different x positions: distinct Δx classes.
        let layouts: Vec<Layout> = (0..8).map(|i| wire(2 + i * 3, 2, 20)).collect();
        let stats = LibraryStats::from_layouts(&layouts);
        assert_eq!(stats.unique, 8);
        assert!((stats.h2 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn h1_collapses_same_complexity() {
        // All single wires share complexity (2, 2) -> H1 = 0 even though
        // geometry differs.
        let layouts: Vec<Layout> = (0..4).map(|i| wire(2 + i * 4, 2, 20)).collect();
        let patterns: Vec<SquishPattern> = layouts.iter().map(SquishPattern::from_layout).collect();
        assert_eq!(h1_entropy(&patterns), 0.0);
        assert!(h2_entropy(&patterns) > 1.9);
    }

    #[test]
    fn duplicates_reduce_unique_not_count() {
        let l = wire(4, 3, 20);
        let layouts = vec![l.clone(), l.clone(), l];
        let stats = LibraryStats::from_layouts(&layouts);
        assert_eq!(stats.count, 3);
        assert_eq!(stats.unique, 1);
        assert_eq!(stats.h2, 0.0);
    }

    #[test]
    fn starter_row_matches_paper_shape() {
        let starters = pp_pdk::SynthNode::default().starter_patterns();
        let stats = LibraryStats::from_layouts(&starters);
        assert_eq!(stats.count, 20);
        assert_eq!(stats.unique, 20);
        // H2 = log2(20) when all geometry classes are distinct; H1 <= H2
        // because several starters share complexity tuples — exactly the
        // relation in the paper's Table I starter row (3.68 vs 4.32).
        assert!(stats.h2 <= 20f64.log2() + 1e-9);
        assert!(stats.h1 < stats.h2);
    }

    proptest! {
        /// Entropy is bounded by log2(number of classes).
        #[test]
        fn prop_entropy_bound(counts in proptest::collection::vec(0usize..50, 1..20)) {
            let nonzero = counts.iter().filter(|&&c| c > 0).count();
            let h = entropy_base2(&counts);
            prop_assert!(h >= -1e-12);
            if nonzero > 0 {
                prop_assert!(h <= (nonzero as f64).log2() + 1e-9);
            }
        }

        /// Adding a duplicate of an existing pattern never increases H2.
        #[test]
        fn prop_duplicate_decreases_entropy(n in 2usize..6) {
            let mut layouts: Vec<Layout> = (0..n as u32).map(|i| wire(2 + i * 4, 2, 20)).collect();
            let before = LibraryStats::from_layouts(&layouts);
            layouts.push(layouts[0].clone());
            let after = LibraryStats::from_layouts(&layouts);
            prop_assert!(after.h2 <= before.h2 + 1e-12);
        }
    }
}
