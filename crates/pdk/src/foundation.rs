//! The foundation (pretraining) corpus generator.
//!
//! The paper starts from Stable Diffusion checkpoints pretrained on a
//! web-scale image corpus. Our diffusion substrate is instead pretrained
//! in-repo on this corpus: a large procedurally generated family of
//! *generic* Manhattan patterns (varied pitches, widths, orientations,
//! segmentation and the occasional rectangle soup). The corpus is
//! intentionally **not** DR-clean for any particular node — it teaches the
//! model Manhattan-ness and track structure, the way SD's pretraining
//! teaches natural-image statistics, while the 20 node-specific starters
//! are reserved for few-shot finetuning.

use pp_geometry::{Layout, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `n` generic Manhattan layouts of size `clip`×`clip`.
///
/// Deterministic in `seed`. Roughly 45 % vertical track patterns, 45 %
/// horizontal (rotated) ones and 10 % random rectangle soups.
///
/// # Example
///
/// ```
/// use pp_pdk::foundation_corpus;
///
/// let corpus = foundation_corpus(8, 32, 123);
/// assert_eq!(corpus.len(), 8);
/// assert!(corpus.iter().all(|l| l.width() == 32));
/// ```
pub fn foundation_corpus(n: usize, clip: u32, seed: u64) -> Vec<Layout> {
    assert!(clip >= 16, "foundation corpus needs clips of at least 16px");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| foundation_sample(clip, &mut rng)).collect()
}

fn foundation_sample(clip: u32, rng: &mut StdRng) -> Layout {
    let style = rng.gen_range(0..10);
    let base = match style {
        0 => rect_soup(clip, rng),
        _ => track_pattern(clip, rng),
    };
    if (1..5).contains(&style) {
        // Horizontal variants come from rotating vertical ones.
        base.rotate_cw()
    } else {
        base
    }
}

/// Vertical track pattern with random pitch, widths and segmentation.
///
/// Deliberately *generic*: pitches and widths span well beyond any one
/// node's legal values (a node-agnostic image prior, like SD's natural
/// image prior), so the pretrained model needs few-shot finetuning to
/// hit a specific rule deck — the effect the paper measures.
fn track_pattern(clip: u32, rng: &mut StdRng) -> Layout {
    let mut l = Layout::new(clip, clip);
    let pitch = rng.gen_range(5..=13u32);
    let width_choices = [2u32, 3, 4, 5, 6, 7];
    let mut x = rng.gen_range(1..=4u32);
    while x + 2 <= clip {
        if rng.gen_bool(0.7) {
            let w = width_choices[rng.gen_range(0..width_choices.len())].min(clip - x);
            // Random segmentation along the track.
            let mut y = if rng.gen_bool(0.6) {
                0
            } else {
                rng.gen_range(0..clip / 3)
            };
            while y + 3 < clip {
                let len = rng.gen_range(5..=clip);
                let y1 = (y + len).min(clip);
                l.fill_rect(Rect::new(x, y, w, y1 - y));
                y = y1 + rng.gen_range(3..8);
                if rng.gen_bool(0.5) {
                    break;
                }
            }
        }
        x += pitch + rng.gen_range(0..3);
    }
    // Occasional cross strap.
    if rng.gen_bool(0.3) {
        let y = rng.gen_range(0..clip - 3);
        let x0 = rng.gen_range(0..clip / 2);
        let span = rng.gen_range(clip / 4..clip - x0);
        l.fill_rect(Rect::new(x0, y, span, rng.gen_range(2..=4)));
    }
    l
}

/// Sparse random rectangles (keeps the model honest about non-track shapes).
fn rect_soup(clip: u32, rng: &mut StdRng) -> Layout {
    let mut l = Layout::new(clip, clip);
    for _ in 0..rng.gen_range(2..7) {
        let w = rng.gen_range(2..clip / 2);
        let h = rng.gen_range(2..clip / 2);
        let x = rng.gen_range(0..clip - w);
        let y = rng.gen_range(0..clip - h);
        l.fill_rect(Rect::new(x, y, w, h));
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Signature;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(foundation_corpus(10, 32, 5), foundation_corpus(10, 32, 5));
    }

    #[test]
    fn seeds_differ() {
        assert_ne!(foundation_corpus(10, 32, 5), foundation_corpus(10, 32, 6));
    }

    #[test]
    fn diverse() {
        let sigs: HashSet<Signature> = foundation_corpus(100, 32, 1)
            .iter()
            .map(Signature::of_layout)
            .collect();
        assert!(sigs.len() > 90);
    }

    #[test]
    fn densities_are_plausible() {
        let corpus = foundation_corpus(100, 32, 2);
        let mean: f64 = corpus.iter().map(Layout::density).sum::<f64>() / 100.0;
        assert!(mean > 0.05 && mean < 0.8, "mean density {mean}");
    }

    #[test]
    fn contains_both_orientations() {
        // Vertical patterns have more x scan lines than y, and vice versa.
        let corpus = foundation_corpus(50, 32, 3);
        let mut vertical = 0;
        let mut horizontal = 0;
        for l in &corpus {
            let sx = pp_geometry::scan_lines_x(l).len();
            let sy = pp_geometry::scan_lines_y(l).len();
            if sx > sy {
                vertical += 1;
            } else if sy > sx {
                horizontal += 1;
            }
        }
        assert!(vertical > 5 && horizontal > 5);
    }

    #[test]
    #[should_panic(expected = "at least 16px")]
    fn tiny_clip_rejected() {
        let _ = foundation_corpus(1, 8, 0);
    }
}
