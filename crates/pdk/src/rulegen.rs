//! The rule-based ("commercial tool") pattern generator.
//!
//! Prior training-based methods need on the order of a thousand DR-clean
//! samples; the paper obtains them from a commercial tool. This generator
//! plays that role: it samples random track-aligned candidates and
//! rejection-filters them through the sign-off checker, so every emitted
//! sample is DR-clean by construction.
//!
//! It is exactly the kind of "rule-based method requiring the DR set to be
//! coded in" that PatternPaint's few-shot approach removes the need for —
//! which is why it lives in the PDK crate, not the core pipeline.

use crate::builder::TrackBuilder;
use crate::node::{SynthNode, WIDTH_NARROW, WIDTH_WIDE};
use pp_drc::check_layout;
use pp_geometry::Layout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates DR-clean layouts by randomised construction + DRC rejection.
///
/// # Example
///
/// ```
/// use pp_pdk::{RuleBasedGenerator, SynthNode};
/// use pp_drc::check_layout;
///
/// let node = SynthNode::default();
/// let mut gen = RuleBasedGenerator::new(node.clone(), 42);
/// for sample in gen.generate_batch(5) {
///     assert!(check_layout(&sample, node.rules()).is_clean());
/// }
/// ```
#[derive(Debug)]
pub struct RuleBasedGenerator {
    node: SynthNode,
    rng: StdRng,
    /// Candidates tried per emitted sample (for instrumentation).
    attempts: u64,
    emitted: u64,
}

impl RuleBasedGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(node: SynthNode, seed: u64) -> Self {
        RuleBasedGenerator {
            node,
            rng: StdRng::seed_from_u64(seed),
            attempts: 0,
            emitted: 0,
        }
    }

    /// The node this generator targets.
    pub fn node(&self) -> &SynthNode {
        &self.node
    }

    /// Average candidates tried per emitted clean sample so far.
    pub fn rejection_factor(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.attempts as f64 / self.emitted as f64
        }
    }

    /// Emits one DR-clean sample.
    ///
    /// Rejection-samples random candidates; falls back to an all-narrow
    /// full-track pattern if 64 consecutive candidates fail (never
    /// observed in practice, but guarantees termination).
    pub fn generate(&mut self) -> Layout {
        for _ in 0..64 {
            self.attempts += 1;
            let candidate = self.candidate();
            if check_layout(&candidate, self.node.rules()).is_clean() && candidate.metal_area() > 0
            {
                self.emitted += 1;
                return candidate;
            }
        }
        self.emitted += 1;
        let clip = self.node.clip();
        let mut b = TrackBuilder::new(&self.node);
        for t in 0..self.node.track_count() {
            b = b.segment(t, 0, clip, WIDTH_NARROW);
        }
        b.build()
    }

    /// Emits `n` DR-clean samples.
    pub fn generate_batch(&mut self, n: usize) -> Vec<Layout> {
        (0..n).map(|_| self.generate()).collect()
    }

    /// Builds one random candidate (not necessarily clean).
    fn candidate(&mut self) -> Layout {
        let clip = self.node.clip();
        let tracks = self.node.track_count();
        let mut b = TrackBuilder::new(&self.node);
        let mut widths: Vec<Option<u32>> = vec![None; tracks];
        let mut occupied_spans: Vec<Vec<(u32, u32)>> = vec![Vec::new(); tracks];

        for t in 0..tracks {
            if self.rng.gen_bool(0.2) {
                continue; // empty track
            }
            // Avoid wide next to wide (illegal at this pitch by design).
            let prev_wide = t > 0 && widths[t - 1] == Some(WIDTH_WIDE);
            let w = if !prev_wide && self.rng.gen_bool(0.25) {
                WIDTH_WIDE
            } else {
                WIDTH_NARROW
            };
            widths[t] = Some(w);
            // 1..=3 segments with E2E-legal gaps.
            let nsegs =
                1 + usize::from(self.rng.gen_bool(0.4)) + usize::from(self.rng.gen_bool(0.15));
            let mut y = if self.rng.gen_bool(0.7) {
                0
            } else {
                self.rng.gen_range(0..clip / 4)
            };
            for s in 0..nsegs {
                if y + 6 > clip {
                    break;
                }
                let remaining = clip - y;
                let min_len = 6u32;
                let len = if s + 1 == nsegs && self.rng.gen_bool(0.7) {
                    remaining
                } else {
                    self.rng.gen_range(min_len..=remaining.max(min_len))
                };
                let y1 = (y + len).min(clip);
                b = b.segment(t, y, y1, w);
                occupied_spans[t].push((y, y1));
                // E2E gap of at least 4.
                y = y1 + 4 + self.rng.gen_range(0..4);
            }
        }

        // Occasionally bridge adjacent narrow tracks where both wires
        // cover the strap rows.
        if self.rng.gen_bool(0.35) {
            for t in 0..tracks.saturating_sub(1) {
                if widths[t] != Some(WIDTH_NARROW) || widths[t + 1] != Some(WIDTH_NARROW) {
                    continue;
                }
                if !self.rng.gen_bool(0.5) {
                    continue;
                }
                let y = self.rng.gen_range(2..clip.saturating_sub(6).max(3));
                let covered =
                    |spans: &[(u32, u32)]| spans.iter().any(|&(a, bb)| a <= y && y + 3 <= bb);
                if covered(&occupied_spans[t]) && covered(&occupied_spans[t + 1]) {
                    b = b.strap(t, WIDTH_NARROW, t + 1, WIDTH_NARROW, y, 3);
                    break; // one strap per candidate keeps area in bounds
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::Signature;
    use std::collections::HashSet;

    #[test]
    fn all_samples_are_clean() {
        let node = SynthNode::default();
        let mut gen = RuleBasedGenerator::new(node.clone(), 7);
        for s in gen.generate_batch(50) {
            assert!(check_layout(&s, node.rules()).is_clean());
            assert!(s.metal_area() > 0);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let node = SynthNode::default();
        let a = RuleBasedGenerator::new(node.clone(), 9).generate_batch(10);
        let b = RuleBasedGenerator::new(node, 9).generate_batch(10);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let node = SynthNode::default();
        let a = RuleBasedGenerator::new(node.clone(), 1).generate_batch(10);
        let b = RuleBasedGenerator::new(node, 2).generate_batch(10);
        assert_ne!(a, b);
    }

    #[test]
    fn batch_has_diversity() {
        let node = SynthNode::default();
        let mut gen = RuleBasedGenerator::new(node, 11);
        let sigs: HashSet<Signature> = gen
            .generate_batch(60)
            .iter()
            .map(Signature::of_layout)
            .collect();
        assert!(sigs.len() >= 30, "got only {} unique of 60", sigs.len());
    }

    #[test]
    fn rejection_factor_is_reasonable() {
        let node = SynthNode::default();
        let mut gen = RuleBasedGenerator::new(node, 13);
        let _ = gen.generate_batch(40);
        let f = gen.rejection_factor();
        assert!((1.0..32.0).contains(&f), "rejection factor {f}");
    }

    #[test]
    fn works_on_small_node() {
        let node = SynthNode::small();
        let mut gen = RuleBasedGenerator::new(node.clone(), 3);
        for s in gen.generate_batch(10) {
            assert!(check_layout(&s, node.rules()).is_clean());
        }
    }
}
