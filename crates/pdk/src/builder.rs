//! A small builder for track-aligned layouts.

use crate::node::SynthNode;
use pp_geometry::{Layout, Rect};

/// Builds layouts on a node's vertical track grid.
///
/// The builder knows the node geometry, so callers speak in track indices
/// and width values instead of raw coordinates. It performs no legality
/// checking itself — run the result through [`pp_drc::check_layout`].
///
/// # Example
///
/// ```
/// use pp_pdk::{SynthNode, TrackBuilder, WIDTH_NARROW};
///
/// let node = SynthNode::default();
/// let layout = TrackBuilder::new(&node)
///     .segment(0, 0, 32, WIDTH_NARROW)
///     .segment(1, 4, 20, WIDTH_NARROW)
///     .build();
/// assert!(layout.metal_area() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct TrackBuilder {
    node: SynthNode,
    layout: Layout,
}

impl TrackBuilder {
    /// Starts an empty clip for `node`.
    pub fn new(node: &SynthNode) -> Self {
        TrackBuilder {
            node: node.clone(),
            layout: Layout::new(node.clip(), node.clip()),
        }
    }

    /// Places a vertical wire segment of width `w` on track `t`, spanning
    /// rows `[y0, y1)` (clipped to the clip extent).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn segment(mut self, t: usize, y0: u32, y1: u32, w: u32) -> Self {
        let x = self.node.wire_left_edge(t, w);
        let y1 = y1.min(self.node.clip());
        if y1 > y0 {
            self.layout.fill_rect(Rect::new(x, y0, w, y1 - y0));
        }
        self
    }

    /// Places a horizontal strap of the given `thickness` at rows
    /// `[y, y+thickness)`, spanning from the left edge of a width-`w0`
    /// wire on track `t0` to the right edge of a width-`w1` wire on `t1`.
    ///
    /// # Panics
    ///
    /// Panics if `t0 >= t1` or either index is out of range.
    pub fn strap(mut self, t0: usize, w0: u32, t1: usize, w1: u32, y: u32, thickness: u32) -> Self {
        assert!(t0 < t1, "strap requires t0 < t1");
        let x0 = self.node.wire_left_edge(t0, w0);
        let x1 = self.node.wire_left_edge(t1, w1) + w1;
        self.layout.fill_rect(Rect::new(x0, y, x1 - x0, thickness));
        self
    }

    /// Finishes and returns the layout.
    pub fn build(self) -> Layout {
        self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{WIDTH_NARROW, WIDTH_WIDE};
    use pp_drc::check_layout;

    #[test]
    fn segment_lands_on_track() {
        let node = SynthNode::default();
        let l = TrackBuilder::new(&node)
            .segment(1, 0, 32, WIDTH_NARROW)
            .build();
        assert!(l.get(11, 0) && l.get(13, 31));
        assert!(!l.get(10, 0) && !l.get(14, 0));
    }

    #[test]
    fn segment_clips_to_clip_height() {
        let node = SynthNode::default();
        let l = TrackBuilder::new(&node)
            .segment(0, 28, 99, WIDTH_NARROW)
            .build();
        assert_eq!(l.metal_area(), 3 * 4);
    }

    #[test]
    fn strap_connects_tracks() {
        let node = SynthNode::default();
        let l = TrackBuilder::new(&node)
            .segment(0, 0, 32, WIDTH_NARROW)
            .segment(1, 0, 32, WIDTH_NARROW)
            .strap(0, WIDTH_NARROW, 1, WIDTH_NARROW, 14, 3)
            .build();
        let comps = pp_geometry::connected_components(&l);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn h_pattern_is_dr_clean() {
        let node = SynthNode::default();
        let l = TrackBuilder::new(&node)
            .segment(0, 0, 32, WIDTH_NARROW)
            .segment(1, 0, 32, WIDTH_NARROW)
            .strap(0, WIDTH_NARROW, 1, WIDTH_NARROW, 14, 3)
            .build();
        assert!(check_layout(&l, node.rules()).is_clean());
    }

    #[test]
    fn mixed_width_tracks_clean() {
        let node = SynthNode::default();
        let l = TrackBuilder::new(&node)
            .segment(0, 0, 32, WIDTH_WIDE)
            .segment(1, 0, 32, WIDTH_NARROW)
            .segment(3, 0, 32, WIDTH_WIDE)
            .build();
        assert!(check_layout(&l, node.rules()).is_clean());
    }

    #[test]
    #[should_panic(expected = "t0 < t1")]
    fn strap_order_enforced() {
        let node = SynthNode::default();
        let _ = TrackBuilder::new(&node).strap(1, 3, 1, 3, 4, 3);
    }
}
