//! The SynthNode-3 node definition.

use pp_drc::{RuleDeck, SpacingTable, SpacingWindow};
use serde::{Deserialize, Serialize};

/// Narrow wire width (`Wa` of the paper's advanced rule set), in pixels.
pub const WIDTH_NARROW: u32 = 3;
/// Wide wire width (`Wb`), in pixels.
pub const WIDTH_WIDE: u32 = 5;

/// A synthetic sub-3nm-style technology node.
///
/// The node fixes a clip size, a vertical routing-track grid and the rule
/// decks. All PatternPaint experiments run on `SynthNode::default()`
/// (32×32 clips, track pitch 8); tests use [`SynthNode::small`].
///
/// # Example
///
/// ```
/// use pp_pdk::SynthNode;
///
/// let node = SynthNode::default();
/// assert_eq!(node.clip(), 32);
/// assert_eq!(node.track_centers(), vec![4, 12, 20, 28]);
/// assert!(node.rules().is_advanced());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthNode {
    clip: u32,
    pitch: u32,
    first_track: u32,
    rules: RuleDeck,
    basic_rules: RuleDeck,
}

impl SynthNode {
    /// Creates a node with the given clip size and track pitch.
    ///
    /// # Panics
    ///
    /// Panics if the clip does not fit at least two tracks, or the pitch
    /// cannot host a wide wire plus minimum spacing.
    pub fn new(clip: u32, pitch: u32) -> Self {
        let first_track = pitch / 2;
        assert!(
            first_track + pitch < clip,
            "clip must fit at least two tracks"
        );
        assert!(pitch >= WIDTH_WIDE + 3, "pitch too small for wide wires");
        let rules = Self::advanced_deck();
        let basic_rules = Self::basic_deck();
        SynthNode {
            clip,
            pitch,
            first_track,
            rules,
            basic_rules,
        }
    }

    /// A 16×16 node for fast tests (two tracks).
    pub fn small() -> Self {
        SynthNode::new(16, 8)
    }

    /// The advanced (sign-off) rule deck shared by all node sizes.
    ///
    /// Mirrors the paper's advanced set: discrete widths {3, 5}, spacing
    /// windows conditioned on neighbour widths, E2E and area bounds.
    pub fn advanced_deck() -> RuleDeck {
        let mut deck = RuleDeck::basic("synthnode3-advanced", 3, 3, 4, 12);
        deck.discrete_widths = Some(vec![WIDTH_NARROW, WIDTH_WIDE]);
        deck.wire_min_len = 8;
        deck.max_area = Some(300);
        deck.spacing_table = Some(SpacingTable {
            width_a: WIDTH_NARROW,
            width_b: WIDTH_WIDE,
            windows: [
                // left A            left A vs right B
                [SpacingWindow::new(3, 26), SpacingWindow::new(4, 26)],
                // left B vs right A, left B vs right B
                [SpacingWindow::new(4, 26), SpacingWindow::new(5, 26)],
            ],
        });
        deck.validate().expect("advanced deck is consistent");
        deck
    }

    /// The basic (academic-style) deck used by prior-work comparisons.
    pub fn basic_deck() -> RuleDeck {
        let deck = RuleDeck::basic("synthnode3-basic", 3, 3, 4, 12);
        deck.validate().expect("basic deck is consistent");
        deck
    }

    /// Clip side length in pixels (clips are square).
    pub fn clip(&self) -> u32 {
        self.clip
    }

    /// Track pitch in pixels.
    pub fn pitch(&self) -> u32 {
        self.pitch
    }

    /// The sign-off (advanced) rule deck.
    pub fn rules(&self) -> &RuleDeck {
        &self.rules
    }

    /// The basic rule deck.
    pub fn basic_rules(&self) -> &RuleDeck {
        &self.basic_rules
    }

    /// X coordinates of vertical track centres inside the clip.
    pub fn track_centers(&self) -> Vec<u32> {
        (0..)
            .map(|i| self.first_track + i * self.pitch)
            .take_while(|&x| x + self.pitch / 2 <= self.clip)
            .collect()
    }

    /// Number of routing tracks.
    pub fn track_count(&self) -> usize {
        self.track_centers().len()
    }

    /// Left edge of a wire of width `w` centred on track `t`.
    ///
    /// Wide wires are biased half a pixel left (integer grid), matching
    /// the builder and generators.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn wire_left_edge(&self, t: usize, w: u32) -> u32 {
        let c = self.track_centers()[t];
        c - w.div_ceil(2) + 1
    }
}

impl Default for SynthNode {
    /// The reference 32×32, pitch-8 node used throughout the evaluation.
    fn default() -> Self {
        SynthNode::new(32, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_node_has_four_tracks() {
        let n = SynthNode::default();
        assert_eq!(n.track_count(), 4);
        assert_eq!(n.track_centers(), vec![4, 12, 20, 28]);
    }

    #[test]
    fn small_node_has_two_tracks() {
        let n = SynthNode::small();
        assert_eq!(n.track_count(), 2);
    }

    #[test]
    fn decks_validate() {
        assert!(SynthNode::advanced_deck().validate().is_ok());
        assert!(SynthNode::basic_deck().validate().is_ok());
        assert!(SynthNode::advanced_deck().is_advanced());
        assert!(!SynthNode::basic_deck().is_advanced());
    }

    #[test]
    fn wire_edges_fit_pitch() {
        let n = SynthNode::default();
        // Narrow wire on track 0: [3, 6); narrow on track 1: [11, 14).
        assert_eq!(n.wire_left_edge(0, WIDTH_NARROW), 3);
        assert_eq!(n.wire_left_edge(1, WIDTH_NARROW), 11);
        // Gap between adjacent narrow wires is pitch - width = 5 >= 3.
        // Wide wire on track 0: [2, 7).
        assert_eq!(n.wire_left_edge(0, WIDTH_WIDE), 2);
    }

    #[test]
    fn adjacent_narrow_wide_gap_is_four() {
        let n = SynthNode::default();
        let a_right = n.wire_left_edge(0, WIDTH_NARROW) + WIDTH_NARROW; // 6
        let b_left = n.wire_left_edge(1, WIDTH_WIDE); // 10
        assert_eq!(b_left - a_right, 4); // satisfies the (A,B) window min
    }

    #[test]
    #[should_panic(expected = "at least two tracks")]
    fn tiny_clip_rejected() {
        let _ = SynthNode::new(8, 8);
    }
}
