//! SynthNode-3: a synthetic process design kit for the PatternPaint
//! reproduction.
//!
//! The paper validates PatternPaint on the Intel 18A node with a full
//! sign-off design-rule deck, 20 proprietary starter patterns, and a
//! commercial layout generator used to create 1 000 training samples for
//! the baselines. None of those artifacts are redistributable, so this
//! crate provides a faithful synthetic stand-in:
//!
//! * [`SynthNode`] — the node definition: clip size, vertical track grid,
//!   and both rule decks (basic + advanced with discrete widths and
//!   width-dependent spacing windows, mirroring the paper's Figure 3);
//! * [`SynthNode::starter_patterns`] — 20 deterministic DR-clean starter
//!   clips on the track grid;
//! * [`rulegen`] — the rule-based ("commercial tool") generator used to
//!   produce arbitrarily many DR-clean samples for baseline training;
//! * [`foundation`] — a generic Manhattan-pattern corpus generator used to
//!   *pretrain* the diffusion substrate (the stand-in for the web-scale
//!   image corpus behind Stable Diffusion).
//!
//! # Example
//!
//! ```
//! use pp_pdk::SynthNode;
//! use pp_drc::check_layout;
//!
//! let node = SynthNode::default();
//! assert_eq!(node.starter_patterns().len(), 20);
//! for s in node.starter_patterns() {
//!     assert!(check_layout(&s, node.rules()).is_clean());
//! }
//! ```

#![forbid(unsafe_code)]

pub mod builder;
pub mod foundation;
pub mod node;
pub mod rulegen;
pub mod starters;

pub use builder::TrackBuilder;
pub use foundation::foundation_corpus;
pub use node::{SynthNode, WIDTH_NARROW, WIDTH_WIDE};
pub use rulegen::RuleBasedGenerator;

impl SynthNode {
    /// The 20 deterministic DR-clean starter patterns for this node.
    ///
    /// See [`starters::starter_patterns`].
    pub fn starter_patterns(&self) -> Vec<pp_geometry::Layout> {
        starters::starter_patterns(self)
    }
}
