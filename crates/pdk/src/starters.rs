//! The 20 DR-clean starter patterns.
//!
//! The paper's dataset consists of 20 starter patterns from the Intel 18A
//! node. Here they are rebuilt deterministically on the SynthNode track
//! grid: a spread of full tracks, split segments, mixed widths, mid
//! segments, straps/ladders and L/Z shapes — the kind of hand-picked
//! seeds an engineer would select to span the rule space.

use crate::builder::TrackBuilder;
use crate::node::{SynthNode, WIDTH_NARROW, WIDTH_WIDE};
use pp_geometry::Layout;

/// Builds the 20 starter patterns for `node`.
///
/// Patterns are deterministic. On the default node all 20 are DR-clean
/// and mutually distinct (asserted by tests and integration tests); on
/// very small nodes (fewer tracks) recipes that reference missing tracks
/// re-use lower tracks, so distinctness may drop while cleanliness is
/// preserved.
pub fn starter_patterns(node: &SynthNode) -> Vec<Layout> {
    let clip = node.clip();
    let n = node.track_count();
    // Clamp a recipe track index to the available tracks.
    let t = |i: usize| i.min(n - 1);
    // Segment split helper: two segments separated by an E2E-legal gap.
    let mid = clip / 2;
    let (s0_end, s1_start) = (mid - 2, mid + 2); // gap of 4 == min E2E
    let quarter = clip / 4;

    let mut patterns = Vec::with_capacity(20);

    // 1: all tracks narrow, full height.
    let mut b = TrackBuilder::new(node);
    for i in 0..n {
        b = b.segment(i, 0, clip, WIDTH_NARROW);
    }
    patterns.push(b.build());

    // 2: alternating tracks narrow.
    let mut b = TrackBuilder::new(node);
    for i in (0..n).step_by(2) {
        b = b.segment(i, 0, clip, WIDTH_NARROW);
    }
    patterns.push(b.build());

    // 3: wide on track 0, narrow elsewhere.
    let mut b = TrackBuilder::new(node).segment(0, 0, clip, WIDTH_WIDE);
    for i in 1..n {
        b = b.segment(i, 0, clip, WIDTH_NARROW);
    }
    patterns.push(b.build());

    // 4: isolated wide on track 1, narrow on the last track.
    patterns.push(
        TrackBuilder::new(node)
            .segment(t(1), 0, clip, WIDTH_WIDE)
            .segment(t(3), 0, clip, WIDTH_NARROW)
            .build(),
    );

    // 5: two narrow full tracks plus a split track.
    patterns.push(
        TrackBuilder::new(node)
            .segment(0, 0, clip, WIDTH_NARROW)
            .segment(t(1), 0, clip, WIDTH_NARROW)
            .segment(t(2), 0, s0_end, WIDTH_NARROW)
            .segment(t(2), s1_start, clip, WIDTH_NARROW)
            .build(),
    );

    // 6: all narrow with two split tracks at different heights.
    let mut b = TrackBuilder::new(node);
    for i in 0..n {
        b = b.segment(i, 0, clip, WIDTH_NARROW);
    }
    let l6 = {
        let mut b = TrackBuilder::new(node).segment(0, 0, clip, WIDTH_NARROW);
        b = b.segment(t(1), 0, clip * 3 / 8, WIDTH_NARROW).segment(
            t(1),
            clip * 3 / 8 + 4,
            clip,
            WIDTH_NARROW,
        );
        if n > 2 {
            b = b.segment(2, 0, clip, WIDTH_NARROW);
        }
        if n > 3 {
            b = b.segment(3, 0, clip * 5 / 8, WIDTH_NARROW).segment(
                3,
                clip * 5 / 8 + 4,
                clip,
                WIDTH_NARROW,
            );
        }
        b.build()
    };
    patterns.push(l6);

    // 7: narrow tracks with one floating mid segment.
    let mut b = TrackBuilder::new(node).segment(0, 0, clip, WIDTH_NARROW);
    b = b.segment(t(1), quarter, clip - quarter, WIDTH_NARROW);
    if n > 2 {
        b = b.segment(2, 0, clip, WIDTH_NARROW);
    }
    if n > 3 {
        b = b.segment(3, 0, clip, WIDTH_NARROW);
    }
    patterns.push(b.build());

    // 8: wide-empty-wide with a narrow in between (w0, n1, w2).
    let mut b = TrackBuilder::new(node).segment(0, 0, clip, WIDTH_WIDE);
    if n > 2 {
        b = b
            .segment(1, 0, clip, WIDTH_NARROW)
            .segment(2, 0, clip, WIDTH_WIDE);
    } else {
        b = b.segment(1, 0, clip, WIDTH_NARROW);
    }
    patterns.push(b.build());

    // 9: H pattern — two narrow tracks bridged mid-clip.
    patterns.push(
        TrackBuilder::new(node)
            .segment(0, 0, clip, WIDTH_NARROW)
            .segment(1, 0, clip, WIDTH_NARROW)
            .strap(0, WIDTH_NARROW, 1, WIDTH_NARROW, mid - 2, 3)
            .build(),
    );

    // 10: narrow track plus an H on the upper tracks.
    let mut b = TrackBuilder::new(node).segment(0, 0, clip, WIDTH_NARROW);
    if n > 3 {
        b = b
            .segment(2, 0, clip, WIDTH_NARROW)
            .segment(3, 0, clip, WIDTH_NARROW)
            .strap(2, WIDTH_NARROW, 3, WIDTH_NARROW, clip / 4, 3);
    } else {
        b = b.segment(t(1), 0, clip, WIDTH_NARROW).strap(
            0,
            WIDTH_NARROW,
            t(1),
            WIDTH_NARROW,
            clip / 4,
            3,
        );
    }
    patterns.push(b.build());

    // 11: split, wide, narrow, mid-segment across the four tracks.
    let mut b = TrackBuilder::new(node)
        .segment(0, 0, clip / 4 + 2, WIDTH_NARROW)
        .segment(0, clip / 4 + 6, clip, WIDTH_NARROW)
        .segment(t(1), 0, clip, WIDTH_WIDE);
    if n > 2 {
        b = b.segment(2, 0, clip, WIDTH_NARROW);
    }
    if n > 3 {
        b = b.segment(3, quarter, clip - quarter, WIDTH_NARROW);
    }
    patterns.push(b.build());

    // 12: ladder — two narrow tracks with two straps.
    patterns.push(
        TrackBuilder::new(node)
            .segment(0, 0, clip, WIDTH_NARROW)
            .segment(1, 0, clip, WIDTH_NARROW)
            .strap(0, WIDTH_NARROW, 1, WIDTH_NARROW, clip / 8, 3)
            .strap(0, WIDTH_NARROW, 1, WIDTH_NARROW, clip - clip / 8 - 3, 3)
            .build(),
    );

    // 13: narrow, wide, empty, wide.
    let mut b = TrackBuilder::new(node)
        .segment(0, 0, clip, WIDTH_NARROW)
        .segment(t(1), 0, clip, WIDTH_WIDE);
    if n > 3 {
        b = b.segment(3, 0, clip, WIDTH_WIDE);
    }
    patterns.push(b.build());

    // 14: narrow full plus a three-segment track (two segments when the
    // clip is too short for three legal ones).
    let seg = (clip - 8) / 3;
    let p14 = if seg >= 6 {
        TrackBuilder::new(node)
            .segment(0, 0, clip, WIDTH_NARROW)
            .segment(t(2), 0, seg, WIDTH_NARROW)
            .segment(t(2), seg + 4, 2 * seg + 4, WIDTH_NARROW)
            .segment(t(2), 2 * seg + 8, clip, WIDTH_NARROW)
            .build()
    } else {
        TrackBuilder::new(node)
            .segment(0, 0, clip, WIDTH_NARROW)
            .segment(t(2), 0, s0_end, WIDTH_NARROW)
            .segment(t(2), s1_start + 2, clip, WIDTH_NARROW)
            .build()
    };
    patterns.push(p14);

    // 15: wide mid segment framed by narrow full tracks.
    let mut b = TrackBuilder::new(node)
        .segment(0, 0, clip, WIDTH_NARROW)
        .segment(t(1), clip / 5, clip - clip / 5, WIDTH_WIDE);
    if n > 2 {
        b = b.segment(2, 0, clip, WIDTH_NARROW);
    }
    patterns.push(b.build());

    // 16: Z shape — upper-left wire, strap, lower-right wire.
    patterns.push(
        TrackBuilder::new(node)
            .segment(0, 0, mid + 4, WIDTH_NARROW)
            .segment(1, mid + 1, clip, WIDTH_NARROW)
            .strap(0, WIDTH_NARROW, 1, WIDTH_NARROW, mid + 1, 3)
            .build(),
    );

    // 17: two centre tracks narrow.
    patterns.push(
        TrackBuilder::new(node)
            .segment(t(1), 0, clip, WIDTH_NARROW)
            .segment(t(2), 0, clip, WIDTH_NARROW)
            .build(),
    );

    // 18: single wide wire.
    patterns.push(
        TrackBuilder::new(node)
            .segment(t(2), 0, clip, WIDTH_WIDE)
            .build(),
    );

    // 19: split narrow, narrow, empty, wide.
    let mut b = TrackBuilder::new(node)
        .segment(0, 0, s0_end, WIDTH_NARROW)
        .segment(0, s1_start, clip, WIDTH_NARROW)
        .segment(t(1), 0, clip, WIDTH_NARROW);
    if n > 3 {
        b = b.segment(3, 0, clip, WIDTH_WIDE);
    }
    patterns.push(b.build());

    // 20: strap plus split on the far track.
    let mut b = TrackBuilder::new(node);
    for i in 0..n.min(3) {
        b = b.segment(i, 0, clip, WIDTH_NARROW);
    }
    if n >= 3 {
        b = b.strap(1, WIDTH_NARROW, 2, WIDTH_NARROW, clip / 3, 3);
    } else {
        b = b.strap(0, WIDTH_NARROW, 1, WIDTH_NARROW, clip / 3, 3);
    }
    if n > 3 {
        b = b.segment(3, 0, clip / 2 - 2, WIDTH_NARROW).segment(
            3,
            clip / 2 + 2,
            clip,
            WIDTH_NARROW,
        );
    }
    patterns.push(b.build());

    patterns
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_drc::check_layout;
    use pp_geometry::Signature;
    use std::collections::HashSet;

    #[test]
    fn default_node_starters_are_clean() {
        let node = SynthNode::default();
        for (i, p) in starter_patterns(&node).iter().enumerate() {
            let report = check_layout(p, node.rules());
            assert!(
                report.is_clean(),
                "starter {} is dirty:\n{}\n{}",
                i + 1,
                report,
                pp_geometry::render::to_ascii(p),
            );
        }
    }

    #[test]
    fn default_node_starters_are_unique() {
        let node = SynthNode::default();
        let sigs: HashSet<Signature> = starter_patterns(&node)
            .iter()
            .map(Signature::of_layout)
            .collect();
        assert_eq!(sigs.len(), 20, "starters must be mutually distinct");
    }

    #[test]
    fn exactly_twenty_starters() {
        assert_eq!(starter_patterns(&SynthNode::default()).len(), 20);
    }

    #[test]
    fn small_node_starters_are_clean() {
        let node = SynthNode::small();
        for (i, p) in starter_patterns(&node).iter().enumerate() {
            let report = check_layout(p, node.rules());
            assert!(
                report.is_clean(),
                "small starter {} dirty:\n{}\n{}",
                i + 1,
                report,
                pp_geometry::render::to_ascii(p),
            );
        }
    }

    #[test]
    fn starters_have_varied_density() {
        let node = SynthNode::default();
        let densities: Vec<f64> = starter_patterns(&node)
            .iter()
            .map(Layout::density)
            .collect();
        let min = densities.iter().cloned().fold(f64::MAX, f64::min);
        let max = densities.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 2.0 * min, "starters should span a density range");
    }
}
