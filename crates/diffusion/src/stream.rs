//! Streaming delivery of batched inpainting results.
//!
//! [`crate::DiffusionModel::sample_inpaint_stream`] runs the same
//! chunked, micro-batched DDIM workers as the blocking batch API, but
//! delivers every finished micro-batch through a bounded channel as soon
//! as it completes — in job order — so callers can consume, meter, or
//! abort a round without waiting for the whole batch.

use pp_geometry::GrayImage;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A cooperative cancellation flag shared between a stream's consumer
/// and its sampling workers.
///
/// Workers check the token between micro-batches: after
/// [`CancelToken::cancel`] no *new* micro-batch starts, while batches
/// already computed still reach the consumer (partial results).
/// Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// One finished micro-batch: `samples[i]` answers job `start + i`.
#[derive(Debug)]
pub struct MicroBatch {
    /// Global index of the first job in this micro-batch.
    pub start: usize,
    /// The sampled images, in job order.
    pub samples: Vec<GrayImage>,
}

/// An in-order stream of [`MicroBatch`]es from the sampling workers.
///
/// Worker `w` owns the contiguous job chunk `[w·c, (w+1)·c)` and sends
/// its micro-batches through its own bounded channel; the iterator
/// drains worker 0's channel, then worker 1's, and so on, so batches
/// arrive sorted by `start`. Dropping the stream early disconnects the
/// channels, which stops the workers at their next send.
///
/// A panic on a worker thread is resurfaced on the consumer thread
/// when its channel disconnects (matching the scoped-thread behaviour
/// the blocking path had before streaming) — a dead worker never
/// silently truncates the stream.
#[derive(Debug)]
pub struct InpaintStream {
    rxs: Vec<Receiver<MicroBatch>>,
    current: usize,
    handles: Vec<Option<JoinHandle<()>>>,
    total: usize,
}

impl InpaintStream {
    pub(crate) fn new(
        rxs: Vec<Receiver<MicroBatch>>,
        handles: Vec<JoinHandle<()>>,
        total: usize,
    ) -> Self {
        InpaintStream {
            rxs,
            current: 0,
            handles: handles.into_iter().map(Some).collect(),
            total,
        }
    }

    /// Number of jobs submitted (an upper bound on samples delivered;
    /// cancellation may cut the stream short).
    pub fn total_jobs(&self) -> usize {
        self.total
    }

    /// Joins one worker, resurfacing its panic on this thread.
    fn reap(handle: Option<JoinHandle<()>>) {
        if let Some(h) = handle {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Iterator for InpaintStream {
    type Item = MicroBatch;

    fn next(&mut self) -> Option<MicroBatch> {
        while self.current < self.rxs.len() {
            match self.rxs[self.current].recv() {
                Ok(mb) => return Some(mb),
                // This worker is done (sender dropped): join it —
                // propagating a panic if it died — then move on.
                Err(_) => {
                    Self::reap(self.handles[self.current].take());
                    self.current += 1;
                }
            }
        }
        None
    }
}

impl Drop for InpaintStream {
    fn drop(&mut self) {
        // Disconnect first so workers blocked on a full channel exit,
        // then reap them. Worker panics are swallowed here: an early
        // drop is an intentional abandon (and may itself be an unwind).
        self.rxs.clear();
        for h in self.handles.drain(..).flatten() {
            let _ = h.join();
        }
    }
}
