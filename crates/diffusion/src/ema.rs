//! Exponential-moving-average shadow weights.
//!
//! Training keeps two weight sets: the *live* weights the optimiser
//! updates, and a shadow copy updated after every step as
//! `shadow = decay · shadow + (1 − decay) · live`. The shadow tracks a
//! smoothed trajectory through weight space; sampling from it is the
//! standard variance-reduction trick diffusion training relies on
//! (every serious diffusion codebase exports EMA weights, not the last
//! optimiser step).
//!
//! [`EmaShadow`] holds only the smoothed value buffers, matched to the
//! model's parameters by [`pp_nn::Layer::visit_params`] visitation
//! order — the same convention the optimiser and the PPDM weight codec
//! use, so the three never disagree about which tensor is which. The
//! buffers round-trip through [`EmaShadow::tensors`] /
//! [`EmaShadow::from_tensors`] for checkpointing, exactly (raw f32
//! bits), so a resumed run's shadow continues bit-identically.

use crate::error::ModelError;
use crate::model::DiffusionModel;
use pp_nn::{Layer, Param};

/// An EMA shadow of a [`DiffusionModel`]'s weights.
#[derive(Debug, Clone, PartialEq)]
pub struct EmaShadow {
    decay: f32,
    shadow: Vec<Vec<f32>>,
}

impl EmaShadow {
    /// Initialises the shadow as a copy of the model's current weights
    /// (the conventional EMA start: the first update already blends).
    pub fn new(model: &mut DiffusionModel, decay: f32) -> EmaShadow {
        let mut shadow = Vec::new();
        model
            .unet
            .visit_params(&mut |p: &mut Param| shadow.push(p.value.clone()));
        EmaShadow { decay, shadow }
    }

    /// The decay factor `d` in `shadow = d · shadow + (1 − d) · live`.
    pub fn decay(&self) -> f32 {
        self.decay
    }

    /// Folds the model's current weights into the shadow (call once per
    /// optimiser step).
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when the model's parameter shapes no
    /// longer match the shadow (a different architecture was passed).
    pub fn update(&mut self, model: &mut DiffusionModel) -> Result<(), ModelError> {
        let d = self.decay;
        let shadow = &mut self.shadow;
        let mut idx = 0usize;
        let mut mismatch = None;
        model.unet.visit_params(&mut |p: &mut Param| {
            match shadow.get_mut(idx) {
                Some(s) if s.len() == p.value.len() => {
                    for (s, &v) in s.iter_mut().zip(&p.value) {
                        *s = d * *s + (1.0 - d) * v;
                    }
                }
                other => {
                    mismatch.get_or_insert((other.map_or(0, |s| s.len()), p.value.len()));
                }
            }
            idx += 1;
        });
        check_shapes(mismatch, idx, self.shadow.len())
    }

    /// Copies the shadow weights into the model (the EMA export path).
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when the shapes do not match; the model is
    /// only partially written in that case, so treat it as consumed.
    pub fn apply_to(&self, model: &mut DiffusionModel) -> Result<(), ModelError> {
        let shadow = &self.shadow;
        let mut idx = 0usize;
        let mut mismatch = None;
        model.unet.visit_params(&mut |p: &mut Param| {
            match shadow.get(idx) {
                Some(s) if s.len() == p.value.len() => p.value.copy_from_slice(s),
                other => {
                    mismatch.get_or_insert((other.map_or(0, |s| s.len()), p.value.len()));
                }
            }
            idx += 1;
        });
        check_shapes(mismatch, idx, self.shadow.len())
    }

    /// The shadow buffers, in parameter visitation order (for
    /// checkpoint serialisation).
    pub fn tensors(&self) -> &[Vec<f32>] {
        &self.shadow
    }

    /// Rebuilds a shadow from checkpointed buffers, validating the
    /// shapes against `model`.
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when the buffer count or any buffer length
    /// disagrees with the model's parameters.
    pub fn from_tensors(
        model: &mut DiffusionModel,
        decay: f32,
        tensors: Vec<Vec<f32>>,
    ) -> Result<EmaShadow, ModelError> {
        let mut idx = 0usize;
        let mut mismatch = None;
        model.unet.visit_params(&mut |p: &mut Param| {
            match tensors.get(idx) {
                Some(s) if s.len() == p.value.len() => {}
                other => {
                    mismatch.get_or_insert((other.map_or(0, |s| s.len()), p.value.len()));
                }
            }
            idx += 1;
        });
        check_shapes(mismatch, idx, tensors.len())?;
        Ok(EmaShadow {
            decay,
            shadow: tensors,
        })
    }
}

fn check_shapes(
    mismatch: Option<(usize, usize)>,
    visited: usize,
    held: usize,
) -> Result<(), ModelError> {
    if let Some((got, want)) = mismatch {
        return Err(ModelError::Shape {
            what: "EMA shadow tensor vs model parameter",
            expected: want.min(u32::MAX as usize) as u32,
            actual: got.min(u32::MAX as usize) as u32,
        });
    }
    if visited != held {
        return Err(ModelError::Shape {
            what: "EMA shadow tensor count vs model parameters",
            expected: visited.min(u32::MAX as usize) as u32,
            actual: held.min(u32::MAX as usize) as u32,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DiffusionConfig, DiffusionModel};
    use pp_geometry::GrayImage;

    fn tiny() -> DiffusionModel {
        DiffusionModel::new(DiffusionConfig::tiny(16), 5)
    }

    #[test]
    fn shadow_tracks_training_and_diverges_from_live() {
        let mut model = tiny();
        let mut ema = EmaShadow::new(&mut model, 0.9);
        let corpus = vec![GrayImage::filled(16, 16, -1.0); 2];
        model.train(&corpus, 4, 2, 2e-3, 1).unwrap();
        ema.update(&mut model).unwrap();
        // After one blended update the shadow sits between the initial
        // weights and the live ones — it must differ from live.
        let mut ema_model = model.clone();
        ema.apply_to(&mut ema_model).unwrap();
        let img = GrayImage::filled(16, 16, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        assert_ne!(
            model.sample_inpaint(&img, &mask, 3).unwrap(),
            ema_model.sample_inpaint(&img, &mask, 3).unwrap(),
            "EMA weights must diverge from live weights"
        );
    }

    #[test]
    fn tensors_roundtrip_bit_identically() {
        let mut model = tiny();
        let mut ema = EmaShadow::new(&mut model, 0.95);
        let corpus = vec![GrayImage::filled(16, 16, 1.0); 2];
        model.train(&corpus, 2, 2, 2e-3, 2).unwrap();
        ema.update(&mut model).unwrap();
        let back =
            EmaShadow::from_tensors(&mut model, ema.decay(), ema.tensors().to_vec()).unwrap();
        assert_eq!(ema, back);
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let mut model = tiny();
        let ema = EmaShadow::new(&mut model, 0.9);
        // A wider U-Net: same image size, different parameter shapes.
        let mut wide = DiffusionConfig::tiny(16);
        wide.base_ch *= 2;
        let mut other = DiffusionModel::new(wide, 5);
        assert!(matches!(
            ema.apply_to(&mut other),
            Err(ModelError::Shape { .. })
        ));
        let mut truncated = ema.tensors().to_vec();
        truncated.pop();
        assert!(matches!(
            EmaShadow::from_tensors(&mut model, 0.9, truncated),
            Err(ModelError::Shape { .. })
        ));
    }
}
