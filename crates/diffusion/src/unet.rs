//! The inpainting U-Net denoiser.
//!
//! A compact diffusion U-Net with two downsampling stages, residual
//! blocks, group normalisation, SiLU activations and sinusoidal time
//! embeddings. The input has three channels — noisy image `x_t`, binary
//! mask, and the masked clean image — making it an *inpainting* model in
//! the same sense as `stablediffusion-inpaint` (whose latent-space input
//! is likewise image+mask+masked-image).
//!
//! Backward passes are wired by hand in exact reverse topological order;
//! a finite-difference test validates the whole graph.

use pp_nn::{
    AvgPool2, Conv2d, GroupNorm, Layer, Linear, Param, Silu, Tensor, Upsample2, Workspace,
};
use serde::{Deserialize, Serialize};

/// Architecture hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UNetConfig {
    /// Image side (must be divisible by 4).
    pub image: u32,
    /// Base channel count (doubled at each downsampling).
    pub base_ch: usize,
    /// Time-embedding dimension.
    pub time_dim: usize,
}

impl UNetConfig {
    /// The configuration used by the main experiments (32×32 clips).
    pub fn standard(image: u32) -> Self {
        UNetConfig {
            image,
            base_ch: 16,
            time_dim: 32,
        }
    }

    /// A minimal configuration for fast tests.
    pub fn tiny(image: u32) -> Self {
        UNetConfig {
            image,
            base_ch: 2,
            time_dim: 4,
        }
    }
}

fn groups_for(c: usize) -> usize {
    if c.is_multiple_of(4) && c >= 8 {
        4
    } else if c.is_multiple_of(2) {
        2
    } else {
        1
    }
}

/// One residual block with time-bias injection.
#[derive(Debug, Clone)]
struct ResBlock {
    gn1: GroupNorm,
    silu1: Silu,
    conv1: Conv2d,
    time_proj: Linear,
    gn2: GroupNorm,
    silu2: Silu,
    conv2: Conv2d,
    skip: Option<Conv2d>,
    out_c: usize,
}

impl ResBlock {
    fn new(cin: usize, cout: usize, time_dim: usize, seed: u64) -> Self {
        ResBlock {
            gn1: GroupNorm::new(cin, groups_for(cin)),
            silu1: Silu::new(),
            conv1: Conv2d::new(cin, cout, 3, seed),
            time_proj: Linear::new(time_dim, cout, seed ^ 0xaaaa),
            gn2: GroupNorm::new(cout, groups_for(cout)),
            silu2: Silu::new(),
            conv2: Conv2d::new(cout, cout, 3, seed ^ 0x5555),
            skip: (cin != cout).then(|| Conv2d::new(cin, cout, 1, seed ^ 0x1234)),
            out_c: cout,
        }
    }

    fn forward(&mut self, x: Tensor, emb: &Tensor) -> Tensor {
        let skip_out = match &mut self.skip {
            Some(c) => c.forward(x.clone()),
            None => x.clone(),
        };
        let mut h = self.conv1.forward(self.silu1.forward(self.gn1.forward(x)));
        // Per-channel time bias, broadcast over the spatial extent.
        let tb = self.time_proj.forward(emb.clone());
        for b in 0..h.n() {
            for c in 0..self.out_c {
                let bias = tb.get(b, c, 0, 0);
                for v in h.plane_mut(b, c) {
                    *v += bias;
                }
            }
        }
        let mut out = self.conv2.forward(self.silu2.forward(self.gn2.forward(h)));
        out.add_assign(&skip_out);
        out
    }

    /// Returns (∂loss/∂x, ∂loss/∂emb).
    fn backward(&mut self, grad: Tensor) -> (Tensor, Tensor) {
        let g_skip = grad.clone();
        let g = self
            .gn2
            .backward(self.silu2.backward(self.conv2.backward(grad)));
        // Time-bias gradient: sum over spatial positions per channel.
        let n = g.n();
        let mut gtb = Tensor::zeros([n, self.out_c, 1, 1]);
        for b in 0..n {
            for c in 0..self.out_c {
                gtb.set(b, c, 0, 0, g.plane(b, c).iter().sum::<f32>());
            }
        }
        let g_emb = self.time_proj.backward(gtb);
        let mut gx = self
            .gn1
            .backward(self.silu1.backward(self.conv1.backward(g)));
        let gx_skip = match &mut self.skip {
            Some(c) => c.backward(g_skip),
            None => g_skip,
        };
        gx.add_assign(&gx_skip);
        (gx, g_emb)
    }

    /// Inference-only forward: borrows inputs, caches nothing, and
    /// recycles every intermediate through `ws`.
    fn forward_infer(&mut self, x: &Tensor, emb: &Tensor, ws: &mut Workspace) -> Tensor {
        let a = self.gn1.forward_infer(x, ws);
        let b = self.silu1.forward_infer(&a, ws);
        ws.give(a.into_vec());
        let mut h = self.conv1.forward_infer(&b, ws);
        ws.give(b.into_vec());
        let tb = self.time_proj.forward_infer(emb, ws);
        for b in 0..h.n() {
            for c in 0..self.out_c {
                let bias = tb.get(b, c, 0, 0);
                for v in h.plane_mut(b, c) {
                    *v += bias;
                }
            }
        }
        ws.give(tb.into_vec());
        let a = self.gn2.forward_infer(&h, ws);
        ws.give(h.into_vec());
        let b = self.silu2.forward_infer(&a, ws);
        ws.give(a.into_vec());
        let mut out = self.conv2.forward_infer(&b, ws);
        ws.give(b.into_vec());
        match &mut self.skip {
            Some(c) => {
                let s = c.forward_infer(x, ws);
                out.add_assign(&s);
                ws.give(s.into_vec());
            }
            None => out.add_assign(x),
        }
        out
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gn1.visit_params(f);
        self.conv1.visit_params(f);
        self.time_proj.visit_params(f);
        self.gn2.visit_params(f);
        self.conv2.visit_params(f);
        if let Some(s) = &mut self.skip {
            s.visit_params(f);
        }
    }
}

/// The full denoiser network.
///
/// Input: `[n, 3, H, W]` (noisy image, mask, masked image); output:
/// `[n, 1, H, W]`, the predicted clean image `x̂0`.
#[derive(Debug, Clone)]
pub struct UNet {
    cfg: UNetConfig,
    t_max: usize,
    conv_in: Conv2d,
    emb_lin: Linear,
    emb_silu: Silu,
    rb1: ResBlock,
    down1: AvgPool2,
    rb2: ResBlock,
    down2: AvgPool2,
    rb3: ResBlock,
    mid: ResBlock,
    up2: Upsample2,
    rb4: ResBlock,
    up1: Upsample2,
    rb5: ResBlock,
    gn_out: GroupNorm,
    silu_out: Silu,
    conv_out: Conv2d,
    /// Buffer pool for the inference path (empty on clone; warms up on
    /// the first [`UNet::forward_infer`] call).
    ws: Workspace,
}

impl UNet {
    /// Builds a U-Net for diffusion horizon `t_max`.
    ///
    /// # Panics
    ///
    /// Panics unless the image side is divisible by 4.
    pub fn new(cfg: UNetConfig, t_max: usize, seed: u64) -> Self {
        assert!(
            cfg.image.is_multiple_of(4),
            "image side must be divisible by 4"
        );
        let c = cfg.base_ch;
        let td = cfg.time_dim;
        UNet {
            cfg,
            t_max,
            conv_in: Conv2d::new(3, c, 3, seed),
            emb_lin: Linear::new(td, td, seed ^ 1),
            emb_silu: Silu::new(),
            rb1: ResBlock::new(c, c, td, seed ^ 2),
            down1: AvgPool2::new(),
            rb2: ResBlock::new(c, 2 * c, td, seed ^ 3),
            down2: AvgPool2::new(),
            rb3: ResBlock::new(2 * c, 4 * c, td, seed ^ 4),
            mid: ResBlock::new(4 * c, 4 * c, td, seed ^ 5),
            up2: Upsample2::new(),
            rb4: ResBlock::new(6 * c, 2 * c, td, seed ^ 6),
            up1: Upsample2::new(),
            rb5: ResBlock::new(3 * c, c, td, seed ^ 7),
            gn_out: GroupNorm::new(c, groups_for(c)),
            silu_out: Silu::new(),
            conv_out: Conv2d::new(c, 1, 3, seed ^ 8),
            ws: Workspace::new(),
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> UNetConfig {
        self.cfg
    }

    /// Sinusoidal embedding of a batch of timesteps.
    fn embed(&self, ts: &[usize]) -> Tensor {
        let td = self.cfg.time_dim;
        let mut out = Tensor::zeros([ts.len(), td, 1, 1]);
        self.embed_into(ts, &mut out);
        out
    }

    /// Writes the sinusoidal embedding into a preallocated `[n, td]`
    /// tensor. Indices `0..2·(td/2)` are overwritten; with an odd
    /// `time_dim` the last element is left as-is, so callers must pass
    /// a zeroed tensor.
    fn embed_into(&self, ts: &[usize], out: &mut Tensor) {
        let td = self.cfg.time_dim;
        let half = td / 2;
        for (b, &t) in ts.iter().enumerate() {
            // Scale t into [0, 1000) like standard DDPM embeddings.
            let tv = t as f32 / self.t_max as f32 * 1000.0;
            for i in 0..half {
                let freq = 10000f32.powf(i as f32 / half as f32);
                out.set(b, i, 0, 0, (tv / freq).sin());
                out.set(b, half + i, 0, 0, (tv / freq).cos());
            }
        }
    }

    /// Predicts `x̂0` for a batch.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, 3, image, image]` or `ts.len() != n`.
    pub fn forward(&mut self, x: Tensor, ts: &[usize]) -> Tensor {
        assert_eq!(x.c(), 3, "expected 3 input channels");
        assert_eq!(x.n(), ts.len(), "batch size mismatch");
        let emb = self.emb_silu.forward(self.emb_lin.forward(self.embed(ts)));
        let h0 = self.conv_in.forward(x);
        let h1 = self.rb1.forward(h0, &emb);
        let h2 = self.rb2.forward(self.down1.forward(h1.clone()), &emb);
        let h3 = self.rb3.forward(self.down2.forward(h2.clone()), &emb);
        let hm = self.mid.forward(h3, &emb);
        let c2 = self.up2.forward(hm).concat_channels(&h2);
        let h4 = self.rb4.forward(c2, &emb);
        let c1 = self.up1.forward(h4).concat_channels(&h1);
        let h5 = self.rb5.forward(c1, &emb);
        self.conv_out
            .forward(self.silu_out.forward(self.gn_out.forward(h5)))
    }

    /// Inference-only prediction of `x̂0` for a batch.
    ///
    /// Bit-identical to [`UNet::forward`] (same kernels, same per-sample
    /// arithmetic) but borrows the input, caches nothing for backward,
    /// and recycles every intermediate through an internal buffer pool —
    /// after the first call a DDIM loop performs no heap allocation
    /// inside the network. Hand the returned tensor back via
    /// [`UNet::recycle`] once consumed to keep the pool closed.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `[n, 3, image, image]` or `ts.len() != n`.
    pub fn forward_infer(&mut self, x: &Tensor, ts: &[usize]) -> Tensor {
        assert_eq!(x.c(), 3, "expected 3 input channels");
        assert_eq!(x.n(), ts.len(), "batch size mismatch");
        let mut ws = std::mem::take(&mut self.ws);
        let td = self.cfg.time_dim;
        // Zeroed, not raw: embed_into leaves index td-1 untouched when
        // time_dim is odd, and forward() reads 0.0 there via
        // Tensor::zeros — stale pool contents would diverge from it.
        let mut emb_raw = Tensor::from_vec([ts.len(), td, 1, 1], ws.take_zeroed(ts.len() * td));
        self.embed_into(ts, &mut emb_raw);
        let emb_lin = self.emb_lin.forward_infer(&emb_raw, &mut ws);
        let emb = self.emb_silu.forward_infer(&emb_lin, &mut ws);
        ws.give(emb_raw.into_vec());
        ws.give(emb_lin.into_vec());

        let h0 = self.conv_in.forward_infer(x, &mut ws);
        let h1 = self.rb1.forward_infer(&h0, &emb, &mut ws);
        ws.give(h0.into_vec());
        let d1 = self.down1.forward_infer(&h1, &mut ws);
        let h2 = self.rb2.forward_infer(&d1, &emb, &mut ws);
        ws.give(d1.into_vec());
        let d2 = self.down2.forward_infer(&h2, &mut ws);
        let h3 = self.rb3.forward_infer(&d2, &emb, &mut ws);
        ws.give(d2.into_vec());
        let hm = self.mid.forward_infer(&h3, &emb, &mut ws);
        ws.give(h3.into_vec());

        let u2 = self.up2.forward_infer(&hm, &mut ws);
        ws.give(hm.into_vec());
        let [n, cu, h, w] = u2.shape();
        let mut c2 = Tensor::from_vec([n, cu + h2.c(), h, w], ws.take(n * (cu + h2.c()) * h * w));
        u2.concat_channels_into(&h2, &mut c2);
        ws.give(u2.into_vec());
        ws.give(h2.into_vec());
        let h4 = self.rb4.forward_infer(&c2, &emb, &mut ws);
        ws.give(c2.into_vec());

        let u1 = self.up1.forward_infer(&h4, &mut ws);
        ws.give(h4.into_vec());
        let [n, cu, h, w] = u1.shape();
        let mut c1 = Tensor::from_vec([n, cu + h1.c(), h, w], ws.take(n * (cu + h1.c()) * h * w));
        u1.concat_channels_into(&h1, &mut c1);
        ws.give(u1.into_vec());
        ws.give(h1.into_vec());
        let h5 = self.rb5.forward_infer(&c1, &emb, &mut ws);
        ws.give(c1.into_vec());
        ws.give(emb.into_vec());

        let g = self.gn_out.forward_infer(&h5, &mut ws);
        ws.give(h5.into_vec());
        let s = self.silu_out.forward_infer(&g, &mut ws);
        ws.give(g.into_vec());
        let y = self.conv_out.forward_infer(&s, &mut ws);
        ws.give(s.into_vec());
        self.ws = ws;
        y
    }

    /// Returns a tensor produced by [`UNet::forward_infer`] to the
    /// internal pool so the next step reuses its allocation.
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.give(t.into_vec());
    }

    /// Backpropagates ∂loss/∂output, accumulating parameter gradients.
    ///
    /// Must follow a matching [`UNet::forward`]. Returns ∂loss/∂input.
    pub fn backward(&mut self, grad: Tensor) -> Tensor {
        let c = self.cfg.base_ch;
        let g = self
            .gn_out
            .backward(self.silu_out.backward(self.conv_out.backward(grad)));
        let (g_c1, ge5) = self.rb5.backward(g);
        let (g_u1, g_h1a) = g_c1.split_channels(2 * c);
        let (g_c2, ge4) = self.rb4.backward(self.up1.backward(g_u1));
        let (g_u2, g_h2a) = g_c2.split_channels(4 * c);
        let (g_h3, gem) = self.mid.backward(self.up2.backward(g_u2));
        let (g_d2, ge3) = self.rb3.backward(g_h3);
        let mut g_h2 = self.down2.backward(g_d2);
        g_h2.add_assign(&g_h2a);
        let (g_d1, ge2) = self.rb2.backward(g_h2);
        let mut g_h1 = self.down1.backward(g_d1);
        g_h1.add_assign(&g_h1a);
        let (g_h0, ge1) = self.rb1.backward(g_h1);
        let gx = self.conv_in.backward(g_h0);
        // Time-embedding gradient: sum of the per-block contributions.
        let mut gemb = ge1;
        for ge in [ge2, ge3, gem, ge4, ge5] {
            gemb.add_assign(&ge);
        }
        let _ = self.emb_lin.backward(self.emb_silu.backward(gemb));
        gx
    }
}

impl Layer for UNet {
    fn forward(&mut self, x: Tensor) -> Tensor {
        // Layer-trait entry point defaults to t = 0 for all samples (used
        // only by generic utilities; training uses the inherent method).
        let ts = vec![0usize; x.n()];
        UNet::forward(self, x, &ts)
    }

    fn backward(&mut self, grad: Tensor) -> Tensor {
        UNet::backward(self, grad)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv_in.visit_params(f);
        self.emb_lin.visit_params(f);
        self.rb1.visit_params(f);
        self.rb2.visit_params(f);
        self.rb3.visit_params(f);
        self.mid.visit_params(f);
        self.rb4.visit_params(f);
        self.rb5.visit_params(f);
        self.gn_out.visit_params(f);
        self.conv_out.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_input(n: usize, image: u32, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = n * 3 * (image * image) as usize;
        Tensor::from_vec(
            [n, 3, image as usize, image as usize],
            (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        )
    }

    #[test]
    fn forward_shapes() {
        let mut net = UNet::new(UNetConfig::tiny(8), 10, 0);
        let y = net.forward(random_input(2, 8, 1), &[3, 7]);
        assert_eq!(y.shape(), [2, 1, 8, 8]);
    }

    #[test]
    fn time_conditioning_changes_output() {
        let mut net = UNet::new(UNetConfig::tiny(8), 10, 0);
        let x = random_input(1, 8, 2);
        let a = net.forward(x.clone(), &[0]);
        let b = net.forward(x, &[9]);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn infer_matches_forward_bitwise() {
        let mut net = UNet::new(UNetConfig::tiny(8), 10, 11);
        let x = random_input(2, 8, 12);
        let ts = [3usize, 8];
        let trained = net.forward(x.clone(), &ts);
        let inferred = net.forward_infer(&x, &ts);
        assert_eq!(trained.data(), inferred.data());
        // A second inference pass reuses pooled buffers and must still
        // be bit-identical.
        net.recycle(inferred);
        let again = net.forward_infer(&x, &ts);
        assert_eq!(trained.data(), again.data());
    }

    /// Each sample of a batched inference pass computes exactly what it
    /// computes alone — the invariant batched DDIM sampling relies on.
    #[test]
    fn infer_batch_rows_match_solo() {
        let mut net = UNet::new(UNetConfig::tiny(8), 10, 13);
        let xb = random_input(3, 8, 14);
        let ts = [1usize, 5, 9];
        let yb = net.forward_infer(&xb, &ts);
        for b in 0..3 {
            let mut xs = Tensor::zeros([1, 3, 8, 8]);
            for c in 0..3 {
                xs.plane_mut(0, c).copy_from_slice(xb.plane(b, c));
            }
            let ys = net.forward_infer(&xs, &ts[b..b + 1]);
            assert_eq!(ys.plane(0, 0), yb.plane(b, 0), "sample {b} diverged");
            net.recycle(ys);
        }
    }

    #[test]
    fn clone_matches_original() {
        let mut net = UNet::new(UNetConfig::tiny(8), 10, 3);
        let mut copy = net.clone();
        let x = random_input(1, 8, 4);
        let a = net.forward(x.clone(), &[5]);
        let b = copy.forward(x, &[5]);
        assert_eq!(a.data(), b.data());
    }

    /// Full-graph finite-difference check of ∂loss/∂input.
    #[test]
    fn gradcheck_full_network() {
        let mut net = UNet::new(UNetConfig::tiny(8), 10, 5);
        let x = random_input(1, 8, 6);
        let ts = [4usize];
        net.zero_grad();
        let y = net.forward(x.clone(), &ts);
        let gx = net.backward(y); // loss = 0.5 Σ y²
        let eps = 1e-2f32;
        let loss = |net: &mut UNet, x: Tensor| {
            let y = net.forward(x, &ts);
            0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
        };
        // Check a scattering of input positions.
        for &i in &[0usize, 17, 63, 100, 150] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut net, xp) - loss(&mut net, xm)) / (2.0 * eps);
            let ana = gx.data()[i];
            assert!(
                (num - ana).abs() <= 0.05 * (1.0 + num.abs().max(ana.abs())),
                "input grad mismatch at {i}: numeric {num}, analytic {ana}"
            );
        }
    }

    /// Finite-difference check of a few parameter gradients.
    #[test]
    fn gradcheck_parameters() {
        let mut net = UNet::new(UNetConfig::tiny(8), 10, 7);
        let x = random_input(1, 8, 8);
        let ts = [2usize];
        net.zero_grad();
        let y = net.forward(x.clone(), &ts);
        let _ = net.backward(y);
        let mut grads: Vec<Vec<f32>> = Vec::new();
        net.visit_params(&mut |p| grads.push(p.grad.clone()));
        let nparams = grads.len();
        let eps = 1e-2f32;
        // Check the first entry of a few parameter tensors.
        for pi in (0..nparams).step_by(nparams / 6 + 1) {
            let bump = |net: &mut UNet, delta: f32| {
                let mut k = 0;
                net.visit_params(&mut |p| {
                    if k == pi {
                        p.value[0] += delta;
                    }
                    k += 1;
                });
            };
            let loss = |net: &mut UNet| {
                let y = net.forward(x.clone(), &ts);
                0.5 * y.data().iter().map(|v| v * v).sum::<f32>()
            };
            bump(&mut net, eps);
            let lp = loss(&mut net);
            bump(&mut net, -2.0 * eps);
            let lm = loss(&mut net);
            bump(&mut net, eps);
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads[pi][0];
            assert!(
                (num - ana).abs() <= 0.05 * (1.0 + num.abs().max(ana.abs())),
                "param {pi} grad mismatch: numeric {num}, analytic {ana}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn rejects_odd_image() {
        let _ = UNet::new(
            UNetConfig {
                image: 10,
                base_ch: 2,
                time_dim: 4,
            },
            10,
            0,
        );
    }
}
