//! Pixel-space diffusion and inpainting over layout rasters.
//!
//! This crate is the stand-in for the pretrained Stable Diffusion
//! inpainting checkpoints of the PatternPaint paper (see DESIGN.md for the
//! substitution argument). It implements, from scratch on `pp-nn`:
//!
//! * [`NoiseSchedule`] — DDPM forward process `q(x_t | x_0)` with linear
//!   or cosine β schedules;
//! * [`UNet`] — a small inpainting U-Net conditioned on the noisy image,
//!   the mask and the masked image (the 3-channel analogue of SD-inpaint's
//!   9-channel input), with sinusoidal time embeddings;
//! * [`DiffusionModel`] — training (pretraining on a foundation corpus),
//!   DreamBooth-style few-shot finetuning with prior preservation
//!   (paper Eq. 7), and DDIM sampling with RePaint-style known-region
//!   conditioning (paper Eq. 8).
//!
//! The denoiser is x0-parameterised (it predicts the clean image rather
//! than the noise), which is markedly more stable at the few DDIM steps
//! used on near-binary layout images; `pp-bench --bench ablations`
//! quantifies that choice.
//!
//! # Example
//!
//! ```
//! use pp_diffusion::{DiffusionConfig, DiffusionModel};
//! use pp_geometry::GrayImage;
//!
//! let config = DiffusionConfig::tiny(16);
//! let mut model = DiffusionModel::new(config, 0);
//! let corpus = vec![GrayImage::filled(16, 16, -1.0); 4];
//! model.train(&corpus, 2, 2, 1e-3, 0).unwrap(); // 2 steps, batch 2
//! ```
//!
//! Sampling is available blocking ([`DiffusionModel::sample_inpaint_batch`])
//! or streaming ([`DiffusionModel::sample_inpaint_stream`], micro-batches
//! delivered in job order through bounded channels, cancellable via
//! [`CancelToken`]); both share one worker implementation and are
//! bit-identical per job.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod ema;
pub mod error;
pub mod model;
pub mod schedule;
pub mod slots;
pub mod stream;
pub mod unet;

pub use checkpoint::{
    checkpoint_checksum, load_checkpoint, load_checkpoint_with, read_config, save_checkpoint,
    save_checkpoint_with, write_config, CheckpointLineage, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use ema::EmaShadow;
pub use error::ModelError;
pub use model::{DiffusionConfig, DiffusionModel, InpaintWorker, Parameterization, TrainReport};
pub use schedule::{BetaSchedule, NoiseSchedule};
pub use slots::{SlotFeed, SlotJob};
pub use stream::{CancelToken, InpaintStream, MicroBatch};
pub use unet::{UNet, UNetConfig};
