//! DDPM noise schedules.

use serde::{Deserialize, Serialize};

/// The β-schedule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BetaSchedule {
    /// Linearly increasing β (Ho et al. 2020).
    Linear,
    /// Cosine ᾱ schedule (Nichol & Dhariwal 2021).
    Cosine,
}

/// Precomputed DDPM schedule: β_t, α_t and ᾱ_t for `t ∈ [0, T)`.
///
/// The forward process is
/// `q(x_t | x_0) = N(√ᾱ_t · x_0, (1 − ᾱ_t) I)` (paper Eq. 1-3).
///
/// # Example
///
/// ```
/// use pp_diffusion::{BetaSchedule, NoiseSchedule};
///
/// let s = NoiseSchedule::new(100, BetaSchedule::Linear);
/// assert_eq!(s.len(), 100);
/// // ᾱ decays towards 0: late steps are nearly pure noise.
/// assert!(s.alpha_bar(99) < 0.05);
/// assert!(s.alpha_bar(0) > 0.9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseSchedule {
    betas: Vec<f32>,
    alpha_bars: Vec<f32>,
}

impl NoiseSchedule {
    /// Builds a schedule with `t_max` steps.
    ///
    /// # Panics
    ///
    /// Panics if `t_max == 0`.
    pub fn new(t_max: usize, kind: BetaSchedule) -> Self {
        assert!(t_max > 0, "schedule needs at least one step");
        let betas: Vec<f32> = match kind {
            BetaSchedule::Linear => {
                let (lo, hi) = (1e-4f32, 0.09f32);
                (0..t_max)
                    .map(|t| lo + (hi - lo) * t as f32 / (t_max - 1).max(1) as f32)
                    .collect()
            }
            BetaSchedule::Cosine => {
                let f = |t: f32| {
                    let s = 0.008f32;
                    ((t / t_max as f32 + s) / (1.0 + s) * std::f32::consts::FRAC_PI_2)
                        .cos()
                        .powi(2)
                };
                (0..t_max)
                    .map(|t| {
                        let b = 1.0 - f(t as f32 + 1.0) / f(t as f32);
                        b.clamp(1e-5, 0.999)
                    })
                    .collect()
            }
        };
        let mut alpha_bars = Vec::with_capacity(t_max);
        let mut acc = 1.0f32;
        for &b in &betas {
            acc *= 1.0 - b;
            alpha_bars.push(acc);
        }
        NoiseSchedule { betas, alpha_bars }
    }

    /// Number of diffusion steps `T`.
    pub fn len(&self) -> usize {
        self.betas.len()
    }

    /// Whether the schedule is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.betas.is_empty()
    }

    /// β_t.
    pub fn beta(&self, t: usize) -> f32 {
        self.betas[t]
    }

    /// ᾱ_t (cumulative product of 1-β).
    pub fn alpha_bar(&self, t: usize) -> f32 {
        self.alpha_bars[t]
    }

    /// Draws `x_t` from `q(x_t | x_0)` given pre-sampled standard noise.
    ///
    /// # Panics
    ///
    /// Panics if buffer lengths differ.
    pub fn q_sample(&self, x0: &[f32], t: usize, noise: &[f32]) -> Vec<f32> {
        assert_eq!(x0.len(), noise.len(), "buffer length mismatch");
        let ab = self.alpha_bar(t);
        let (sa, sn) = (ab.sqrt(), (1.0 - ab).sqrt());
        x0.iter()
            .zip(noise)
            .map(|(&x, &e)| sa * x + sn * e)
            .collect()
    }

    /// One deterministic DDIM update: given `x_t`, the model's `x̂0` and
    /// a target step `s < t`, returns `x_s`.
    ///
    /// Uses `ε̂ = (x_t − √ᾱ_t·x̂0) / √(1−ᾱ_t)` and
    /// `x_s = √ᾱ_s·x̂0 + √(1−ᾱ_s)·ε̂`. Passing `s = usize::MAX` (no
    /// further step) returns `x̂0` directly.
    pub fn ddim_step(&self, x_t: &[f32], x0_hat: &[f32], t: usize, s: usize) -> Vec<f32> {
        let mut x = x_t.to_vec();
        self.ddim_step_in_place(&mut x, x0_hat, t, s);
        x
    }

    /// [`NoiseSchedule::ddim_step`] writing `x_{t-1}` over `x_t` in
    /// place — each element depends only on its own position, so the
    /// sampling loop needs no second state buffer.
    pub fn ddim_step_in_place(&self, x_t: &mut [f32], x0_hat: &[f32], t: usize, s: usize) {
        if s == usize::MAX {
            x_t.copy_from_slice(x0_hat);
            return;
        }
        let ab_t = self.alpha_bar(t);
        let ab_s = self.alpha_bar(s);
        let (sa_t, sn_t) = (ab_t.sqrt(), (1.0 - ab_t).sqrt());
        let (sa_s, sn_s) = (ab_s.sqrt(), (1.0 - ab_s).sqrt());
        for (xt, &x0) in x_t.iter_mut().zip(x0_hat) {
            let eps = (*xt - sa_t * x0) / sn_t.max(1e-6);
            *xt = sa_s * x0 + sn_s * eps;
        }
    }

    /// The decreasing sequence of timesteps for `n`-step DDIM sampling.
    pub fn ddim_timesteps(&self, n: usize) -> Vec<usize> {
        let t_max = self.len();
        let n = n.clamp(1, t_max);
        let mut ts: Vec<usize> = (0..n)
            .map(|i| (t_max - 1) - i * (t_max - 1) / n.max(1))
            .collect();
        ts.dedup();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alpha_bar_monotone_decreasing() {
        for kind in [BetaSchedule::Linear, BetaSchedule::Cosine] {
            let s = NoiseSchedule::new(50, kind);
            for t in 1..50 {
                assert!(s.alpha_bar(t) < s.alpha_bar(t - 1), "{kind:?} at {t}");
            }
        }
    }

    #[test]
    fn q_sample_at_t0_is_mostly_signal() {
        let s = NoiseSchedule::new(100, BetaSchedule::Linear);
        let x0 = vec![1.0f32; 4];
        let noise = vec![0.5f32; 4];
        let xt = s.q_sample(&x0, 0, &noise);
        assert!(xt.iter().all(|&v| v > 0.9));
    }

    #[test]
    fn ddim_step_recovers_x0_at_end() {
        let s = NoiseSchedule::new(100, BetaSchedule::Linear);
        let x0 = vec![0.7f32, -0.3];
        let xt = s.q_sample(&x0, 99, &[0.1, -0.2]);
        let out = s.ddim_step(&xt, &x0, 99, usize::MAX);
        assert_eq!(out, x0);
    }

    #[test]
    fn ddim_with_perfect_model_reconstructs() {
        // If the model always predicts the true x0, chaining DDIM steps
        // lands exactly on x0 at the end (deterministic sampler).
        let s = NoiseSchedule::new(50, BetaSchedule::Cosine);
        let x0 = vec![0.9f32, -0.9, 0.3];
        let noise = vec![0.3f32, 1.2, -0.5];
        let ts = s.ddim_timesteps(10);
        let mut x = s.q_sample(&x0, ts[0], &noise);
        for w in ts.windows(2) {
            x = s.ddim_step(&x, &x0, w[0], w[1]);
        }
        let x_final = s.ddim_step(&x, &x0, *ts.last().unwrap(), usize::MAX);
        for (a, b) in x_final.iter().zip(&x0) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn timesteps_are_strictly_decreasing() {
        let s = NoiseSchedule::new(100, BetaSchedule::Linear);
        for n in [1, 5, 10, 100] {
            let ts = s.ddim_timesteps(n);
            assert_eq!(ts[0], 99);
            assert!(ts.windows(2).all(|w| w[0] > w[1]), "n={n}: {ts:?}");
        }
    }

    proptest! {
        /// ᾱ stays in (0, 1) for any schedule length.
        #[test]
        fn prop_alpha_bar_bounds(t_max in 1usize..200) {
            let s = NoiseSchedule::new(t_max, BetaSchedule::Linear);
            for t in 0..t_max {
                let ab = s.alpha_bar(t);
                prop_assert!(ab > 0.0 && ab < 1.0);
            }
        }
    }
}
