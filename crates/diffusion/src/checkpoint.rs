//! Versioned, checksummed model checkpoints.
//!
//! [`DiffusionModel::save_weights`] is a raw weight payload: loading it
//! requires already holding a model of the right architecture, and a
//! flipped bit in the payload silently loads as different weights. This
//! module wraps that payload in a durable envelope suitable for
//! artifact stores:
//!
//! ```text
//! "PPCK"                magic
//! u32  version          format version (currently 2)
//! manifest              the full DiffusionConfig (architecture +
//!                       schedule + sampling settings), so a checkpoint
//!                       is self-describing — load_checkpoint rebuilds
//!                       the model without out-of-band configuration
//! lineage (v2)          u8 parent flag; if 1, the u64 trailing
//!                       checksum of the parent checkpoint this one was
//!                       fine-tuned from; then u32 epoch — how many
//!                       training epochs produced these weights
//! PPDM payload          DiffusionModel::save_weights byte-for-byte
//! u64  checksum         FNV-1a over every preceding byte
//! ```
//!
//! All integers are little-endian. [`load_checkpoint`] validates magic,
//! version, manifest, lineage and checksum, and returns
//! [`ModelError::Corrupt`] / [`ModelError::Io`] naming the failing
//! section; a rejected stream never yields a half-built model.
//! Version-1 streams (written before lineage existed) still load, with
//! [`CheckpointLineage::default`] (`parent: None, epoch: 0`).

use crate::error::ModelError;
use crate::model::{DiffusionConfig, DiffusionModel, Parameterization};
use crate::schedule::BetaSchedule;
use std::io::{Read, Write};

/// First four bytes of every checkpoint stream.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"PPCK";

/// The checkpoint format version this build writes. [`load_checkpoint`]
/// also reads version 1 (pre-lineage), defaulting the lineage fields.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Where a checkpoint's weights came from: the training-provenance
/// fields added by format version 2.
///
/// `parent` is the trailing FNV-1a checksum of the checkpoint the run
/// was forked from (see [`checkpoint_checksum`]) — a content address,
/// so a fine-tune can be matched to its exact parent weights without
/// trusting file names. `epoch` counts completed training epochs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointLineage {
    /// Trailing checksum of the parent checkpoint, `None` for a root
    /// (from-scratch) model.
    pub parent: Option<u64>,
    /// Training epochs completed when these weights were written.
    pub epoch: u32,
}

/// The trailing FNV-1a checksum of a serialized checkpoint blob — the
/// content address [`CheckpointLineage::parent`] records. Validates
/// only the envelope (magic + minimum length), not the payload; use
/// [`load_checkpoint`] to verify integrity.
///
/// # Errors
///
/// [`ModelError::Corrupt`] when the blob is too short to carry the
/// envelope or does not start with the PPCK magic.
pub fn checkpoint_checksum(bytes: &[u8]) -> Result<u64, ModelError> {
    if bytes.len() < CHECKPOINT_MAGIC.len() + 4 + 8 || bytes[..4] != CHECKPOINT_MAGIC {
        return Err(ModelError::corrupt(
            "checkpoint: envelope",
            format!("{} bytes is not a PPCK stream", bytes.len()),
        ));
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[bytes.len() - 8..]);
    Ok(u64::from_le_bytes(sum))
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_update(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Forwards writes while folding every byte into an FNV-1a hash.
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        fnv_update(&mut self.hash, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Forwards reads while folding every byte into an FNV-1a hash.
struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        fnv_update(&mut self.hash, &buf[..n]);
        Ok(n)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32, section: &str) -> Result<(), ModelError> {
    w.write_all(&v.to_le_bytes())
        .map_err(ModelError::io(section))
}

fn read_u32<R: Read>(r: &mut R, section: &str) -> Result<u32, ModelError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(ModelError::io(section))?;
    Ok(u32::from_le_bytes(buf))
}

fn schedule_tag(s: BetaSchedule) -> u8 {
    match s {
        BetaSchedule::Linear => 0,
        BetaSchedule::Cosine => 1,
    }
}

fn parameterization_tag(p: Parameterization) -> u8 {
    match p {
        Parameterization::X0 => 0,
        Parameterization::Epsilon => 1,
    }
}

/// Writes the manifest encoding of `cfg`: the architecture, schedule
/// and sampling fields, little-endian, with tagged enums.
///
/// This is the one binary codec for [`DiffusionConfig`] — checkpoints
/// embed it, and `pp-core`'s engine manifest reuses it, so adding a
/// field or enum variant is a single edit here.
///
/// # Errors
///
/// [`ModelError::Io`] naming the field whose write failed.
pub fn write_config<W: Write>(cfg: &DiffusionConfig, w: &mut W) -> Result<(), ModelError> {
    write_u32(w, cfg.image, "manifest: image")?;
    write_u32(w, cfg.base_ch as u32, "manifest: base_ch")?;
    write_u32(w, cfg.time_dim as u32, "manifest: time_dim")?;
    write_u32(w, cfg.t_max as u32, "manifest: t_max")?;
    w.write_all(&[schedule_tag(cfg.schedule)])
        .map_err(ModelError::io("manifest: schedule"))?;
    write_u32(w, cfg.ddim_steps as u32, "manifest: ddim_steps")?;
    w.write_all(&[parameterization_tag(cfg.parameterization)])
        .map_err(ModelError::io("manifest: parameterization"))
}

/// Writes `model` as a self-describing, checksummed checkpoint with
/// default lineage (root model, epoch 0) — see
/// [`save_checkpoint_with`].
///
/// # Errors
///
/// [`ModelError::Io`] naming the section whose write failed.
pub fn save_checkpoint<W: Write>(model: &mut DiffusionModel, writer: W) -> Result<(), ModelError> {
    save_checkpoint_with(model, writer, CheckpointLineage::default())
}

/// Writes `model` as a self-describing, checksummed checkpoint carrying
/// `lineage` (format version 2).
///
/// # Errors
///
/// [`ModelError::Io`] naming the section whose write failed.
pub fn save_checkpoint_with<W: Write>(
    model: &mut DiffusionModel,
    writer: W,
    lineage: CheckpointLineage,
) -> Result<(), ModelError> {
    let cfg = model.config();
    let mut w = HashingWriter {
        inner: writer,
        hash: FNV_OFFSET,
    };
    w.write_all(&CHECKPOINT_MAGIC)
        .map_err(ModelError::io("checkpoint: magic"))?;
    write_u32(&mut w, CHECKPOINT_VERSION, "checkpoint: version")?;
    write_config(&cfg, &mut w)?;
    match lineage.parent {
        None => w
            .write_all(&[0])
            .map_err(ModelError::io("lineage: parent flag"))?,
        Some(parent) => {
            w.write_all(&[1])
                .map_err(ModelError::io("lineage: parent flag"))?;
            w.write_all(&parent.to_le_bytes())
                .map_err(ModelError::io("lineage: parent checksum"))?;
        }
    }
    write_u32(&mut w, lineage.epoch, "lineage: epoch")?;
    model.save_weights(&mut w)?;
    let checksum = w.hash;
    w.inner
        .write_all(&checksum.to_le_bytes())
        .map_err(ModelError::io("checkpoint: checksum"))
}

/// Reads the manifest encoding written by [`write_config`], with every
/// architecture field sanity-bounded.
///
/// The bounds matter because callers typically construct a model from
/// the result before any checksum can run: a flipped manifest byte
/// must be caught here rather than via an absurd-size allocation
/// inside `DiffusionModel::new`. Bounds sit an order of magnitude
/// beyond anything this system instantiates.
///
/// # Errors
///
/// [`ModelError::Io`] when the reader runs dry,
/// [`ModelError::Corrupt`] for unknown enum tags or implausible
/// dimensions.
pub fn read_config<R: Read>(r: &mut R) -> Result<DiffusionConfig, ModelError> {
    let image = read_u32(r, "manifest: image")?;
    let base_ch = read_u32(r, "manifest: base_ch")? as usize;
    let time_dim = read_u32(r, "manifest: time_dim")? as usize;
    let t_max = read_u32(r, "manifest: t_max")? as usize;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)
        .map_err(ModelError::io("manifest: schedule"))?;
    let schedule = match tag[0] {
        0 => BetaSchedule::Linear,
        1 => BetaSchedule::Cosine,
        other => {
            return Err(ModelError::corrupt(
                "manifest: schedule",
                format!("unknown schedule tag {other}"),
            ))
        }
    };
    let ddim_steps = read_u32(r, "manifest: ddim_steps")? as usize;
    r.read_exact(&mut tag)
        .map_err(ModelError::io("manifest: parameterization"))?;
    let parameterization = match tag[0] {
        0 => Parameterization::X0,
        1 => Parameterization::Epsilon,
        other => {
            return Err(ModelError::corrupt(
                "manifest: parameterization",
                format!("unknown parameterization tag {other}"),
            ))
        }
    };
    if image == 0 || !image.is_multiple_of(4) || image > 4096 {
        return Err(ModelError::corrupt(
            "manifest: image",
            format!("image side {image} is not a positive multiple of 4 (≤ 4096)"),
        ));
    }
    if base_ch == 0 || time_dim == 0 || t_max == 0 || ddim_steps == 0 {
        return Err(ModelError::corrupt(
            "manifest",
            "base_ch, time_dim, t_max and ddim_steps must be positive".to_string(),
        ));
    }
    if base_ch > 4096 || time_dim > 65536 || t_max > 1_000_000 || ddim_steps > t_max {
        return Err(ModelError::corrupt(
            "manifest",
            format!(
                "implausible architecture (base_ch {base_ch}, time_dim {time_dim}, \
                 t_max {t_max}, ddim_steps {ddim_steps})"
            ),
        ));
    }
    Ok(DiffusionConfig {
        image,
        base_ch,
        time_dim,
        t_max,
        schedule,
        ddim_steps,
        parameterization,
    })
}

/// Reads a checkpoint written by [`save_checkpoint`], rebuilding the
/// model from the embedded manifest and discarding the lineage (see
/// [`load_checkpoint_with`] to keep it).
///
/// # Errors
///
/// See [`load_checkpoint_with`].
pub fn load_checkpoint<R: Read>(reader: R) -> Result<DiffusionModel, ModelError> {
    load_checkpoint_with(reader).map(|(model, _)| model)
}

/// Reads a checkpoint written by [`save_checkpoint_with`], rebuilding
/// the model from the embedded manifest and returning its lineage.
/// Version-1 streams load with `parent: None, epoch: 0`.
///
/// # Errors
///
/// [`ModelError::Corrupt`] on bad magic, an unsupported version, an
/// invalid manifest, a corrupt lineage flag or a checksum mismatch;
/// [`ModelError::Io`] when the reader fails or the stream is truncated.
/// Either way no model is returned — corruption cannot produce garbage
/// weights.
pub fn load_checkpoint_with<R: Read>(
    reader: R,
) -> Result<(DiffusionModel, CheckpointLineage), ModelError> {
    let mut r = HashingReader {
        inner: reader,
        hash: FNV_OFFSET,
    };
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(ModelError::io("checkpoint: magic"))?;
    if magic != CHECKPOINT_MAGIC {
        return Err(ModelError::corrupt(
            "checkpoint: magic",
            format!("expected \"PPCK\", got {magic:?}"),
        ));
    }
    let version = read_u32(&mut r, "checkpoint: version")?;
    if !(1..=CHECKPOINT_VERSION).contains(&version) {
        return Err(ModelError::corrupt(
            "checkpoint: version",
            format!("unsupported version {version} (this build reads 1..={CHECKPOINT_VERSION})"),
        ));
    }
    let cfg = read_config(&mut r)?;
    let lineage = if version >= 2 {
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)
            .map_err(ModelError::io("lineage: parent flag"))?;
        let parent = match flag[0] {
            0 => None,
            1 => {
                let mut buf = [0u8; 8];
                r.read_exact(&mut buf)
                    .map_err(ModelError::io("lineage: parent checksum"))?;
                Some(u64::from_le_bytes(buf))
            }
            other => {
                return Err(ModelError::corrupt(
                    "lineage: parent flag",
                    format!("unknown parent flag {other}"),
                ))
            }
        };
        let epoch = read_u32(&mut r, "lineage: epoch")?;
        CheckpointLineage { parent, epoch }
    } else {
        // Pre-lineage streams: a root model with no epoch history.
        CheckpointLineage::default()
    };
    let mut model = DiffusionModel::new(cfg, 0);
    model.load_weights(&mut r)?;
    let computed = r.hash;
    let mut sum = [0u8; 8];
    r.inner
        .read_exact(&mut sum)
        .map_err(ModelError::io("checkpoint: checksum"))?;
    let stored = u64::from_le_bytes(sum);
    if stored != computed {
        return Err(ModelError::corrupt(
            "checkpoint: checksum",
            format!("stored {stored:016x}, computed {computed:016x}"),
        ));
    }
    Ok((model, lineage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::GrayImage;

    fn trained_tiny() -> DiffusionModel {
        let mut model = DiffusionModel::new(DiffusionConfig::tiny(16), 3);
        let corpus = vec![GrayImage::filled(16, 16, -1.0); 2];
        let _ = model.train(&corpus, 3, 2, 1e-3, 0).unwrap();
        model
    }

    #[test]
    fn roundtrip_rebuilds_identical_model() {
        let mut a = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint(&mut a, &mut bytes).unwrap();
        let b = load_checkpoint(bytes.as_slice()).unwrap();
        assert_eq!(a.config(), b.config());
        let img = GrayImage::filled(16, 16, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        assert_eq!(
            a.sample_inpaint(&img, &mask, 5).unwrap(),
            b.sample_inpaint(&img, &mask, 5).unwrap()
        );
    }

    #[test]
    fn rejects_bad_magic_version_and_checksum() {
        let mut model = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint(&mut model, &mut bytes).unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'Q';
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "wrong error: {err}");

        let mut bad = bytes.clone();
        bad[4] = 99;
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "wrong error: {err}");

        // A flipped payload bit trips the checksum even though the
        // weight stream itself still parses.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x40;
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, ModelError::Corrupt { .. }),
            "wrong error: {err}"
        );

        // Truncation inside the payload reports the dry section.
        let err = load_checkpoint(&bytes[..bytes.len() - 12]).unwrap_err();
        assert!(matches!(err, ModelError::Io { .. }), "wrong error: {err}");
    }

    /// Serialises `model` in the retired version-1 layout (no lineage
    /// section) with a correct trailing checksum, byte-compatible with
    /// what pre-v2 builds wrote.
    fn v1_bytes(model: &mut DiffusionModel) -> Vec<u8> {
        let mut body = Vec::new();
        body.extend_from_slice(&CHECKPOINT_MAGIC);
        body.extend_from_slice(&1u32.to_le_bytes());
        write_config(&model.config(), &mut body).unwrap();
        model.save_weights(&mut body).unwrap();
        let mut hash = FNV_OFFSET;
        fnv_update(&mut hash, &body);
        body.extend_from_slice(&hash.to_le_bytes());
        body
    }

    #[test]
    fn version_one_streams_load_with_default_lineage() {
        let mut model = trained_tiny();
        let old = v1_bytes(&mut model);
        let (back, lineage) = load_checkpoint_with(old.as_slice()).expect("v1 stream loads");
        assert_eq!(lineage, CheckpointLineage::default());
        assert_eq!(lineage.parent, None, "v1 blobs predate lineage");
        assert_eq!(lineage.epoch, 0);
        assert_eq!(back.config(), model.config());
        let img = GrayImage::filled(16, 16, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        assert_eq!(
            back.sample_inpaint(&img, &mask, 5).unwrap(),
            model.sample_inpaint(&img, &mask, 5).unwrap(),
            "v1 weights load bit-identically"
        );
    }

    #[test]
    fn lineage_roundtrips_and_checksum_addresses_the_blob() {
        let mut model = trained_tiny();
        let mut parent_blob = Vec::new();
        save_checkpoint(&mut model, &mut parent_blob).unwrap();
        let parent_sum = checkpoint_checksum(&parent_blob).unwrap();

        let lineage = CheckpointLineage {
            parent: Some(parent_sum),
            epoch: 7,
        };
        let mut child = Vec::new();
        save_checkpoint_with(&mut model, &mut child, lineage).unwrap();
        let (_, back) = load_checkpoint_with(child.as_slice()).unwrap();
        assert_eq!(back, lineage);

        // The content address is the stream's own trailing checksum.
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&parent_blob[parent_blob.len() - 8..]);
        assert_eq!(parent_sum, u64::from_le_bytes(tail));

        // Too-short or non-PPCK byte strings are typed errors, not
        // panics.
        assert!(matches!(
            checkpoint_checksum(b"PPCK"),
            Err(ModelError::Corrupt { .. })
        ));
        assert!(matches!(
            checkpoint_checksum(&child[1..]),
            Err(ModelError::Corrupt { .. })
        ));
    }

    /// The lineage section sits right after the 22-byte manifest
    /// (offset 30): a corrupt parent flag is a typed `Corrupt` naming
    /// the field, caught before the checksum could even run.
    #[test]
    fn corrupt_lineage_flag_is_rejected() {
        let mut model = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint_with(
            &mut model,
            &mut bytes,
            CheckpointLineage {
                parent: Some(1),
                epoch: 3,
            },
        )
        .unwrap();
        assert_eq!(bytes[30], 1, "parent flag where the layout says");
        let mut bad = bytes.clone();
        bad[30] = 7;
        let err = load_checkpoint_with(bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, ModelError::Corrupt { .. }),
            "wrong error: {err}"
        );
        assert!(err.to_string().contains("parent flag"), "was: {err}");
    }

    /// Truncation at *every* prefix depth of the envelope + lineage
    /// region (and a sweep of payload/checksum depths) returns a typed
    /// error, never a panic and never a model.
    #[test]
    fn truncation_at_every_depth_is_a_typed_error() {
        let mut model = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint_with(
            &mut model,
            &mut bytes,
            CheckpointLineage {
                parent: Some(0xfeed),
                epoch: 2,
            },
        )
        .unwrap();
        // Envelope + manifest + lineage (flag 1 + parent 8 + epoch 4)
        // ends at byte 43; cover every cut inside it, then sample the
        // weight payload and the trailing checksum.
        let header_end = 43.min(bytes.len());
        let mut cuts: Vec<usize> = (0..header_end).collect();
        cuts.extend([bytes.len() - 9, bytes.len() - 8, bytes.len() - 1]);
        for cut in cuts {
            let err = load_checkpoint_with(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ModelError::Io { .. } | ModelError::Corrupt { .. }),
                "cut at {cut}: wrong error {err}"
            );
        }
    }

    #[test]
    fn manifest_is_validated() {
        let mut model = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint(&mut model, &mut bytes).unwrap();
        // Corrupt the image side (first manifest field, offset 8) to a
        // non-multiple of 4. The manifest check fires before any weight
        // allocation happens.
        let mut bad = bytes.clone();
        bad[8] = 17;
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("image"), "wrong error: {err}");
        // An absurd base_ch (offset 12) must be rejected *before*
        // DiffusionModel::new would try to allocate a giant U-Net —
        // the checksum alone cannot protect this path, since it only
        // runs after the weights parse.
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&0x4000_0000u32.to_le_bytes());
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("implausible"),
            "wrong error: {err}"
        );
    }
}
