//! Versioned, checksummed model checkpoints.
//!
//! [`DiffusionModel::save_weights`] is a raw weight payload: loading it
//! requires already holding a model of the right architecture, and a
//! flipped bit in the payload silently loads as different weights. This
//! module wraps that payload in a durable envelope suitable for
//! artifact stores:
//!
//! ```text
//! "PPCK"                magic
//! u32  version          format version (currently 1)
//! manifest              the full DiffusionConfig (architecture +
//!                       schedule + sampling settings), so a checkpoint
//!                       is self-describing — load_checkpoint rebuilds
//!                       the model without out-of-band configuration
//! PPDM payload          DiffusionModel::save_weights byte-for-byte
//! u64  checksum         FNV-1a over every preceding byte
//! ```
//!
//! All integers are little-endian. [`load_checkpoint`] validates magic,
//! version, manifest and checksum, and returns
//! [`ModelError::Corrupt`] / [`ModelError::Io`] naming the failing
//! section; a rejected stream never yields a half-built model.

use crate::error::ModelError;
use crate::model::{DiffusionConfig, DiffusionModel, Parameterization};
use crate::schedule::BetaSchedule;
use std::io::{Read, Write};

/// First four bytes of every checkpoint stream.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"PPCK";

/// The checkpoint format version this build reads and writes.
pub const CHECKPOINT_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv_update(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Forwards writes while folding every byte into an FNV-1a hash.
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        fnv_update(&mut self.hash, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Forwards reads while folding every byte into an FNV-1a hash.
struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        fnv_update(&mut self.hash, &buf[..n]);
        Ok(n)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32, section: &str) -> Result<(), ModelError> {
    w.write_all(&v.to_le_bytes())
        .map_err(ModelError::io(section))
}

fn read_u32<R: Read>(r: &mut R, section: &str) -> Result<u32, ModelError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(ModelError::io(section))?;
    Ok(u32::from_le_bytes(buf))
}

fn schedule_tag(s: BetaSchedule) -> u8 {
    match s {
        BetaSchedule::Linear => 0,
        BetaSchedule::Cosine => 1,
    }
}

fn parameterization_tag(p: Parameterization) -> u8 {
    match p {
        Parameterization::X0 => 0,
        Parameterization::Epsilon => 1,
    }
}

/// Writes the manifest encoding of `cfg`: the architecture, schedule
/// and sampling fields, little-endian, with tagged enums.
///
/// This is the one binary codec for [`DiffusionConfig`] — checkpoints
/// embed it, and `pp-core`'s engine manifest reuses it, so adding a
/// field or enum variant is a single edit here.
///
/// # Errors
///
/// [`ModelError::Io`] naming the field whose write failed.
pub fn write_config<W: Write>(cfg: &DiffusionConfig, w: &mut W) -> Result<(), ModelError> {
    write_u32(w, cfg.image, "manifest: image")?;
    write_u32(w, cfg.base_ch as u32, "manifest: base_ch")?;
    write_u32(w, cfg.time_dim as u32, "manifest: time_dim")?;
    write_u32(w, cfg.t_max as u32, "manifest: t_max")?;
    w.write_all(&[schedule_tag(cfg.schedule)])
        .map_err(ModelError::io("manifest: schedule"))?;
    write_u32(w, cfg.ddim_steps as u32, "manifest: ddim_steps")?;
    w.write_all(&[parameterization_tag(cfg.parameterization)])
        .map_err(ModelError::io("manifest: parameterization"))
}

/// Writes `model` as a self-describing, checksummed checkpoint.
///
/// # Errors
///
/// [`ModelError::Io`] naming the section whose write failed.
pub fn save_checkpoint<W: Write>(model: &mut DiffusionModel, writer: W) -> Result<(), ModelError> {
    let cfg = model.config();
    let mut w = HashingWriter {
        inner: writer,
        hash: FNV_OFFSET,
    };
    w.write_all(&CHECKPOINT_MAGIC)
        .map_err(ModelError::io("checkpoint: magic"))?;
    write_u32(&mut w, CHECKPOINT_VERSION, "checkpoint: version")?;
    write_config(&cfg, &mut w)?;
    model.save_weights(&mut w)?;
    let checksum = w.hash;
    w.inner
        .write_all(&checksum.to_le_bytes())
        .map_err(ModelError::io("checkpoint: checksum"))
}

/// Reads the manifest encoding written by [`write_config`], with every
/// architecture field sanity-bounded.
///
/// The bounds matter because callers typically construct a model from
/// the result before any checksum can run: a flipped manifest byte
/// must be caught here rather than via an absurd-size allocation
/// inside `DiffusionModel::new`. Bounds sit an order of magnitude
/// beyond anything this system instantiates.
///
/// # Errors
///
/// [`ModelError::Io`] when the reader runs dry,
/// [`ModelError::Corrupt`] for unknown enum tags or implausible
/// dimensions.
pub fn read_config<R: Read>(r: &mut R) -> Result<DiffusionConfig, ModelError> {
    let image = read_u32(r, "manifest: image")?;
    let base_ch = read_u32(r, "manifest: base_ch")? as usize;
    let time_dim = read_u32(r, "manifest: time_dim")? as usize;
    let t_max = read_u32(r, "manifest: t_max")? as usize;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)
        .map_err(ModelError::io("manifest: schedule"))?;
    let schedule = match tag[0] {
        0 => BetaSchedule::Linear,
        1 => BetaSchedule::Cosine,
        other => {
            return Err(ModelError::corrupt(
                "manifest: schedule",
                format!("unknown schedule tag {other}"),
            ))
        }
    };
    let ddim_steps = read_u32(r, "manifest: ddim_steps")? as usize;
    r.read_exact(&mut tag)
        .map_err(ModelError::io("manifest: parameterization"))?;
    let parameterization = match tag[0] {
        0 => Parameterization::X0,
        1 => Parameterization::Epsilon,
        other => {
            return Err(ModelError::corrupt(
                "manifest: parameterization",
                format!("unknown parameterization tag {other}"),
            ))
        }
    };
    if image == 0 || !image.is_multiple_of(4) || image > 4096 {
        return Err(ModelError::corrupt(
            "manifest: image",
            format!("image side {image} is not a positive multiple of 4 (≤ 4096)"),
        ));
    }
    if base_ch == 0 || time_dim == 0 || t_max == 0 || ddim_steps == 0 {
        return Err(ModelError::corrupt(
            "manifest",
            "base_ch, time_dim, t_max and ddim_steps must be positive".to_string(),
        ));
    }
    if base_ch > 4096 || time_dim > 65536 || t_max > 1_000_000 || ddim_steps > t_max {
        return Err(ModelError::corrupt(
            "manifest",
            format!(
                "implausible architecture (base_ch {base_ch}, time_dim {time_dim}, \
                 t_max {t_max}, ddim_steps {ddim_steps})"
            ),
        ));
    }
    Ok(DiffusionConfig {
        image,
        base_ch,
        time_dim,
        t_max,
        schedule,
        ddim_steps,
        parameterization,
    })
}

/// Reads a checkpoint written by [`save_checkpoint`], rebuilding the
/// model from the embedded manifest.
///
/// # Errors
///
/// [`ModelError::Corrupt`] on bad magic, an unsupported version, an
/// invalid manifest or a checksum mismatch; [`ModelError::Io`] when the
/// reader fails or the stream is truncated. Either way no model is
/// returned — corruption cannot produce garbage weights.
pub fn load_checkpoint<R: Read>(reader: R) -> Result<DiffusionModel, ModelError> {
    let mut r = HashingReader {
        inner: reader,
        hash: FNV_OFFSET,
    };
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)
        .map_err(ModelError::io("checkpoint: magic"))?;
    if magic != CHECKPOINT_MAGIC {
        return Err(ModelError::corrupt(
            "checkpoint: magic",
            format!("expected \"PPCK\", got {magic:?}"),
        ));
    }
    let version = read_u32(&mut r, "checkpoint: version")?;
    if version != CHECKPOINT_VERSION {
        return Err(ModelError::corrupt(
            "checkpoint: version",
            format!("unsupported version {version} (this build reads {CHECKPOINT_VERSION})"),
        ));
    }
    let cfg = read_config(&mut r)?;
    let mut model = DiffusionModel::new(cfg, 0);
    model.load_weights(&mut r)?;
    let computed = r.hash;
    let mut sum = [0u8; 8];
    r.inner
        .read_exact(&mut sum)
        .map_err(ModelError::io("checkpoint: checksum"))?;
    let stored = u64::from_le_bytes(sum);
    if stored != computed {
        return Err(ModelError::corrupt(
            "checkpoint: checksum",
            format!("stored {stored:016x}, computed {computed:016x}"),
        ));
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_geometry::GrayImage;

    fn trained_tiny() -> DiffusionModel {
        let mut model = DiffusionModel::new(DiffusionConfig::tiny(16), 3);
        let corpus = vec![GrayImage::filled(16, 16, -1.0); 2];
        let _ = model.train(&corpus, 3, 2, 1e-3, 0).unwrap();
        model
    }

    #[test]
    fn roundtrip_rebuilds_identical_model() {
        let mut a = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint(&mut a, &mut bytes).unwrap();
        let b = load_checkpoint(bytes.as_slice()).unwrap();
        assert_eq!(a.config(), b.config());
        let img = GrayImage::filled(16, 16, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        assert_eq!(
            a.sample_inpaint(&img, &mask, 5).unwrap(),
            b.sample_inpaint(&img, &mask, 5).unwrap()
        );
    }

    #[test]
    fn rejects_bad_magic_version_and_checksum() {
        let mut model = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint(&mut model, &mut bytes).unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'Q';
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "wrong error: {err}");

        let mut bad = bytes.clone();
        bad[4] = 99;
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "wrong error: {err}");

        // A flipped payload bit trips the checksum even though the
        // weight stream itself still parses.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x40;
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, ModelError::Corrupt { .. }),
            "wrong error: {err}"
        );

        // Truncation inside the payload reports the dry section.
        let err = load_checkpoint(&bytes[..bytes.len() - 12]).unwrap_err();
        assert!(matches!(err, ModelError::Io { .. }), "wrong error: {err}");
    }

    #[test]
    fn manifest_is_validated() {
        let mut model = trained_tiny();
        let mut bytes = Vec::new();
        save_checkpoint(&mut model, &mut bytes).unwrap();
        // Corrupt the image side (first manifest field, offset 8) to a
        // non-multiple of 4. The manifest check fires before any weight
        // allocation happens.
        let mut bad = bytes.clone();
        bad[8] = 17;
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("image"), "wrong error: {err}");
        // An absurd base_ch (offset 12) must be rejected *before*
        // DiffusionModel::new would try to allocate a giant U-Net —
        // the checksum alone cannot protect this path, since it only
        // runs after the weights parse.
        let mut bad = bytes.clone();
        bad[12..16].copy_from_slice(&0x4000_0000u32.to_le_bytes());
        let err = load_checkpoint(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("implausible"),
            "wrong error: {err}"
        );
    }
}
