//! Typed errors for the model's training and sampling surface.

use std::fmt;

/// What went wrong inside a [`crate::DiffusionModel`] call.
///
/// Every public training/sampling entry point validates its inputs up
/// front and returns one of these instead of panicking, so service-style
/// callers can surface bad requests without tearing the process down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A call received an empty input set (`what` names it).
    Empty(&'static str),
    /// An image dimension disagrees with the configured model size.
    Shape {
        /// Which input was mis-shaped (e.g. `"inpainting image"`).
        what: &'static str,
        /// The side length the model expects.
        expected: u32,
        /// The side length it received.
        actual: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty(what) => write!(f, "{what} must be non-empty"),
            ModelError::Shape {
                what,
                expected,
                actual,
            } => write!(f, "{what} must be {expected}x{expected}, got {actual}"),
        }
    }
}

impl std::error::Error for ModelError {}
