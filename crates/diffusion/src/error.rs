//! Typed errors for the model's training, sampling and checkpoint
//! surface.

use std::fmt;
use std::io;

/// What went wrong inside a [`crate::DiffusionModel`] call.
///
/// Every public training/sampling entry point validates its inputs up
/// front and returns one of these instead of panicking, so service-style
/// callers can surface bad requests without tearing the process down.
/// The checkpoint surface ([`crate::DiffusionModel::save_weights`],
/// [`crate::DiffusionModel::load_weights`], [`crate::save_checkpoint`],
/// [`crate::load_checkpoint`]) uses the [`ModelError::Io`] and
/// [`ModelError::Corrupt`] variants, which name the offending section so
/// a truncated or mismatched stream is diagnosable from the message
/// alone. [`std::error::Error::source`] on [`ModelError::Io`] exposes
/// the underlying I/O failure, so error chains reach the root cause.
#[derive(Debug)]
#[non_exhaustive]
pub enum ModelError {
    /// A call received an empty input set (`what` names it).
    Empty(&'static str),
    /// An image dimension disagrees with the configured model size.
    Shape {
        /// Which input was mis-shaped (e.g. `"inpainting image"`).
        what: &'static str,
        /// The side length the model expects.
        expected: u32,
        /// The side length it received.
        actual: u32,
    },
    /// Reading or writing a checkpoint stream failed.
    Io {
        /// The checkpoint section being transferred (e.g.
        /// `"weights: parameter tensor 3 of 42"`), so a truncated
        /// stream points at where it ran dry.
        section: String,
        /// The underlying I/O failure (also returned by
        /// [`std::error::Error::source`]).
        source: io::Error,
    },
    /// A checkpoint stream parsed but its contents are invalid: bad
    /// magic, unsupported version, a shape manifest that disagrees with
    /// this architecture, or a checksum mismatch. Nothing is applied to
    /// the model when this is returned — a corrupt stream never leaves
    /// garbage weights behind.
    Corrupt {
        /// The checkpoint section that failed validation.
        section: String,
        /// What was wrong with it.
        detail: String,
    },
}

impl ModelError {
    /// Builds an [`ModelError::Io`] tagged with `section`.
    pub(crate) fn io(section: impl Into<String>) -> impl FnOnce(io::Error) -> ModelError {
        let section = section.into();
        move |source| ModelError::Io { section, source }
    }

    /// Builds a [`ModelError::Corrupt`] for `section`.
    pub(crate) fn corrupt(section: impl Into<String>, detail: impl Into<String>) -> ModelError {
        ModelError::Corrupt {
            section: section.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty(what) => write!(f, "{what} must be non-empty"),
            ModelError::Shape {
                what,
                expected,
                actual,
            } => write!(f, "{what} must be {expected}x{expected}, got {actual}"),
            ModelError::Io { section, source } => {
                write!(f, "checkpoint i/o failed at {section}: {source}")
            }
            ModelError::Corrupt { section, detail } => {
                write!(f, "corrupt checkpoint ({section}): {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn io_variant_chains_to_source() {
        let e = ModelError::io("weights: header")(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream ran dry",
        ));
        assert!(e.to_string().contains("weights: header"));
        let root = e.source().expect("io variant must expose its source");
        assert!(root.to_string().contains("stream ran dry"));
    }

    #[test]
    fn corrupt_variant_names_section() {
        let e = ModelError::corrupt("magic", "expected PPCK");
        assert!(e.to_string().contains("magic"));
        assert!(e.source().is_none());
    }
}
