//! The slot-table forward path: continuous batching at DDIM-step
//! granularity.
//!
//! [`InpaintWorker::run`] samples one fixed micro-batch per call — every
//! job enters the packed `[B, 3, H, W]` tensor at step 0 and leaves at
//! the final step together, so a scheduler can only add work at batch
//! boundaries. [`InpaintWorker::run_slots`] removes that constraint: the
//! worker keeps a *slot table* of in-flight jobs, each with its own
//! template, mask, RNG stream and **step cursor**, and between any two
//! DDIM steps it asks a [`SlotFeed`] for new jobs to admit into free
//! slots. Every forward pass packs the active slots into one tensor with
//! a *per-slot* timestep vector, so slots at different cursor depths
//! share the pass the way LLM serving engines continuously batch
//! requests at token granularity.
//!
//! **Why this is bit-identical to solo sampling.** Every per-pixel
//! operation in the DDIM loop is sample-local; the U-Net computes its
//! time embedding per batch row (`forward_infer` takes `&[usize]`, one
//! timestep per row, and `infer_batch_rows_match_solo` in `unet.rs` pins
//! per-row bit-identity under heterogeneous timesteps); and a slot's
//! noise comes from an RNG stream seeded only by [`SlotJob::seed`]. A
//! job's output therefore depends on `(template, mask, seed)` alone —
//! never on which slots shared its passes or at what cursor depth they
//! ran. `slot_table_matches_solo_under_staggered_admission` (below)
//! asserts exactly that.
//!
//! The loop never blocks between steps on its own: [`SlotFeed::refill`]
//! may block waiting for work only while the table is empty. The feed is
//! also the delivery side ([`SlotFeed::complete`]) and the cancellation
//! side ([`SlotFeed::evict`]), so the whole scheduling policy lives with
//! the caller — `pp-core`'s engine scheduler drives this from its worker
//! threads, but the trait is deliberately freestanding (see the tests
//! for a scripted feed).

use crate::error::ModelError;
use crate::model::{randn, DiffusionModel, InpaintWorker, Parameterization};
use pp_geometry::GrayImage;
use pp_nn::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One job handed to a worker's slot table by a [`SlotFeed`].
///
/// The job set is shared (`Arc`) so admitting a slot copies no pixels;
/// `index` names the `(image, mask)` pair inside it. `seed` is the
/// *final* per-job seed (callers that derive per-job streams as
/// `request_seed ^ index` must do so before constructing the job —
/// the slot table never mixes anything else in, which is what keeps a
/// slot's output independent of batch grouping).
#[derive(Debug, Clone)]
pub struct SlotJob {
    /// Caller-chosen identifier, echoed back through
    /// [`SlotFeed::complete`] / [`SlotFeed::evict`]. Must be unique
    /// among the jobs in flight on one worker.
    pub tag: u64,
    /// The shared job set this slot's images live in.
    pub jobs: Arc<Vec<(GrayImage, GrayImage)>>,
    /// Index of this slot's `(image, mask)` pair within `jobs`.
    pub index: usize,
    /// The per-job RNG stream seed (already index-mixed by the caller).
    pub seed: u64,
}

/// The scheduling half of a slot-table worker: supplies jobs, receives
/// finished samples, and can evict in-flight slots.
///
/// Called from the worker's own thread, between DDIM steps — no method
/// may assume any other thread's progress, and only
/// [`SlotFeed::refill`] with an empty table may block.
pub trait SlotFeed {
    /// Asks for jobs to admit. `active` is the number of slots
    /// currently in flight; the feed bounds its own capacity by
    /// returning at most `capacity - active` jobs. Called before the
    /// first step and again after every step, so a returned job starts
    /// its DDIM loop at the very next pass, regardless of where other
    /// slots' cursors stand.
    ///
    /// Blocking (e.g. on a condition variable) is allowed **only when
    /// `active == 0`** — with slots in flight the loop must keep
    /// stepping them. Returning an empty `Vec` while `active == 0`
    /// ends the run loop.
    fn refill(&mut self, active: usize) -> Vec<SlotJob>;

    /// Delivers the finished sample for the slot tagged `tag`
    /// (composited, clamped to `[-1, 1]` — exactly what
    /// [`DiffusionModel::sample_inpaint`] returns for the same job and
    /// seed).
    fn complete(&mut self, tag: u64, sample: GrayImage);

    /// Polled once per step for every in-flight slot: returning `true`
    /// drops the slot without completing it (its remaining steps are
    /// reclaimed for other work). Default: never evict.
    fn evict(&mut self, _tag: u64) -> bool {
        false
    }

    /// Observability hook: called once per packed forward pass with the
    /// number of active slots in it. Default: no-op.
    fn on_step(&mut self, _active: usize) {}
}

/// One in-flight slot: a job, its evolving `x_t`, and its step cursor.
struct Slot {
    tag: u64,
    jobs: Arc<Vec<(GrayImage, GrayImage)>>,
    index: usize,
    x: Vec<f32>,
    cursor: usize,
}

impl InpaintWorker {
    /// Runs the continuous-batching slot loop until the feed runs dry.
    ///
    /// Each iteration: evict, refill from `feed`, then run **one** DDIM
    /// step for every active slot in a single packed network pass
    /// (per-slot timesteps), completing slots whose cursor reached the
    /// end. Per-slot results are bit-identical to
    /// [`DiffusionModel::sample_inpaint`] with the same `(image, mask,
    /// seed)` — admission order, co-resident slots and cursor skew
    /// never affect a sample (see the module docs for why).
    ///
    /// Returns when [`SlotFeed::refill`] yields nothing while the table
    /// is empty.
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when an admitted job's image or mask does
    /// not match the configured model size, or its index is out of
    /// bounds for its job set. In-flight slots are dropped without
    /// completion; callers treat this like a worker fault.
    pub fn run_slots(&mut self, feed: &mut dyn SlotFeed) -> Result<(), ModelError> {
        let model = Arc::clone(&self.model);
        model.slot_loop(&mut self.unet, feed)
    }
}

impl DiffusionModel {
    /// The slot-table DDIM core behind [`InpaintWorker::run_slots`].
    pub(crate) fn slot_loop(
        &self,
        unet: &mut crate::unet::UNet,
        feed: &mut dyn SlotFeed,
    ) -> Result<(), ModelError> {
        let cfg = self.config();
        let side = cfg.image as usize;
        let hw = side * side;
        let ts = self.schedule().ddim_timesteps(cfg.ddim_steps);
        let mut slots: Vec<Slot> = Vec::new();
        // The packed input is rebuilt only when table membership
        // changes (conditioning planes are per-slot static); plane 0
        // (x_t) is refreshed every step, as in the fixed-batch path.
        let mut input = Tensor::zeros([1, 3, side, side]);
        let mut members_dirty = true;
        let mut tvec: Vec<usize> = Vec::new();
        let mut x0_hat = vec![0.0f32; hw];
        loop {
            // Evict: the feed may retire in-flight slots (cancelled or
            // poisoned submissions) so their remaining steps are not
            // spent on output nobody will receive.
            let before = slots.len();
            slots.retain(|s| !feed.evict(s.tag));
            members_dirty |= slots.len() != before;

            // Refill free slots. A fresh slot joins the *next* pass at
            // cursor 0 while its neighbours keep their own cursors.
            let incoming = feed.refill(slots.len());
            if incoming.is_empty() && slots.is_empty() {
                return Ok(());
            }
            for job in incoming {
                let Some((image, mask)) = job.jobs.get(job.index) else {
                    return Err(ModelError::Shape {
                        what: "slot job index vs job set",
                        expected: job.jobs.len() as u32,
                        actual: job.index as u32,
                    });
                };
                self.check_image("slot image", image)?;
                self.check_image("slot mask", mask)?;
                let mut rng = StdRng::seed_from_u64(job.seed);
                slots.push(Slot {
                    tag: job.tag,
                    jobs: Arc::clone(&job.jobs),
                    index: job.index,
                    x: (0..hw).map(|_| randn(&mut rng)).collect(),
                    cursor: 0,
                });
                members_dirty = true;
            }

            // Zero-step schedules complete at admission; otherwise run
            // one packed pass with per-slot timesteps.
            if !ts.is_empty() {
                let b = slots.len();
                feed.on_step(b);
                if members_dirty {
                    input = Tensor::zeros([b, 3, side, side]);
                    for (bi, slot) in slots.iter().enumerate() {
                        let (image, mask) = &slot.jobs[slot.index];
                        let m = mask.as_pixels();
                        input.plane_mut(bi, 1).copy_from_slice(m);
                        let masked = input.plane_mut(bi, 2);
                        for (dst, (&v, &mm)) in
                            masked.iter_mut().zip(image.as_pixels().iter().zip(m))
                        {
                            *dst = if mm > 0.5 { 0.0 } else { v };
                        }
                    }
                    members_dirty = false;
                }
                tvec.clear();
                for (bi, slot) in slots.iter().enumerate() {
                    input.plane_mut(bi, 0).copy_from_slice(&slot.x);
                    tvec.push(ts[slot.cursor]);
                }
                let pred = unet.forward_infer(&input, &tvec);
                for (bi, slot) in slots.iter_mut().enumerate() {
                    // Per-slot step constants: each slot recovers x̂0 and
                    // advances with *its own* `t → s` pair, exactly the
                    // arithmetic `sample_chunk` applies batch-wide when
                    // every job shares one cursor.
                    let t = ts[slot.cursor];
                    let ab = self.schedule().alpha_bar(t);
                    let (sa, sn) = (ab.sqrt().max(1e-4), (1.0 - ab).sqrt());
                    let s = if slot.cursor + 1 < ts.len() {
                        ts[slot.cursor + 1]
                    } else {
                        usize::MAX
                    };
                    let (image, mask) = &slot.jobs[slot.index];
                    let x0_known = image.as_pixels();
                    let m = mask.as_pixels();
                    let pp = pred.plane(bi, 0);
                    for (j, xh) in x0_hat.iter_mut().enumerate() {
                        let x0_model = match cfg.parameterization {
                            Parameterization::X0 => pp[j],
                            Parameterization::Epsilon => (slot.x[j] - sn * pp[j]) / sa,
                        };
                        *xh = if m[j] > 0.5 {
                            x0_model.clamp(-1.0, 1.0)
                        } else {
                            x0_known[j]
                        };
                    }
                    self.schedule()
                        .ddim_step_in_place(&mut slot.x, &x0_hat, t, s);
                    slot.cursor += 1;
                }
                unet.recycle(pred);
            }

            // Complete finished slots (they free capacity for the next
            // refill, which runs before the next pass).
            let mut i = 0;
            while i < slots.len() {
                if slots[i].cursor >= ts.len() {
                    let slot = slots.remove(i);
                    let mut out = GrayImage::from_pixels(cfg.image, cfg.image, slot.x);
                    out.clamp(-1.0, 1.0);
                    feed.complete(slot.tag, out);
                    members_dirty = true;
                } else {
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DiffusionConfig;
    use std::collections::{BTreeMap, VecDeque};

    fn mixed_jobs(n: usize) -> Arc<Vec<(GrayImage, GrayImage)>> {
        Arc::new(
            (0..n)
                .map(|i| {
                    let mut image = GrayImage::filled(16, 16, -1.0);
                    for y in 0..16 {
                        image.set((i as u32) % 16, y, 1.0);
                    }
                    let mut mask = GrayImage::filled(16, 16, 0.0);
                    for y in 0..16 {
                        for x in (i as u32 % 8)..16 {
                            mask.set(x, y, 1.0);
                        }
                    }
                    (image, mask)
                })
                .collect(),
        )
    }

    /// A feed driven by a per-refill-call script: each call pops the
    /// next admission group (possibly empty, to skew cursors).
    struct ScriptFeed {
        jobs: Arc<Vec<(GrayImage, GrayImage)>>,
        seed: u64,
        script: VecDeque<Vec<usize>>,
        done: BTreeMap<u64, GrayImage>,
        evict_tags: Vec<u64>,
        widths: Vec<usize>,
    }

    impl ScriptFeed {
        fn new(jobs: Arc<Vec<(GrayImage, GrayImage)>>, seed: u64) -> ScriptFeed {
            ScriptFeed {
                jobs,
                seed,
                script: VecDeque::new(),
                done: BTreeMap::new(),
                evict_tags: Vec::new(),
                widths: Vec::new(),
            }
        }
    }

    impl SlotFeed for ScriptFeed {
        fn refill(&mut self, _active: usize) -> Vec<SlotJob> {
            self.script
                .pop_front()
                .unwrap_or_default()
                .into_iter()
                .map(|index| SlotJob {
                    tag: index as u64,
                    jobs: Arc::clone(&self.jobs),
                    index,
                    seed: self.seed ^ index as u64,
                })
                .collect()
        }

        fn complete(&mut self, tag: u64, sample: GrayImage) {
            assert!(
                self.done.insert(tag, sample).is_none(),
                "slot {tag} completed twice"
            );
        }

        fn evict(&mut self, tag: u64) -> bool {
            self.evict_tags.contains(&tag)
        }

        fn on_step(&mut self, active: usize) {
            self.widths.push(active);
        }
    }

    /// The load-bearing property: jobs admitted at different steps (so
    /// the packed passes mix cursor depths 0, 2, 5, ...) come out
    /// bit-identical to solo sampling with the same seed.
    #[test]
    fn slot_table_matches_solo_under_staggered_admission() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 21));
        let jobs = mixed_jobs(6);
        let seed = 0x5eed;
        let mut feed = ScriptFeed::new(Arc::clone(&jobs), seed);
        // Steps between admissions skew the cursors: jobs 0-1 start at
        // pass 1, job 2 two steps later, jobs 3-5 two steps after that
        // (tiny config has 3 DDIM steps, so groups overlap mid-flight).
        feed.script = VecDeque::from(vec![vec![0, 1], vec![], vec![2], vec![], vec![3, 4, 5]]);
        model.worker().run_slots(&mut feed).unwrap();
        assert_eq!(feed.done.len(), 6);
        for (i, (image, mask)) in jobs.iter().enumerate() {
            let solo = model.sample_inpaint(image, mask, seed ^ i as u64).unwrap();
            assert_eq!(
                feed.done[&(i as u64)],
                solo,
                "slot {i} diverged from the solo path"
            );
        }
        // The table genuinely merged: some pass held slots from more
        // than one admission group.
        assert!(
            feed.widths.iter().any(|&w| w >= 3),
            "no pass merged staggered admissions: {:?}",
            feed.widths
        );
    }

    /// One slot at a time (capacity-1 feed) is the degenerate case:
    /// strictly sequential, still solo-identical.
    #[test]
    fn single_slot_capacity_is_sequential_and_identical() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let jobs = mixed_jobs(3);
        let mut feed = ScriptFeed::new(Arc::clone(&jobs), 7);
        // Tiny config = 3 DDIM steps: a slot admitted alone finishes
        // after 3 refill calls, so space each admission 3 calls apart.
        feed.script = VecDeque::from(vec![
            vec![0],
            vec![],
            vec![],
            vec![1],
            vec![],
            vec![],
            vec![2],
        ]);
        model.worker().run_slots(&mut feed).unwrap();
        assert_eq!(feed.widths.iter().max(), Some(&1), "slots overlapped");
        for (i, (image, mask)) in jobs.iter().enumerate() {
            let solo = model.sample_inpaint(image, mask, 7 ^ i as u64).unwrap();
            assert_eq!(feed.done[&(i as u64)], solo);
        }
    }

    /// Evicted slots vanish without completing, and their neighbours
    /// are unaffected (still bit-identical).
    #[test]
    fn eviction_drops_a_slot_without_touching_neighbours() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let jobs = mixed_jobs(3);
        let mut feed = ScriptFeed::new(Arc::clone(&jobs), 3);
        feed.script = VecDeque::from(vec![vec![0, 1, 2]]);
        feed.evict_tags = vec![1];
        model.worker().run_slots(&mut feed).unwrap();
        assert!(!feed.done.contains_key(&1), "evicted slot completed");
        for i in [0usize, 2] {
            let (image, mask) = &jobs[i];
            let solo = model.sample_inpaint(image, mask, 3 ^ i as u64).unwrap();
            assert_eq!(feed.done[&(i as u64)], solo);
        }
    }

    /// Shape violations surface as typed errors, not panics, and stop
    /// the loop.
    #[test]
    fn bad_shapes_and_indices_error_out() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let bad = Arc::new(vec![(
            GrayImage::filled(8, 8, -1.0),
            GrayImage::filled(16, 16, 1.0),
        )]);
        let mut feed = ScriptFeed::new(Arc::clone(&bad), 0);
        feed.script = VecDeque::from(vec![vec![0]]);
        assert!(matches!(
            model.worker().run_slots(&mut feed).unwrap_err(),
            ModelError::Shape { .. }
        ));
        // Out-of-bounds index: same typed failure.
        let jobs = mixed_jobs(1);
        let mut feed = ScriptFeed::new(jobs, 0);
        feed.script = VecDeque::from(vec![vec![5]]);
        assert!(matches!(
            model.worker().run_slots(&mut feed).unwrap_err(),
            ModelError::Shape { .. }
        ));
    }

    /// An empty feed ends the loop immediately.
    #[test]
    fn empty_feed_is_a_clean_noop() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let mut feed = ScriptFeed::new(mixed_jobs(1), 0);
        model.worker().run_slots(&mut feed).unwrap();
        assert!(feed.done.is_empty());
        assert!(feed.widths.is_empty());
    }
}
