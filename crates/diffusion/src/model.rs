//! Training, finetuning and sampling.

use crate::ema::EmaShadow;
use crate::error::ModelError;
use crate::schedule::{BetaSchedule, NoiseSchedule};
use crate::stream::{CancelToken, InpaintStream, MicroBatch};
use crate::unet::{UNet, UNetConfig};
use pp_geometry::GrayImage;
use pp_nn::{Adam, Layer, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::{mpsc, Arc};

/// What the denoiser network predicts.
///
/// x0-prediction is markedly more stable at the few DDIM steps used on
/// near-binary layout images (the repository default); ε-prediction is
/// the classic DDPM objective, kept for the ablation called out in
/// DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Parameterization {
    /// Predict the clean image `x̂0`.
    #[default]
    X0,
    /// Predict the added noise `ε̂`.
    Epsilon,
}

/// Hyperparameters of a diffusion model instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffusionConfig {
    /// Image side length (divisible by 4).
    pub image: u32,
    /// U-Net base channels.
    pub base_ch: usize,
    /// Time-embedding dimension.
    pub time_dim: usize,
    /// Diffusion horizon T.
    pub t_max: usize,
    /// β-schedule family.
    pub schedule: BetaSchedule,
    /// DDIM steps used at sampling time.
    pub ddim_steps: usize,
    /// Network prediction target.
    pub parameterization: Parameterization,
}

impl DiffusionConfig {
    /// The configuration used by the main experiments.
    pub fn standard(image: u32) -> Self {
        DiffusionConfig {
            image,
            base_ch: 16,
            time_dim: 32,
            t_max: 100,
            schedule: BetaSchedule::Cosine,
            ddim_steps: 8,
            parameterization: Parameterization::X0,
        }
    }

    /// A minimal configuration for tests.
    pub fn tiny(image: u32) -> Self {
        DiffusionConfig {
            image,
            base_ch: 2,
            time_dim: 4,
            t_max: 10,
            schedule: BetaSchedule::Linear,
            ddim_steps: 3,
            parameterization: Parameterization::X0,
        }
    }
}

/// Summary of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Optimiser steps executed.
    pub steps: usize,
    /// Loss of the final step.
    pub final_loss: f32,
    /// Mean loss over the last quarter of training.
    pub tail_loss: f32,
}

/// A trainable pixel-space inpainting diffusion model.
///
/// See the crate docs for the role this plays; the API mirrors the
/// paper's workflow: [`DiffusionModel::train`] (pretraining on the
/// foundation corpus), [`DiffusionModel::finetune`] (DreamBooth-style
/// few-shot adaptation with prior preservation) and
/// [`DiffusionModel::sample_inpaint`] (mask-conditioned generation).
#[derive(Debug, Clone)]
pub struct DiffusionModel {
    cfg: DiffusionConfig,
    pub(crate) unet: UNet,
    schedule: NoiseSchedule,
}

/// Standard-normal sample via Box-Muller.
pub(crate) fn randn(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7f32..1.0);
    let u2: f32 = rng.gen_range(0.0f32..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

impl DiffusionModel {
    /// Creates an untrained model.
    pub fn new(cfg: DiffusionConfig, seed: u64) -> Self {
        let unet_cfg = UNetConfig {
            image: cfg.image,
            base_ch: cfg.base_ch,
            time_dim: cfg.time_dim,
        };
        DiffusionModel {
            cfg,
            unet: UNet::new(unet_cfg, cfg.t_max, seed),
            schedule: NoiseSchedule::new(cfg.t_max, cfg.schedule),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> DiffusionConfig {
        self.cfg
    }

    /// The noise schedule.
    pub fn schedule(&self) -> &NoiseSchedule {
        &self.schedule
    }

    /// Total parameter count of the denoiser.
    pub fn param_count(&mut self) -> usize {
        self.unet.param_count()
    }

    /// Serialises the denoiser weights (little-endian f32 stream with a
    /// small header).
    ///
    /// This is the raw weight payload; [`crate::save_checkpoint`] wraps
    /// it in a versioned header (format version, shape manifest,
    /// checksum) for durable artifact stores.
    ///
    /// # Errors
    ///
    /// [`ModelError::Io`] naming the section whose write failed; `&mut
    /// W` works wherever `W: Write` is expected.
    pub fn save_weights<W: std::io::Write>(&mut self, mut writer: W) -> Result<(), ModelError> {
        writer
            .write_all(b"PPDM")
            .map_err(ModelError::io("weights: magic"))?;
        let mut bufs: Vec<Vec<f32>> = Vec::new();
        self.unet.visit_params(&mut |p| bufs.push(p.value.clone()));
        writer
            .write_all(&(bufs.len() as u32).to_le_bytes())
            .map_err(ModelError::io("weights: tensor count"))?;
        let total = bufs.len();
        for (i, b) in bufs.into_iter().enumerate() {
            let section = || format!("weights: tensor {i} of {total}");
            writer
                .write_all(&(b.len() as u32).to_le_bytes())
                .map_err(ModelError::io(section()))?;
            for v in b {
                writer
                    .write_all(&v.to_le_bytes())
                    .map_err(ModelError::io(section()))?;
            }
        }
        Ok(())
    }

    /// Loads weights saved by [`DiffusionModel::save_weights`] into this
    /// model (architectures must match).
    ///
    /// The whole stream is read and validated against this model's
    /// parameter shapes *before* anything is applied: a truncated,
    /// mis-sized or wrong-architecture stream leaves the current
    /// weights untouched rather than half-overwritten.
    ///
    /// # Errors
    ///
    /// [`ModelError::Corrupt`] on a bad magic or a tensor count/length
    /// that disagrees with this architecture; [`ModelError::Io`]
    /// (naming the section) when the reader fails or runs dry.
    pub fn load_weights<R: std::io::Read>(&mut self, mut reader: R) -> Result<(), ModelError> {
        let mut expected: Vec<usize> = Vec::new();
        self.unet
            .visit_params(&mut |p| expected.push(p.value.len()));
        let mut magic = [0u8; 4];
        reader
            .read_exact(&mut magic)
            .map_err(ModelError::io("weights: magic"))?;
        if &magic != b"PPDM" {
            return Err(ModelError::corrupt(
                "weights: magic",
                format!("expected \"PPDM\", got {magic:?}"),
            ));
        }
        let mut u32buf = [0u8; 4];
        reader
            .read_exact(&mut u32buf)
            .map_err(ModelError::io("weights: tensor count"))?;
        let count = u32::from_le_bytes(u32buf) as usize;
        if count != expected.len() {
            return Err(ModelError::corrupt(
                "weights: tensor count",
                format!(
                    "stream has {count} tensors, architecture has {}",
                    expected.len()
                ),
            ));
        }
        let mut bufs = Vec::with_capacity(count);
        for (i, &want) in expected.iter().enumerate() {
            let section = || format!("weights: tensor {i} of {count}");
            reader
                .read_exact(&mut u32buf)
                .map_err(ModelError::io(section()))?;
            let len = u32::from_le_bytes(u32buf) as usize;
            if len != want {
                return Err(ModelError::corrupt(
                    section(),
                    format!("stream tensor holds {len} values, architecture expects {want}"),
                ));
            }
            let mut bytes = vec![0u8; len * 4];
            reader
                .read_exact(&mut bytes)
                .map_err(ModelError::io(section()))?;
            let vals: Vec<f32> = bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            bufs.push(vals);
        }
        // Everything validated: applying cannot fail halfway.
        let mut i = 0;
        self.unet.visit_params(&mut |p| {
            p.value.copy_from_slice(&bufs[i]);
            i += 1;
        });
        Ok(())
    }

    /// Checks one input image against the configured model size.
    pub(crate) fn check_image(
        &self,
        what: &'static str,
        img: &GrayImage,
    ) -> Result<(), ModelError> {
        for side in [img.width(), img.height()] {
            if side != self.cfg.image {
                return Err(ModelError::Shape {
                    what,
                    expected: self.cfg.image,
                    actual: side,
                });
            }
        }
        Ok(())
    }

    /// Pretrains (or continues training) on a corpus with random masks.
    ///
    /// This is the stand-in for the web-scale pretraining behind the
    /// paper's `stablediffusion-inpaint` checkpoints: the corpus comes
    /// from `pp-pdk::foundation_corpus`. Returns a [`TrainReport`].
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] on an empty corpus, [`ModelError::Shape`]
    /// when a corpus image does not match the configured size.
    pub fn train(
        &mut self,
        corpus: &[GrayImage],
        steps: usize,
        batch: usize,
        lr: f32,
        seed: u64,
    ) -> Result<TrainReport, ModelError> {
        if corpus.is_empty() {
            return Err(ModelError::Empty("training corpus"));
        }
        for img in corpus {
            self.check_image("training image", img)?;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(lr);
        self.run_steps(corpus, &[], 1.0, batch, 0, steps, &mut opt, &mut rng, None)
    }

    /// DreamBooth-style few-shot finetuning with prior preservation
    /// (paper Eq. 7): each step mixes starter samples (weight 1) with
    /// prior-class samples (weight λ) generated by the model *before*
    /// finetuning.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] when `starters` is empty,
    /// [`ModelError::Shape`] when a starter or prior image does not
    /// match the configured size.
    #[allow(clippy::too_many_arguments)]
    pub fn finetune(
        &mut self,
        starters: &[GrayImage],
        prior: &[GrayImage],
        lambda: f32,
        steps: usize,
        batch: usize,
        lr: f32,
        seed: u64,
    ) -> Result<TrainReport, ModelError> {
        if starters.is_empty() {
            return Err(ModelError::Empty("starter set"));
        }
        for img in starters.iter().chain(prior) {
            self.check_image("finetuning image", img)?;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Adam::new(lr);
        let (n_start, n_prior) = mix_split(batch, prior.is_empty());
        self.run_steps(
            starters, prior, lambda, n_start, n_prior, steps, &mut opt, &mut rng, None,
        )
    }

    /// One epoch of `steps` optimiser steps over a prior-preserving
    /// batch mix, driving caller-owned optimiser, RNG and (optionally)
    /// EMA shadow state — the resumable unit `pp-core`'s trainer
    /// checkpoints between. With `prior` empty the mix degenerates to
    /// uniform sampling at weight 1 (pretraining); otherwise each step
    /// mixes starters (weight 1) with prior samples (weight `lambda`),
    /// exactly as [`DiffusionModel::finetune`] does — all three entry
    /// points share one loop.
    ///
    /// Determinism contract: given identical weights, optimiser state,
    /// EMA state and RNG, an epoch is a pure function — the trainer's
    /// bit-identical-resume guarantee rests on it.
    ///
    /// # Errors
    ///
    /// [`ModelError::Empty`] when `starters` is empty,
    /// [`ModelError::Shape`] when an image does not match the
    /// configured size or the EMA shadow predates a different
    /// architecture.
    #[allow(clippy::too_many_arguments)]
    pub fn train_epoch(
        &mut self,
        starters: &[GrayImage],
        prior: &[GrayImage],
        lambda: f32,
        steps: usize,
        batch: usize,
        opt: &mut Adam,
        rng: &mut StdRng,
        ema: Option<&mut EmaShadow>,
    ) -> Result<TrainReport, ModelError> {
        if starters.is_empty() {
            return Err(ModelError::Empty("training set"));
        }
        for img in starters.iter().chain(prior) {
            self.check_image("training image", img)?;
        }
        let (n_start, n_prior) = mix_split(batch, prior.is_empty());
        self.run_steps(
            starters, prior, lambda, n_start, n_prior, steps, opt, rng, ema,
        )
    }

    /// The one training loop behind [`DiffusionModel::train`],
    /// [`DiffusionModel::finetune`] and [`DiffusionModel::train_epoch`]:
    /// sample a weighted mix, take an optimiser step, fold the EMA.
    /// Inputs are pre-validated by the public entry points.
    #[allow(clippy::too_many_arguments)]
    fn run_steps(
        &mut self,
        starters: &[GrayImage],
        prior: &[GrayImage],
        lambda: f32,
        n_start: usize,
        n_prior: usize,
        steps: usize,
        opt: &mut Adam,
        rng: &mut StdRng,
        mut ema: Option<&mut EmaShadow>,
    ) -> Result<TrainReport, ModelError> {
        let mut losses = Vec::with_capacity(steps);
        for _ in 0..steps {
            let mut refs: Vec<&GrayImage> = Vec::with_capacity(n_start + n_prior);
            let mut weights = Vec::with_capacity(n_start + n_prior);
            for _ in 0..n_start {
                refs.push(&starters[rng.gen_range(0..starters.len())]);
                weights.push(1.0);
            }
            for _ in 0..n_prior {
                refs.push(&prior[rng.gen_range(0..prior.len())]);
                weights.push(lambda);
            }
            let loss = self.train_step(&refs, &weights, opt, rng);
            losses.push(loss);
            if let Some(shadow) = ema.as_deref_mut() {
                shadow.update(self)?;
            }
        }
        Ok(report_from(&losses))
    }

    /// One optimiser step on a weighted batch; returns the batch loss.
    fn train_step(
        &mut self,
        images: &[&GrayImage],
        weights: &[f32],
        opt: &mut Adam,
        rng: &mut StdRng,
    ) -> f32 {
        let side = self.cfg.image as usize;
        let hw = side * side;
        let n = images.len();
        let mut input = Tensor::zeros([n, 3, side, side]);
        let mut target = Tensor::zeros([n, 1, side, side]);
        let mut ts = Vec::with_capacity(n);
        for (b, img) in images.iter().enumerate() {
            debug_assert_eq!(
                img.width(),
                self.cfg.image,
                "validated by the public entry points"
            );
            let x0 = img.as_pixels();
            let t = rng.gen_range(0..self.cfg.t_max);
            ts.push(t);
            let noise: Vec<f32> = (0..hw).map(|_| randn(rng)).collect();
            let xt = self.schedule.q_sample(x0, t, &noise);
            let mask = random_mask(self.cfg.image, rng);
            input.plane_mut(b, 0).copy_from_slice(&xt);
            input.plane_mut(b, 1).copy_from_slice(&mask);
            let masked: Vec<f32> = x0
                .iter()
                .zip(&mask)
                .map(|(&v, &m)| if m > 0.5 { 0.0 } else { v })
                .collect();
            input.plane_mut(b, 2).copy_from_slice(&masked);
            match self.cfg.parameterization {
                Parameterization::X0 => target.plane_mut(b, 0).copy_from_slice(x0),
                Parameterization::Epsilon => target.plane_mut(b, 0).copy_from_slice(&noise),
            }
        }
        self.unet.zero_grad();
        let pred = self.unet.forward(input, &ts);
        // Weighted MSE on x̂0.
        let mut loss = 0.0f32;
        let mut grad = Tensor::zeros(pred.shape());
        for (b, &weight) in weights.iter().enumerate() {
            let w = weight / (n * hw) as f32;
            let pp = pred.plane(b, 0);
            let tp = target.plane(b, 0);
            let gp = grad.plane_mut(b, 0);
            for i in 0..hw {
                let e = pp[i] - tp[i];
                loss += w * e * e;
                gp[i] = 2.0 * w * e;
            }
        }
        let _ = self.unet.backward(grad);
        opt.step(&mut self.unet);
        loss
    }

    /// Inpaints the masked region of `image` (mask pixels of 1 are
    /// regenerated, 0 kept), returning the composited result in
    /// `[-1, 1]`.
    ///
    /// Implements the paper's Eq. 8 conditioning: at every DDIM step the
    /// model's `x̂0` is composited with the known pixels before the
    /// update, so the reverse process is steered by the surrounding
    /// design-rule context.
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when the image or mask does not match the
    /// configured size.
    pub fn sample_inpaint(
        &self,
        image: &GrayImage,
        mask: &GrayImage,
        seed: u64,
    ) -> Result<GrayImage, ModelError> {
        self.check_image("inpainting image", image)?;
        self.check_image("inpainting mask", mask)?;
        let mut unet = self.unet.clone();
        Ok(self
            .sample_chunk(&mut unet, &[(image, mask)], &[seed])
            .pop()
            .expect("one job in, one sample out"))
    }

    /// Batch inpainting across worker threads: each worker packs its
    /// whole chunk of jobs into one `[B, 3, H, W]` tensor and runs every
    /// DDIM step over the micro-batch, amortising im2col + GEMM across
    /// jobs. Results keep job order and are bit-identical to calling
    /// [`DiffusionModel::sample_inpaint`] per job with seed
    /// `seed ^ job_index`.
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when any job image or mask does not match
    /// the configured size.
    pub fn sample_inpaint_batch(
        &self,
        jobs: &[(GrayImage, GrayImage)],
        seed: u64,
        threads: usize,
    ) -> Result<Vec<GrayImage>, ModelError> {
        self.sample_inpaint_batch_sized(jobs, seed, threads, 0)
    }

    /// [`DiffusionModel::sample_inpaint_batch`] with an explicit
    /// micro-batch cap: each worker splits its chunk into groups of at
    /// most `batch_size` jobs per network pass (`0` = the whole chunk),
    /// trading peak activation memory against per-pass overhead.
    ///
    /// Implemented as a full collect of
    /// [`DiffusionModel::sample_inpaint_stream`], so the blocking and
    /// streaming paths cannot drift apart. The convenience costs one
    /// weight + job-image copy per call (the workers need owned data);
    /// callers on a hot path should hold the model in an `Arc` and use
    /// the stream directly, as `pp-core`'s sampler does.
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when any job image or mask does not match
    /// the configured size.
    pub fn sample_inpaint_batch_sized(
        &self,
        jobs: &[(GrayImage, GrayImage)],
        seed: u64,
        threads: usize,
        batch_size: usize,
    ) -> Result<Vec<GrayImage>, ModelError> {
        let stream = Arc::new(self.clone()).sample_inpaint_stream(
            jobs.to_vec(),
            seed,
            threads,
            batch_size,
            0,
            CancelToken::new(),
        )?;
        let mut out = Vec::with_capacity(jobs.len());
        for mb in stream {
            debug_assert_eq!(mb.start, out.len(), "stream must deliver in job order");
            out.extend(mb.samples);
        }
        Ok(out)
    }

    /// Streams batched inpainting results as they complete.
    ///
    /// The worker layout, micro-batching and per-job seed derivation
    /// (`seed ^ job_index`) are identical to
    /// [`DiffusionModel::sample_inpaint_batch_sized`], so every job's
    /// output is bit-identical to the blocking path; only the delivery
    /// differs. Micro-batches arrive strictly in job order.
    ///
    /// `capacity` bounds each worker's channel in micro-batches
    /// (backpressure for slow consumers); `0` sizes the channel to the
    /// worker's whole chunk so sampling never blocks on delivery.
    /// `cancel` is checked between micro-batches: after cancellation no
    /// new micro-batch starts, but finished ones still reach the
    /// consumer (partial results).
    ///
    /// Takes `&Arc<Self>` so the workers share the caller's allocation
    /// — a stream costs no weight copy beyond each worker's private
    /// U-Net workspace clone.
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when any job image or mask does not match
    /// the configured size.
    pub fn sample_inpaint_stream(
        self: &Arc<Self>,
        jobs: Vec<(GrayImage, GrayImage)>,
        seed: u64,
        threads: usize,
        batch_size: usize,
        capacity: usize,
        cancel: CancelToken,
    ) -> Result<InpaintStream, ModelError> {
        for (img, mask) in &jobs {
            self.check_image("inpainting image", img)?;
            self.check_image("inpainting mask", mask)?;
        }
        let total = jobs.len();
        if total == 0 {
            return Ok(InpaintStream::new(Vec::new(), Vec::new(), 0));
        }
        let threads = threads.max(1).min(total);
        let per_worker = total.div_ceil(threads);
        let micro = if batch_size == 0 {
            per_worker
        } else {
            batch_size
        };
        let model = Arc::clone(self);
        let jobs = Arc::new(jobs);
        let mut rxs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let start = w * per_worker;
            let end = ((w + 1) * per_worker).min(total);
            let chunk_batches = (end - start).div_ceil(micro);
            let cap = if capacity == 0 {
                chunk_batches
            } else {
                capacity
            }
            .max(1);
            let (tx, rx) = mpsc::sync_channel(cap);
            rxs.push(rx);
            let model = Arc::clone(&model);
            let jobs = Arc::clone(&jobs);
            let cancel = cancel.clone();
            handles.push(std::thread::spawn(move || {
                let mut unet = model.unet.clone();
                let mut done = start;
                while done < end {
                    if cancel.is_cancelled() {
                        break;
                    }
                    let take = micro.min(end - done);
                    let refs: Vec<(&GrayImage, &GrayImage)> = jobs[done..done + take]
                        .iter()
                        .map(|(i, m)| (i, m))
                        .collect();
                    let seeds: Vec<u64> = (done..done + take).map(|i| seed ^ i as u64).collect();
                    let samples = model.sample_chunk(&mut unet, &refs, &seeds);
                    // A send error means the consumer dropped the stream.
                    if tx
                        .send(MicroBatch {
                            start: done,
                            samples,
                        })
                        .is_err()
                    {
                        break;
                    }
                    done += take;
                }
            }));
        }
        Ok(InpaintStream::new(rxs, handles, total))
    }

    /// Binds a sampling worker to this shared model snapshot.
    ///
    /// An [`InpaintWorker`] owns a private U-Net clone (its own
    /// workspace buffers), so many workers can run micro-batches against
    /// one model concurrently without locking — this is the primitive
    /// the engine scheduler in `pp-core` fans multiple sessions'
    /// requests onto. Job outputs depend only on `(image, mask, seed)`,
    /// never on how jobs are grouped into micro-batches, so any
    /// scheduling of the same jobs yields bit-identical samples.
    pub fn worker(self: &Arc<Self>) -> InpaintWorker {
        InpaintWorker {
            unet: self.unet.clone(),
            model: Arc::clone(self),
        }
    }

    /// Unconditional samples (full mask over a blank canvas) — used to
    /// build the prior-preservation set before finetuning.
    pub fn sample_prior(&self, n: usize, seed: u64) -> Vec<GrayImage> {
        let blank = GrayImage::filled(self.cfg.image, self.cfg.image, -1.0);
        let full = GrayImage::filled(self.cfg.image, self.cfg.image, 1.0);
        let jobs: Vec<(GrayImage, GrayImage)> =
            (0..n).map(|_| (blank.clone(), full.clone())).collect();
        self.sample_inpaint_batch(&jobs, seed ^ 0x9e3779b9, 2)
            .expect("prior jobs are well-formed by construction")
    }

    /// The batched DDIM core: runs `jobs` (image, mask pairs) through
    /// the reverse process together, one network pass per step for the
    /// whole micro-batch.
    ///
    /// Per-job noise comes from an RNG stream seeded by `seeds[i]`, and
    /// every per-pixel operation is sample-local, so each job's output
    /// is bit-identical to running it alone with the same seed. The
    /// input tensor is built once and only its noisy-image planes are
    /// rewritten per step; combined with the U-Net's pooled inference
    /// path, a warmed-up loop allocates nothing per step.
    fn sample_chunk(
        &self,
        unet: &mut UNet,
        jobs: &[(&GrayImage, &GrayImage)],
        seeds: &[u64],
    ) -> Vec<GrayImage> {
        assert_eq!(jobs.len(), seeds.len(), "one seed per job");
        let b = jobs.len();
        let side = self.cfg.image as usize;
        let hw = side * side;

        // Static conditioning planes (mask, masked image) are written
        // once; plane 0 (x_t) is refreshed every step.
        let mut input = Tensor::zeros([b, 3, side, side]);
        let mut xs: Vec<Vec<f32>> = Vec::with_capacity(b);
        for (bi, ((image, mask), &job_seed)) in jobs.iter().zip(seeds).enumerate() {
            debug_assert_eq!(
                image.width(),
                self.cfg.image,
                "validated by the public entry points"
            );
            debug_assert_eq!(
                mask.width(),
                self.cfg.image,
                "validated by the public entry points"
            );
            let m = mask.as_pixels();
            input.plane_mut(bi, 1).copy_from_slice(m);
            let masked = input.plane_mut(bi, 2);
            for (dst, (&v, &mm)) in masked.iter_mut().zip(image.as_pixels().iter().zip(m)) {
                *dst = if mm > 0.5 { 0.0 } else { v };
            }
            let mut rng = StdRng::seed_from_u64(job_seed);
            xs.push((0..hw).map(|_| randn(&mut rng)).collect());
        }

        let ts = self.schedule.ddim_timesteps(self.cfg.ddim_steps);
        let mut tvec = vec![0usize; b];
        let mut x0_hat = vec![0.0f32; hw];
        for (i, &t) in ts.iter().enumerate() {
            for (bi, x) in xs.iter().enumerate() {
                input.plane_mut(bi, 0).copy_from_slice(x);
            }
            tvec.fill(t);
            let pred = unet.forward_infer(&input, &tvec);
            // Recover x̂0 from the network output (ε-models via
            // x̂0 = (x_t − √(1−ᾱ)·ε̂)/√ᾱ), then composite the known
            // region into the prediction (Eq. 8).
            let ab = self.schedule.alpha_bar(t);
            let (sa, sn) = (ab.sqrt().max(1e-4), (1.0 - ab).sqrt());
            let s = if i + 1 < ts.len() {
                ts[i + 1]
            } else {
                usize::MAX
            };
            for (bi, ((image, mask), x)) in jobs.iter().zip(&mut xs).enumerate() {
                let x0_known = image.as_pixels();
                let m = mask.as_pixels();
                let pp = pred.plane(bi, 0);
                for (j, xh) in x0_hat.iter_mut().enumerate() {
                    let x0_model = match self.cfg.parameterization {
                        Parameterization::X0 => pp[j],
                        Parameterization::Epsilon => (x[j] - sn * pp[j]) / sa,
                    };
                    *xh = if m[j] > 0.5 {
                        x0_model.clamp(-1.0, 1.0)
                    } else {
                        x0_known[j]
                    };
                }
                self.schedule.ddim_step_in_place(x, &x0_hat, t, s);
            }
            unet.recycle(pred);
        }
        xs.into_iter()
            .map(|x| {
                let mut out = GrayImage::from_pixels(self.cfg.image, self.cfg.image, x);
                out.clamp(-1.0, 1.0);
                out
            })
            .collect()
    }
}

/// A sampling worker bound to a shared [`DiffusionModel`] snapshot.
///
/// Holds the model behind `Arc` plus a private U-Net clone whose
/// workspace buffers warm up across calls, exactly like the workers
/// behind [`DiffusionModel::sample_inpaint_stream`]. Obtained from
/// [`DiffusionModel::worker`]; external schedulers drive one worker per
/// thread and hand each call whatever micro-batch they chose — results
/// are bit-identical to any other grouping of the same `(job, seed)`
/// pairs.
#[derive(Debug)]
pub struct InpaintWorker {
    pub(crate) model: Arc<DiffusionModel>,
    pub(crate) unet: UNet,
}

impl InpaintWorker {
    /// The model this worker samples from.
    pub fn model(&self) -> &DiffusionModel {
        &self.model
    }

    /// Runs one micro-batch: job `i` is inpainted with RNG stream
    /// `seeds[i]`, and outputs keep job order.
    ///
    /// # Errors
    ///
    /// [`ModelError::Shape`] when a job image or mask does not match
    /// the configured size.
    ///
    /// # Panics
    ///
    /// Panics when `jobs.len() != seeds.len()`.
    pub fn run(
        &mut self,
        jobs: &[(&GrayImage, &GrayImage)],
        seeds: &[u64],
    ) -> Result<Vec<GrayImage>, ModelError> {
        assert_eq!(jobs.len(), seeds.len(), "one seed per job");
        for (img, mask) in jobs {
            self.model.check_image("inpainting image", img)?;
            self.model.check_image("inpainting mask", mask)?;
        }
        Ok(self.model.sample_chunk(&mut self.unet, jobs, seeds))
    }
}

/// Splits a batch between starter and prior draws: with a prior set,
/// half the batch (at least one) preserves the prior class (paper
/// Eq. 7); without one, everything comes from the starters.
fn mix_split(batch: usize, prior_empty: bool) -> (usize, usize) {
    let n_prior = if prior_empty { 0 } else { (batch / 2).max(1) };
    let n_start = batch.saturating_sub(n_prior).max(1);
    (n_start, n_prior)
}

/// A random training mask: mostly local rectangles (~the 25 % regions
/// used at inference), sometimes a full mask (keeps unconditional
/// generation working for the prior set).
fn random_mask(image: u32, rng: &mut StdRng) -> Vec<f32> {
    let side = image as usize;
    let mut mask = vec![0.0f32; side * side];
    if rng.gen_bool(0.15) {
        mask.fill(1.0);
        return mask;
    }
    let w = rng.gen_range(side / 4..=side / 2 + 1);
    let h = rng.gen_range(side / 4..=side / 2 + 1);
    let x0 = rng.gen_range(0..=side - w);
    let y0 = rng.gen_range(0..=side - h);
    for y in y0..y0 + h {
        for x in x0..x0 + w {
            mask[y * side + x] = 1.0;
        }
    }
    mask
}

fn report_from(losses: &[f32]) -> TrainReport {
    let tail = &losses[losses.len() - losses.len() / 4 - 1..];
    TrainReport {
        steps: losses.len(),
        final_loss: *losses.last().unwrap_or(&0.0),
        tail_loss: tail.iter().sum::<f32>() / tail.len() as f32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus(image: u32) -> Vec<GrayImage> {
        // Vertical stripes at two positions.
        let mut a = GrayImage::filled(image, image, -1.0);
        let mut b = GrayImage::filled(image, image, -1.0);
        for y in 0..image {
            for x in 2..5 {
                a.set(x, y, 1.0);
            }
            for x in 9..12 {
                b.set(x, y, 1.0);
            }
        }
        vec![a, b]
    }

    #[test]
    fn training_reduces_loss() {
        let mut model = DiffusionModel::new(DiffusionConfig::tiny(16), 1);
        let corpus = tiny_corpus(16);
        let report = model.train(&corpus, 60, 2, 3e-3, 0).unwrap();
        assert_eq!(report.steps, 60);
        assert!(
            report.tail_loss < 0.5,
            "tail loss did not drop: {}",
            report.tail_loss
        );
    }

    #[test]
    fn inpainting_preserves_known_region() {
        let mut model = DiffusionModel::new(DiffusionConfig::tiny(16), 2);
        let corpus = tiny_corpus(16);
        let _ = model.train(&corpus, 30, 2, 3e-3, 1).unwrap();
        let image = corpus[0].clone();
        // Mask only the right half.
        let mut mask = GrayImage::filled(16, 16, 0.0);
        for y in 0..16 {
            for x in 8..16 {
                mask.set(x, y, 1.0);
            }
        }
        let out = model.sample_inpaint(&image, &mask, 7).unwrap();
        for y in 0..16 {
            for x in 0..8 {
                assert_eq!(out.get(x, y), image.get(x, y), "known pixel changed");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let model = DiffusionModel::new(DiffusionConfig::tiny(16), 3);
        let image = GrayImage::filled(16, 16, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        let a = model.sample_inpaint(&image, &mask, 42).unwrap();
        let b = model.sample_inpaint(&image, &mask, 42).unwrap();
        let c = model.sample_inpaint(&image, &mask, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn batch_matches_sequential() {
        let model = DiffusionModel::new(DiffusionConfig::tiny(16), 4);
        let image = GrayImage::filled(16, 16, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        let jobs = vec![(image.clone(), mask.clone()), (image.clone(), mask.clone())];
        let batch = model.sample_inpaint_batch(&jobs, 9, 2).unwrap();
        let solo0 = model.sample_inpaint(&image, &mask, 9).unwrap();
        let solo1 = model.sample_inpaint(&image, &mask, 9 ^ 1).unwrap();
        assert_eq!(batch[0], solo0);
        assert_eq!(batch[1], solo1);
    }

    /// A job set with per-job distinct images, masks and RNG streams.
    fn mixed_jobs(n: usize) -> Vec<(GrayImage, GrayImage)> {
        (0..n)
            .map(|i| {
                let mut image = GrayImage::filled(16, 16, -1.0);
                for y in 0..16 {
                    image.set((i as u32) % 16, y, 1.0);
                }
                let mut mask = GrayImage::filled(16, 16, 0.0);
                // Different region per job; always non-empty.
                for y in 0..16 {
                    for x in (i as u32 % 8)..16 {
                        mask.set(x, y, 1.0);
                    }
                }
                (image, mask)
            })
            .collect()
    }

    /// Batched sampling must be bit-identical to the solo path for every
    /// batch width — including widths that split unevenly across
    /// workers (7 jobs over 2 threads → chunks of 4 and 3) and
    /// micro-batch caps that leave ragged tails (batch_size 3 over a
    /// 4-job chunk → passes of 3 and 1).
    #[test]
    fn batch_bit_identical_for_all_widths_and_chunkings() {
        let model = DiffusionModel::new(DiffusionConfig::tiny(16), 8);
        for &b in &[1usize, 3, 7] {
            let jobs = mixed_jobs(b);
            let solo: Vec<GrayImage> = jobs
                .iter()
                .enumerate()
                .map(|(i, (img, mask))| model.sample_inpaint(img, mask, 0x5a ^ i as u64).unwrap())
                .collect();
            for &threads in &[1usize, 2, 3] {
                for &batch_size in &[0usize, 1, 3] {
                    let batched = model
                        .sample_inpaint_batch_sized(&jobs, 0x5a, threads, batch_size)
                        .unwrap();
                    assert_eq!(
                        batched, solo,
                        "divergence at B={b} threads={threads} batch_size={batch_size}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let model = DiffusionModel::new(DiffusionConfig::tiny(16), 4);
        assert!(model.sample_inpaint_batch(&[], 1, 4).unwrap().is_empty());
    }

    #[test]
    fn stream_delivers_in_order_and_matches_batch() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let jobs = mixed_jobs(7);
        let batch = model.sample_inpaint_batch_sized(&jobs, 0x77, 2, 2).unwrap();
        let stream = model
            .sample_inpaint_stream(jobs.clone(), 0x77, 2, 2, 1, CancelToken::new())
            .unwrap();
        assert_eq!(stream.total_jobs(), 7);
        let mut streamed = Vec::new();
        for mb in stream {
            assert_eq!(mb.start, streamed.len(), "out-of-order micro-batch");
            streamed.extend(mb.samples);
        }
        assert_eq!(streamed, batch);
    }

    #[test]
    fn pre_cancelled_stream_yields_nothing() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let cancel = CancelToken::new();
        cancel.cancel();
        let stream = model
            .sample_inpaint_stream(mixed_jobs(6), 3, 2, 1, 1, cancel)
            .unwrap();
        assert_eq!(stream.count(), 0);
    }

    #[test]
    fn mid_stream_cancel_stops_early_with_partial_results() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let cancel = CancelToken::new();
        // batch_size 1 and capacity 1 bound how far workers run ahead:
        // at most (1 buffered + 1 in flight) per worker after cancel.
        let stream = model
            .sample_inpaint_stream(mixed_jobs(24), 5, 2, 1, 1, cancel.clone())
            .unwrap();
        let mut seen = 0;
        for mb in stream {
            seen += mb.samples.len();
            cancel.cancel();
        }
        assert!(seen >= 1, "cancellation must still deliver partial results");
        assert!(seen < 24, "cancellation failed to stop the stream early");
    }

    #[test]
    fn dropping_a_stream_stops_workers() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 8));
        let mut stream = model
            .sample_inpaint_stream(mixed_jobs(12), 9, 2, 1, 1, CancelToken::new())
            .unwrap();
        let first = stream.next().expect("at least one micro-batch");
        assert_eq!(first.start, 0);
        drop(stream); // must disconnect and join without deadlock
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut model = DiffusionModel::new(DiffusionConfig::tiny(16), 1);
        let bad = GrayImage::filled(8, 8, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        let err = model.sample_inpaint(&bad, &mask, 0).unwrap_err();
        assert!(matches!(
            err,
            ModelError::Shape {
                what: "inpainting image",
                expected: 16,
                actual: 8
            }
        ));
        let err = model
            .sample_inpaint_batch(&[(mask.clone(), bad.clone())], 0, 1)
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::Shape {
                what: "inpainting mask",
                ..
            }
        ));
        let err = model.train(&[bad], 1, 1, 1e-3, 0).unwrap_err();
        assert!(matches!(err, ModelError::Shape { .. }));
    }

    #[test]
    fn empty_corpus_is_reported() {
        let mut model = DiffusionModel::new(DiffusionConfig::tiny(16), 1);
        assert!(matches!(
            model.train(&[], 1, 1, 1e-3, 0).unwrap_err(),
            ModelError::Empty("training corpus")
        ));
        assert!(matches!(
            model.finetune(&[], &[], 0.5, 1, 1, 1e-3, 0).unwrap_err(),
            ModelError::Empty("starter set")
        ));
    }

    #[test]
    fn prior_samples_have_right_shape() {
        let model = DiffusionModel::new(DiffusionConfig::tiny(16), 5);
        let prior = model.sample_prior(3, 0);
        assert_eq!(prior.len(), 3);
        assert!(prior.iter().all(|p| p.width() == 16));
    }

    #[test]
    fn epsilon_parameterization_trains_and_samples() {
        let mut cfg = DiffusionConfig::tiny(16);
        cfg.parameterization = Parameterization::Epsilon;
        let mut model = DiffusionModel::new(cfg, 9);
        let corpus = tiny_corpus(16);
        let report = model.train(&corpus, 40, 2, 3e-3, 4).unwrap();
        assert!(report.tail_loss.is_finite());
        // Known region is still preserved exactly under ε-prediction.
        let mut mask = GrayImage::filled(16, 16, 0.0);
        for y in 0..16 {
            for x in 8..16 {
                mask.set(x, y, 1.0);
            }
        }
        let out = model.sample_inpaint(&corpus[0], &mask, 5).unwrap();
        for y in 0..16 {
            for x in 0..8 {
                assert_eq!(out.get(x, y), corpus[0].get(x, y));
            }
        }
    }

    #[test]
    fn weights_roundtrip_through_serialization() {
        let mut a = DiffusionModel::new(DiffusionConfig::tiny(16), 10);
        let corpus = tiny_corpus(16);
        let _ = a.train(&corpus, 5, 2, 1e-3, 0).unwrap();
        let mut bytes = Vec::new();
        a.save_weights(&mut bytes).unwrap();
        let mut b = DiffusionModel::new(DiffusionConfig::tiny(16), 999);
        b.load_weights(bytes.as_slice()).unwrap();
        let img = GrayImage::filled(16, 16, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        assert_eq!(
            a.sample_inpaint(&img, &mask, 3).unwrap(),
            b.sample_inpaint(&img, &mask, 3).unwrap()
        );
    }

    #[test]
    fn load_rejects_mismatched_architecture() {
        let mut a = DiffusionModel::new(DiffusionConfig::tiny(16), 0);
        let mut bytes = Vec::new();
        a.save_weights(&mut bytes).unwrap();
        let mut b = DiffusionModel::new(DiffusionConfig::standard(32), 0);
        let err = b.load_weights(bytes.as_slice()).unwrap_err();
        assert!(
            matches!(err, ModelError::Corrupt { .. }),
            "wrong error: {err}"
        );
    }

    /// Corrupted streams must fail loudly *and* leave the target model's
    /// weights exactly as they were — never garbage, never half-applied.
    #[test]
    fn corrupted_streams_are_rejected_without_touching_weights() {
        let mut src = DiffusionModel::new(DiffusionConfig::tiny(16), 10);
        let _ = src.train(&tiny_corpus(16), 3, 2, 1e-3, 0).unwrap();
        let mut bytes = Vec::new();
        src.save_weights(&mut bytes).unwrap();

        let pristine = |m: &mut DiffusionModel| {
            let mut out = Vec::new();
            m.save_weights(&mut out).unwrap();
            out
        };
        let mut target = DiffusionModel::new(DiffusionConfig::tiny(16), 999);
        let before = pristine(&mut target);

        // Truncation at several depths: inside the magic, the count,
        // a tensor length, and a tensor payload.
        for cut in [2usize, 6, 10, bytes.len() - 3] {
            let err = target.load_weights(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ModelError::Io { .. }),
                "cut at {cut}: wrong error {err}"
            );
            assert!(
                err.to_string().contains("weights:"),
                "cut at {cut}: section missing from {err}"
            );
            assert_eq!(
                before,
                pristine(&mut target),
                "cut at {cut} left partial weights"
            );
        }

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        let err = target.load_weights(bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, ModelError::Corrupt { .. }),
            "wrong error: {err}"
        );
        assert_eq!(before, pristine(&mut target));

        // Lying tensor count.
        let mut bad = bytes.clone();
        bad[4] = bad[4].wrapping_add(1);
        let err = target.load_weights(bad.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("tensor count"),
            "wrong error: {err}"
        );
        assert_eq!(before, pristine(&mut target));

        // Lying first tensor length (first length field sits at byte 8).
        let mut bad = bytes.clone();
        bad[8] = bad[8].wrapping_add(1);
        let err = target.load_weights(bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, ModelError::Corrupt { .. }),
            "wrong error: {err}"
        );
        assert_eq!(before, pristine(&mut target));

        // The intact stream still loads.
        target.load_weights(bytes.as_slice()).unwrap();
        assert_eq!(bytes, pristine(&mut target));
    }

    /// A detached worker computes exactly what the model's own batch
    /// path computes for the same `(job, seed)` pairs, regardless of
    /// how the jobs are grouped into `run` calls.
    #[test]
    fn worker_matches_batch_path() {
        let model = Arc::new(DiffusionModel::new(DiffusionConfig::tiny(16), 21));
        let jobs = mixed_jobs(5);
        let batch = model.sample_inpaint_batch_sized(&jobs, 0x33, 1, 0).unwrap();
        let mut worker = model.worker();
        let mut out = Vec::new();
        // Deliberately ragged grouping: 2 + 1 + 2.
        for range in [0..2usize, 2..3, 3..5] {
            let refs: Vec<(&GrayImage, &GrayImage)> =
                jobs[range.clone()].iter().map(|(i, m)| (i, m)).collect();
            let seeds: Vec<u64> = range.map(|i| 0x33 ^ i as u64).collect();
            out.extend(worker.run(&refs, &seeds).unwrap());
        }
        assert_eq!(out, batch);
        // Shape validation still guards the worker path.
        let bad = GrayImage::filled(8, 8, -1.0);
        let mask = GrayImage::filled(16, 16, 1.0);
        assert!(matches!(
            worker.run(&[(&bad, &mask)], &[0]).unwrap_err(),
            ModelError::Shape { .. }
        ));
    }

    #[test]
    fn finetune_runs_with_prior() {
        let mut model = DiffusionModel::new(DiffusionConfig::tiny(16), 6);
        let corpus = tiny_corpus(16);
        let prior = model.sample_prior(2, 1);
        let report = model
            .finetune(&corpus, &prior, 0.5, 10, 2, 1e-3, 2)
            .unwrap();
        assert_eq!(report.steps, 10);
        assert!(report.final_loss.is_finite());
    }
}
