//! The three rule settings of the paper's solver ablation (Figure 9).

use pp_drc::RuleDeck;
use serde::{Deserialize, Serialize};

/// Progressive design-rule settings for the legalization ablation.
///
/// * [`SolverSetting::Default`] — the academic rule set of the DiffPattern
///   paper: minimum width, spacing and area only;
/// * [`SolverSetting::Complex`] — adds direction-specific maxima (max
///   width, max spacing in x), turning one-sided constraints into windows;
/// * [`SolverSetting::ComplexDiscrete`] — further restricts x wire widths
///   to a discrete set, making the problem mixed-integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolverSetting {
    /// Minimum width/spacing/area only.
    Default,
    /// Adds max width and max spacing in the x direction.
    Complex,
    /// Adds the discrete width set {3, 5}.
    ComplexDiscrete,
}

/// Numeric rule parameters shared by the solver and its success checker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SettingParams {
    /// Minimum width (x) and height (y) of any bar.
    pub min_width: u32,
    /// Maximum x width of a bar (Complex and up).
    pub max_width: Option<u32>,
    /// Minimum x spacing between bars in a row.
    pub min_spacing: u32,
    /// Maximum x spacing between bars in a row (Complex and up).
    pub max_spacing: Option<u32>,
    /// Minimum y (end-to-end) spacing between runs in a column.
    pub min_end_to_end: u32,
    /// Minimum component area.
    pub min_area: u64,
    /// Discrete width set for x bars (ComplexDiscrete).
    pub discrete_widths: Option<[u32; 2]>,
}

impl SolverSetting {
    /// All settings in ascending difficulty (the Figure 9 sweep order).
    pub const ALL: [SolverSetting; 3] = [
        SolverSetting::Default,
        SolverSetting::Complex,
        SolverSetting::ComplexDiscrete,
    ];

    /// The numeric parameters of this setting.
    pub fn params(&self) -> SettingParams {
        let base = SettingParams {
            min_width: 3,
            max_width: None,
            min_spacing: 3,
            max_spacing: None,
            min_end_to_end: 4,
            min_area: 12,
            discrete_widths: None,
        };
        match self {
            SolverSetting::Default => base,
            SolverSetting::Complex => SettingParams {
                max_width: Some(6),
                max_spacing: Some(16),
                ..base
            },
            SolverSetting::ComplexDiscrete => SettingParams {
                max_width: Some(6),
                max_spacing: Some(16),
                discrete_widths: Some([3, 5]),
                ..base
            },
        }
    }

    /// The DRC deck used to judge whether a solved layout is legal.
    pub fn check_deck(&self) -> RuleDeck {
        let p = self.params();
        let mut deck = RuleDeck::basic(
            match self {
                SolverSetting::Default => "solver-default",
                SolverSetting::Complex => "solver-complex",
                SolverSetting::ComplexDiscrete => "solver-complex-discrete",
            },
            p.min_width,
            p.min_spacing,
            p.min_end_to_end,
            p.min_area,
        );
        deck.max_width = p.max_width;
        deck.max_spacing = p.max_spacing;
        if let Some([a, b]) = p.discrete_widths {
            deck.discrete_widths = Some(vec![a, b]);
        }
        if p.max_width.is_some() || p.discrete_widths.is_some() {
            deck.wire_min_len = 4;
        }
        deck
    }
}

impl std::fmt::Display for SolverSetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SolverSetting::Default => "default",
            SolverSetting::Complex => "complex",
            SolverSetting::ComplexDiscrete => "complex-discrete",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_are_progressively_constrained() {
        let d = SolverSetting::Default.params();
        let c = SolverSetting::Complex.params();
        let cd = SolverSetting::ComplexDiscrete.params();
        assert!(d.max_width.is_none() && d.discrete_widths.is_none());
        assert!(c.max_width.is_some() && c.discrete_widths.is_none());
        assert!(cd.max_width.is_some() && cd.discrete_widths.is_some());
    }

    #[test]
    fn check_decks_validate() {
        for s in SolverSetting::ALL {
            assert!(s.check_deck().validate().is_ok(), "{s}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            SolverSetting::ComplexDiscrete.to_string(),
            "complex-discrete"
        );
    }
}
