//! The penalty-method legalization solver.

use crate::constraints::{ConstraintSet, Span};
use crate::settings::{SettingParams, SolverSetting};
use pp_drc::check_layout;
use pp_geometry::{SquishPattern, TopologyMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Tunables of the legalization solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Base gradient iterations per snap round (scaled up by instance
    /// size, see [`SolverConfig::constraint_iteration_scale`]).
    pub iters_per_round: u64,
    /// Extra iterations per constraint term per round (larger instances
    /// get a larger budget, like a `maxiter`-bounded NLP solver).
    pub constraint_iteration_scale: f64,
    /// Snap rounds (only >1 matters for discrete settings).
    pub rounds: u64,
    /// Penalty weight for constraint violations.
    pub penalty: f64,
    /// Weight pulling Δ entries towards a nominal size (regulariser).
    pub regulariser: f64,
    /// Target clip size per topology cell: when `Some(t)`, the solved
    /// pattern must satisfy `Σ Δx ≈ t·cols` and `Σ Δy ≈ t·rows` (within
    /// [`SolverConfig::size_tolerance`]). This mirrors DiffPattern's
    /// fixed-size clips and is the global coupling that makes the
    /// discrete problem mixed-integer hard.
    pub size_target_per_cell: Option<f64>,
    /// Relative tolerance on the size target after rounding.
    pub size_tolerance: f64,
    /// Absolute `(width, height)` targets; overrides
    /// [`SolverConfig::size_target_per_cell`] when set (used when the
    /// emitted clip must match a fixed size, e.g. 32×32 comparisons).
    pub size_target_abs: Option<(f64, f64)>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            learning_rate: 0.08,
            iters_per_round: 300,
            constraint_iteration_scale: 3.0,
            rounds: 6,
            penalty: 4.0,
            regulariser: 1e-4,
            size_target_per_cell: Some(4.0),
            size_tolerance: 0.02,
            size_target_abs: None,
        }
    }
}

/// The result of one legalization attempt.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The legalized pattern, when successful.
    pub pattern: Option<SquishPattern>,
    /// Whether the rounded solution passed the setting's DRC deck.
    pub success: bool,
    /// Total gradient iterations executed.
    pub iterations: u64,
    /// Wall-clock time spent.
    pub runtime: Duration,
    /// Final penalty residual (0 when all soft constraints were met).
    pub residual: f64,
    /// Number of constraint terms in the instance.
    pub constraint_count: usize,
}

/// Nonlinear legalization solver for squish topologies.
///
/// See the crate docs for background. Construct with a
/// [`SolverSetting`]; call [`LegalizeSolver::solve`] per topology.
#[derive(Debug, Clone)]
pub struct LegalizeSolver {
    setting: SolverSetting,
    config: SolverConfig,
}

impl LegalizeSolver {
    /// Creates a solver with default tuning for `setting`.
    pub fn new(setting: SolverSetting) -> Self {
        LegalizeSolver {
            setting,
            config: SolverConfig::default(),
        }
    }

    /// Creates a solver with explicit tuning.
    pub fn with_config(setting: SolverSetting, config: SolverConfig) -> Self {
        LegalizeSolver { setting, config }
    }

    /// The setting this solver targets.
    pub fn setting(&self) -> SolverSetting {
        self.setting
    }

    /// Resolved `(Σdx, Σdy)` targets for an `n`×`m` topology, if any.
    fn size_targets(&self, m: usize, n: usize) -> Option<(f64, f64)> {
        if let Some(abs) = self.config.size_target_abs {
            return Some(abs);
        }
        self.config
            .size_target_per_cell
            .map(|t| (t * m as f64, t * n as f64))
    }

    /// Attempts to legalize `topo`, returning the full outcome.
    ///
    /// Deterministic in `seed` (used for the initial Δ jitter).
    pub fn solve(&self, topo: &TopologyMatrix, seed: u64) -> SolveOutcome {
        let start = Instant::now();
        let params = self.setting.params();
        let cs = ConstraintSet::from_topology(topo);
        let n = topo.rows();
        let m = topo.cols();
        let mut rng = StdRng::seed_from_u64(seed);

        // Variables: dx (m) then dy (n); init near the nominal 4px with
        // jitter to break symmetry.
        let mut v: Vec<f64> = (0..m + n).map(|_| 4.0 + rng.gen_range(-0.5..0.5)).collect();
        let mut grad = vec![0.0f64; v.len()];
        // Adam state.
        let mut m1 = vec![0.0f64; v.len()];
        let mut m2 = vec![0.0f64; v.len()];
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);

        // Discrete snap targets per x-width span (None = no snap yet).
        let mut snap: Vec<Option<f64>> = vec![None; cs.x_widths.len()];

        let mut iterations = 0u64;
        let mut residual = 0.0f64;
        let rounds = if params.discrete_widths.is_some() {
            self.config.rounds
        } else {
            2 // one unconstrained round plus one polish round
        };
        let iters_this = self.config.iters_per_round
            + (self.config.constraint_iteration_scale * cs.len() as f64) as u64;

        for round in 0..rounds {
            // (Re-)assign snap targets from current widths.
            if let Some([wa, wb]) = params.discrete_widths {
                if round > 0 {
                    for (i, span) in cs.x_widths.iter().enumerate() {
                        let w = sum_span(&v[..m], span);
                        let da = (w - f64::from(wa)).abs();
                        let db = (w - f64::from(wb)).abs();
                        snap[i] = Some(if da <= db {
                            f64::from(wa)
                        } else {
                            f64::from(wb)
                        });
                    }
                }
            }
            for step in 0..iters_this {
                residual = self.penalty_grad(&cs, &params, &snap, &mut v, &mut grad, m, n);
                let t = (round * iters_this + step + 1) as f64;
                for i in 0..v.len() {
                    m1[i] = b1 * m1[i] + (1.0 - b1) * grad[i];
                    m2[i] = b2 * m2[i] + (1.0 - b2) * grad[i] * grad[i];
                    let mh = m1[i] / (1.0 - b1.powf(t));
                    let vh = m2[i] / (1.0 - b2.powf(t));
                    v[i] -= self.config.learning_rate * mh / (vh.sqrt() + eps);
                    v[i] = v[i].clamp(1.0, 64.0);
                }
                iterations += 1;
                if residual < 1e-7 && (round > 0 || params.discrete_widths.is_none()) {
                    break;
                }
            }
        }

        // Round and verify.
        let dx: Vec<u32> = v[..m].iter().map(|&d| d.round().max(1.0) as u32).collect();
        let dy: Vec<u32> = v[m..].iter().map(|&d| d.round().max(1.0) as u32).collect();
        let pattern = SquishPattern::new(topo.clone(), dx, dy);
        let layout = pattern.to_layout();
        let deck = self.setting.check_deck();
        let mut success = check_layout(&layout, &deck).is_clean();
        // The clip-size target must also be met (DiffPattern emits
        // fixed-size clips; a pattern of the wrong size is not usable).
        if let Some((tx, ty)) = self.size_targets(m, n) {
            // Sub-pixel relative tolerances are unreachable after integer
            // rounding on small clips; allow at least 3px either way.
            let tol_x = (self.config.size_tolerance * tx).max(3.0);
            let tol_y = (self.config.size_tolerance * ty).max(3.0);
            let sx: u32 = pattern.dx().iter().sum();
            let sy: u32 = pattern.dy().iter().sum();
            if (f64::from(sx) - tx).abs() > tol_x || (f64::from(sy) - ty).abs() > tol_y {
                success = false;
            }
        }
        SolveOutcome {
            pattern: success.then_some(pattern),
            success,
            iterations,
            runtime: start.elapsed(),
            residual,
            constraint_count: cs.len(),
        }
    }

    /// Computes the penalty and its gradient; returns the *constraint*
    /// residual (regulariser excluded, so convergence can be detected).
    #[allow(clippy::too_many_arguments)]
    fn penalty_grad(
        &self,
        cs: &ConstraintSet,
        params: &SettingParams,
        snap: &[Option<f64>],
        v: &mut [f64],
        grad: &mut [f64],
        m: usize,
        n: usize,
    ) -> f64 {
        let w = self.config.penalty;
        grad.fill(0.0);
        let mut total = 0.0;

        // Regulariser towards nominal 4px keeps free variables bounded
        // (not counted in the returned residual).
        for i in 0..v.len() {
            let d = v[i] - 4.0;
            grad[i] += 2.0 * self.config.regulariser * d;
        }

        // Global clip-size targets couple every variable.
        if let Some((tx, ty)) = self.size_targets(m, n) {
            let wt = 0.05 * w;
            let sx: f64 = v[..m].iter().sum();
            let dxs = sx - tx;
            total += wt * dxs * dxs / m as f64;
            for g in &mut grad[..m] {
                *g += 2.0 * wt * dxs / m as f64;
            }
            let sy: f64 = v[m..].iter().sum();
            let dys = sy - ty;
            total += wt * dys * dys / n as f64;
            for g in &mut grad[m..] {
                *g += 2.0 * wt * dys / n as f64;
            }
        }

        // x widths: min/max plus optional snap targets.
        for (i, span) in cs.x_widths.iter().enumerate() {
            let width = sum_span(&v[..m], span);
            total += bound_penalty(
                width,
                f64::from(params.min_width),
                params.max_width.map(f64::from),
                w,
                &mut grad[span.lo..span.hi],
            );
            if let Some(target) = snap[i] {
                let d = width - target;
                total += 2.0 * w * d * d;
                for g in &mut grad[span.lo..span.hi] {
                    *g += 4.0 * w * d;
                }
            }
        }
        // y heights: minimum only (length direction).
        for span in &cs.y_heights {
            let h = sum_span(&v[m..], span);
            total += bound_penalty(
                h,
                f64::from(params.min_width),
                None,
                w,
                &mut grad[m + span.lo..m + span.hi],
            );
        }
        // x gaps: spacing window.
        for span in &cs.x_gaps {
            let s = sum_span(&v[..m], span);
            total += bound_penalty(
                s,
                f64::from(params.min_spacing),
                params.max_spacing.map(f64::from),
                w,
                &mut grad[span.lo..span.hi],
            );
        }
        // y gaps: end-to-end minimum.
        for span in &cs.y_gaps {
            let s = sum_span(&v[m..], span);
            total += bound_penalty(
                s,
                f64::from(params.min_end_to_end),
                None,
                w,
                &mut grad[m + span.lo..m + span.hi],
            );
        }
        // Component areas: bilinear minimum-area terms.
        for cells in &cs.components {
            let area: f64 = cells.iter().map(|&(r, c)| v[m + r] * v[c]).sum();
            let short = f64::from(params.min_area as u32) - area;
            if short > 0.0 {
                total += w * short * short;
                for &(r, c) in cells {
                    grad[c] += -2.0 * w * short * v[m + r];
                    grad[m + r] += -2.0 * w * short * v[c];
                }
            }
        }
        total
    }
}

/// Σ of `v` over a span.
fn sum_span(v: &[f64], span: &Span) -> f64 {
    v[span.lo..span.hi].iter().sum()
}

/// Quadratic penalty for `lo <= x <= hi?`; accumulates d/dx into `grad`
/// (the same value for every Δ in the span, since x is their sum).
fn bound_penalty(x: f64, lo: f64, hi: Option<f64>, w: f64, grad: &mut [f64]) -> f64 {
    if x < lo {
        let d = lo - x;
        for g in grad.iter_mut() {
            *g += -2.0 * w * d;
        }
        return w * d * d;
    }
    if let Some(hi) = hi {
        if x > hi {
            let d = x - hi;
            for g in grad.iter_mut() {
                *g += 2.0 * w * d;
            }
            return w * d * d;
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::random_topology;
    use pp_geometry::TopologyMatrix;

    fn two_wires() -> TopologyMatrix {
        // #.#  (tall)
        TopologyMatrix::from_cells(2, 3, vec![true, false, true, true, false, true])
    }

    #[test]
    fn solves_two_wires_default() {
        let out = LegalizeSolver::new(SolverSetting::Default).solve(&two_wires(), 0);
        assert!(out.success, "residual {}", out.residual);
        let p = out.pattern.unwrap();
        assert!(p.dx()[0] >= 3 && p.dx()[2] >= 3);
        assert!(p.dx()[1] >= 3);
    }

    #[test]
    fn solves_two_wires_discrete() {
        let out = LegalizeSolver::new(SolverSetting::ComplexDiscrete).solve(&two_wires(), 0);
        assert!(out.success, "residual {}", out.residual);
        let p = out.pattern.unwrap();
        // Wire widths snapped into the discrete set.
        assert!([3, 5].contains(&p.dx()[0]), "dx {:?}", p.dx());
        assert!([3, 5].contains(&p.dx()[2]), "dx {:?}", p.dx());
    }

    #[test]
    fn empty_topology_succeeds_trivially() {
        let topo = TopologyMatrix::new(3, 3);
        let out = LegalizeSolver::new(SolverSetting::Default).solve(&topo, 0);
        assert!(out.success);
        assert_eq!(out.constraint_count, 0);
    }

    #[test]
    fn outcome_is_deterministic() {
        let topo = random_topology(8, 3);
        let s = LegalizeSolver::new(SolverSetting::Complex);
        let a = s.solve(&topo, 5);
        let b = s.solve(&topo, 5);
        assert_eq!(a.success, b.success);
        assert_eq!(
            a.pattern.map(|p| p.dx().to_vec()),
            b.pattern.map(|p| p.dx().to_vec())
        );
    }

    #[test]
    fn default_setting_mostly_succeeds_on_small_instances() {
        let solver = LegalizeSolver::new(SolverSetting::Default);
        let ok = (0..10)
            .filter(|&i| solver.solve(&random_topology(8, i), i).success)
            .count();
        assert!(ok >= 7, "only {ok}/10 small default instances solved");
    }

    #[test]
    fn discrete_setting_is_harder() {
        let easy = LegalizeSolver::new(SolverSetting::Default);
        let hard = LegalizeSolver::new(SolverSetting::ComplexDiscrete);
        let n = 12u64;
        let easy_ok = (0..n)
            .filter(|&i| easy.solve(&random_topology(14, i), i).success)
            .count();
        let hard_ok = (0..n)
            .filter(|&i| hard.solve(&random_topology(14, i), i).success)
            .count();
        assert!(
            hard_ok <= easy_ok,
            "discrete ({hard_ok}) should not beat default ({easy_ok})"
        );
    }

    #[test]
    fn success_implies_clean_pattern() {
        for seed in 0..6 {
            let topo = random_topology(10, seed);
            let out = LegalizeSolver::new(SolverSetting::Complex).solve(&topo, seed);
            if out.success {
                let layout = out.pattern.unwrap().to_layout();
                let deck = SolverSetting::Complex.check_deck();
                assert!(pp_drc::check_layout(&layout, &deck).is_clean());
            }
        }
    }
}
