//! Random topology workloads for the solver ablation (Figure 9).

use pp_geometry::TopologyMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random `size`×`size` topology resembling those emitted by
/// squish-based generators.
///
/// Columns behave like routing tracks: each active column (or 2-column
/// pair, to exercise multi-interval widths) carries vertical runs of 2-5
/// cells separated by 1-3 cell gaps. Run/gap cell counts are bounded so
/// that legal Δ assignments exist for the solver settings (filled runs of
/// 1-2 columns fit width windows; bounded empty runs fit spacing windows).
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `size < 4`.
pub fn random_topology(size: usize, seed: u64) -> TopologyMatrix {
    assert!(size >= 4, "topology size must be at least 4");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ size as u64);
    let mut topo = TopologyMatrix::new(size, size);
    let mut col = 0usize;
    let mut track_index = 0usize;
    while col < size {
        // Every other track is a full-height "rail": it bounds the row
        // gaps its neighbours can form, which keeps instances feasible
        // under the max-spacing windows (the paper's premise is that
        // legal solutions exist and the solver fails to find them).
        let rail = track_index.is_multiple_of(2);
        track_index += 1;
        if !rail && rng.gen_bool(0.3) {
            col += 1; // skip track
            continue;
        }
        // A two-column track mixes narrow runs (first column only) with
        // wide runs (both columns). The narrow/wide alternation couples
        // the discrete-width constraints of overlapping spans — the
        // mixed-integer structure that defeats continuous solvers. A
        // feasible assignment always exists (e.g. 3px + 2px columns).
        let two_col = col + 1 < size && rng.gen_bool(0.4);
        let width = if two_col { 2 } else { 1 };
        if rail {
            for r in 0..size {
                for c in col..col + width {
                    topo.set(r, c, true);
                }
            }
        } else {
            let mut row = rng.gen_range(0..3usize);
            while row < size {
                let run = rng.gen_range(2..=5usize).min(size - row);
                let run_width = if two_col && rng.gen_bool(0.4) {
                    1
                } else {
                    width
                };
                for r in row..row + run {
                    for c in col..col + run_width {
                        topo.set(r, c, true);
                    }
                }
                row += run + rng.gen_range(1..=3usize);
                if rng.gen_bool(0.25) {
                    break;
                }
            }
        }
        // Gap of 1-3 empty columns keeps x spacings bounded.
        col += width + rng.gen_range(1..=3usize);
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        assert_eq!(random_topology(12, 7), random_topology(12, 7));
        assert_ne!(random_topology(12, 7), random_topology(12, 8));
    }

    #[test]
    fn nonempty_generally() {
        let filled = (0..10)
            .filter(|&s| random_topology(16, s).filled_count() > 0)
            .count();
        assert!(filled >= 9);
    }

    proptest! {
        /// Filled and empty horizontal runs stay bounded, keeping the
        /// instances feasible for the solver's spacing/width windows.
        #[test]
        fn prop_bounded_runs(size in 6usize..24, seed in 0u64..32) {
            let topo = random_topology(size, seed);
            for row in 0..topo.rows() {
                let mut run = 0usize;
                for col in 0..topo.cols() {
                    if topo.get(row, col) {
                        run += 1;
                        prop_assert!(run <= 4, "filled run too long");
                    } else {
                        run = 0;
                    }
                }
            }
        }

        /// Density lands in a plausible band for track patterns.
        #[test]
        fn prop_density(seed in 0u64..16) {
            let topo = random_topology(20, seed);
            let d = topo.filled_count() as f64 / 400.0;
            prop_assert!(d < 0.7);
        }
    }
}
