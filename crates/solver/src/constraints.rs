//! Constraint extraction from topology matrices.
//!
//! Each constraint is a linear form over the Δ variables (a contiguous
//! span of Δx or Δy entries) with bounds, plus bilinear area constraints
//! per connected component. The counts grow roughly quadratically with
//! topology size, which is what drives the solver-runtime curve of the
//! paper's Figure 9.

use pp_geometry::TopologyMatrix;
use std::collections::HashSet;

/// A contiguous index span `[lo, hi)` over one Δ vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// First index (inclusive).
    pub lo: usize,
    /// One past the last index.
    pub hi: usize,
}

impl Span {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo < hi, "span must be non-empty");
        Span { lo, hi }
    }

    /// Number of Δ entries covered.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Spans are never empty; provided for clippy-friendliness.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// All geometric constraints implied by a topology matrix.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    /// Unique x-width spans (row bars): Σ Δx over the span is a wire width.
    pub x_widths: Vec<Span>,
    /// Unique y-height spans (column runs): Σ Δy is a wire length.
    pub y_heights: Vec<Span>,
    /// Unique x-gap spans (between bars in a row): Σ Δx is a spacing.
    pub x_gaps: Vec<Span>,
    /// Unique y-gap spans (between runs in a column): Σ Δy is an E2E gap.
    pub y_gaps: Vec<Span>,
    /// Connected components as cell lists `(row, col)` for area terms.
    pub components: Vec<Vec<(usize, usize)>>,
}

impl ConstraintSet {
    /// Extracts the constraint set of `topo`.
    pub fn from_topology(topo: &TopologyMatrix) -> Self {
        let mut x_widths = HashSet::new();
        let mut x_gaps = HashSet::new();
        for row in 0..topo.rows() {
            let runs = runs_in_row(topo, row);
            for &(c0, c1) in &runs {
                x_widths.insert(Span::new(c0, c1));
            }
            for pair in runs.windows(2) {
                x_gaps.insert(Span::new(pair[0].1, pair[1].0));
            }
        }
        let mut y_heights = HashSet::new();
        let mut y_gaps = HashSet::new();
        for col in 0..topo.cols() {
            let runs = runs_in_col(topo, col);
            for &(r0, r1) in &runs {
                y_heights.insert(Span::new(r0, r1));
            }
            for pair in runs.windows(2) {
                y_gaps.insert(Span::new(pair[0].1, pair[1].0));
            }
        }
        let sort = |set: HashSet<Span>| {
            let mut v: Vec<Span> = set.into_iter().collect();
            v.sort_by_key(|s| (s.lo, s.hi));
            v
        };
        ConstraintSet {
            x_widths: sort(x_widths),
            y_heights: sort(y_heights),
            x_gaps: sort(x_gaps),
            y_gaps: sort(y_gaps),
            components: components(topo),
        }
    }

    /// Total number of constraint terms (used for instrumentation).
    pub fn len(&self) -> usize {
        self.x_widths.len()
            + self.y_heights.len()
            + self.x_gaps.len()
            + self.y_gaps.len()
            + self.components.len()
    }

    /// Whether the topology implied no constraints at all (empty matrix).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn runs_in_row(topo: &TopologyMatrix, row: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut c = 0;
    while c < topo.cols() {
        if topo.get(row, c) {
            let c0 = c;
            while c < topo.cols() && topo.get(row, c) {
                c += 1;
            }
            out.push((c0, c));
        } else {
            c += 1;
        }
    }
    out
}

fn runs_in_col(topo: &TopologyMatrix, col: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut r = 0;
    while r < topo.rows() {
        if topo.get(r, col) {
            let r0 = r;
            while r < topo.rows() && topo.get(r, col) {
                r += 1;
            }
            out.push((r0, r));
        } else {
            r += 1;
        }
    }
    out
}

fn components(topo: &TopologyMatrix) -> Vec<Vec<(usize, usize)>> {
    let rows = topo.rows();
    let cols = topo.cols();
    let mut seen = vec![false; rows * cols];
    let mut out = Vec::new();
    for r0 in 0..rows {
        for c0 in 0..cols {
            if seen[r0 * cols + c0] || !topo.get(r0, c0) {
                continue;
            }
            let mut cells = Vec::new();
            let mut stack = vec![(r0, c0)];
            seen[r0 * cols + c0] = true;
            while let Some((r, c)) = stack.pop() {
                cells.push((r, c));
                let mut push = |nr: usize, nc: usize, stack: &mut Vec<(usize, usize)>| {
                    if !seen[nr * cols + nc] && topo.get(nr, nc) {
                        seen[nr * cols + nc] = true;
                        stack.push((nr, nc));
                    }
                };
                if r > 0 {
                    push(r - 1, c, &mut stack);
                }
                if r + 1 < rows {
                    push(r + 1, c, &mut stack);
                }
                if c > 0 {
                    push(r, c - 1, &mut stack);
                }
                if c + 1 < cols {
                    push(r, c + 1, &mut stack);
                }
            }
            out.push(cells);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_shape() -> TopologyMatrix {
        // ###
        // .#.
        // .#.
        TopologyMatrix::from_cells(
            3,
            3,
            vec![true, true, true, false, true, false, false, true, false],
        )
    }

    #[test]
    fn extracts_t_shape() {
        let cs = ConstraintSet::from_topology(&t_shape());
        assert!(cs.x_widths.contains(&Span::new(0, 3))); // top bar
        assert!(cs.x_widths.contains(&Span::new(1, 2))); // stem
        assert!(cs.x_gaps.is_empty()); // single bar per row
        assert_eq!(cs.components.len(), 1);
        assert_eq!(cs.components[0].len(), 5);
    }

    #[test]
    fn gap_between_two_wires() {
        // #.#
        let topo = TopologyMatrix::from_cells(1, 3, vec![true, false, true]);
        let cs = ConstraintSet::from_topology(&topo);
        assert_eq!(cs.x_gaps, vec![Span::new(1, 2)]);
        assert_eq!(cs.x_widths.len(), 2);
        assert_eq!(cs.components.len(), 2);
    }

    #[test]
    fn vertical_gap_detected() {
        // #
        // .
        // #
        let topo = TopologyMatrix::from_cells(3, 1, vec![true, false, true]);
        let cs = ConstraintSet::from_topology(&topo);
        assert_eq!(cs.y_gaps, vec![Span::new(1, 2)]);
        assert_eq!(cs.y_heights.len(), 2);
    }

    #[test]
    fn duplicate_spans_deduped() {
        // Two identical rows produce one width span.
        let topo = TopologyMatrix::from_cells(2, 3, vec![false, true, false, false, true, false]);
        let cs = ConstraintSet::from_topology(&topo);
        assert_eq!(cs.x_widths.len(), 1);
        assert_eq!(cs.y_heights.len(), 1);
    }

    #[test]
    fn empty_topology_has_no_constraints() {
        let topo = TopologyMatrix::new(4, 4);
        let cs = ConstraintSet::from_topology(&topo);
        assert!(cs.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn span_rejects_empty() {
        let _ = Span::new(3, 3);
    }
}
