//! Nonlinear squish-geometry legalization (the baseline path PatternPaint
//! replaces).
//!
//! Squish-based generators (DeePattern, CUP, DiffPattern) emit only a
//! binary *topology matrix*; recovering a legal layout requires solving for
//! the Δx/Δy interval widths under the design rules — the "nonlinear
//! solver-based legalization" step. The paper shows this step is the
//! scalability bottleneck: runtime grows steeply with topology size, and
//! success collapses once the rule set gains maxima and discrete width
//! sets (its Figure 9, reproduced by `pp-bench --bin fig9`).
//!
//! This crate reimplements that solver from scratch (the paper used
//! `scipy`): a penalty-method Adam descent over the positive Δ variables,
//! with an alternating snap-to-nearest loop for discrete widths (the
//! mixed-integer flavour that defeats continuous solvers). Success is
//! judged honestly: the rounded solution is rasterised and run through the
//! `pp-drc` checker with a deck matching the [`SolverSetting`].
//!
//! # Example
//!
//! ```
//! use pp_solver::{LegalizeSolver, SolverSetting, random_topology};
//!
//! let topo = random_topology(10, 1);
//! let solver = LegalizeSolver::new(SolverSetting::Default);
//! let outcome = solver.solve(&topo, 0);
//! assert!(outcome.iterations > 0);
//! if outcome.success {
//!     assert!(outcome.pattern.is_some());
//! }
//! ```

#![forbid(unsafe_code)]

pub mod constraints;
pub mod settings;
pub mod solver;
pub mod workload;

pub use constraints::ConstraintSet;
pub use settings::SolverSetting;
pub use solver::{LegalizeSolver, SolveOutcome, SolverConfig};
pub use workload::random_topology;
