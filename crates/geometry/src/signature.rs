//! Stable content signatures for pattern uniqueness and H2 classes.

use crate::layout::Layout;
use crate::squish::SquishPattern;
use serde::{Deserialize, Serialize};

/// A 64-bit content hash identifying a pattern (or part of one).
///
/// Signatures use the FNV-1a hash over a canonical byte encoding, so they
/// are stable across runs, platforms and process restarts — unlike
/// `std::collections` hashes, which are randomised. Two signature flavours
/// are used by the metrics crate:
///
/// * [`Signature::of_squish`] — full identity (topology + Δx + Δy); defines
///   "unique patterns" in Table I.
/// * [`Signature::of_deltas`] — geometry only (Δx + Δy); defines the
///   equivalence classes whose distribution is the H2 entropy.
///
/// # Example
///
/// ```
/// use pp_geometry::{Layout, Rect, Signature, SquishPattern};
///
/// let mut a = Layout::new(8, 8);
/// a.fill_rect(Rect::new(2, 0, 3, 8));
/// let sa = Signature::of_layout(&a);
/// assert_eq!(sa, Signature::of_layout(&a.clone()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Signature(pub u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a hasher over byte chunks.
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

impl Signature {
    /// Signature of a raw layout raster.
    pub fn of_layout(layout: &Layout) -> Signature {
        let mut h = Fnv::new();
        h.write_u32(layout.width());
        h.write_u32(layout.height());
        // Pack bits 8-per-byte for speed and canonical form.
        let mut byte = 0u8;
        let mut nbits = 0;
        for b in layout.iter() {
            byte = (byte << 1) | u8::from(b);
            nbits += 1;
            if nbits == 8 {
                h.write(&[byte]);
                byte = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            h.write(&[byte]);
        }
        Signature(h.finish())
    }

    /// Full squish identity: topology cells plus both Δ vectors.
    pub fn of_squish(pattern: &SquishPattern) -> Signature {
        let mut h = Fnv::new();
        h.write_u32(pattern.topology().rows() as u32);
        h.write_u32(pattern.topology().cols() as u32);
        for &c in pattern.topology().as_cells() {
            h.write(&[u8::from(c)]);
        }
        for &d in pattern.dx() {
            h.write_u32(d);
        }
        h.write(b"|");
        for &d in pattern.dy() {
            h.write_u32(d);
        }
        Signature(h.finish())
    }

    /// Geometry-only signature over `(Δx, Δy)` — the H2 class key.
    pub fn of_deltas(pattern: &SquishPattern) -> Signature {
        let mut h = Fnv::new();
        for &d in pattern.dx() {
            h.write_u32(d);
        }
        h.write(b"|");
        for &d in pattern.dy() {
            h.write_u32(d);
        }
        Signature(h.finish())
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::fmt::LowerHex for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn wire(x: u32) -> Layout {
        let mut l = Layout::new(16, 16);
        l.fill_rect(Rect::new(x, 2, 3, 12));
        l
    }

    #[test]
    fn stable_across_clones() {
        let l = wire(2);
        assert_eq!(Signature::of_layout(&l), Signature::of_layout(&l.clone()));
    }

    #[test]
    fn distinguishes_layouts() {
        assert_ne!(
            Signature::of_layout(&wire(2)),
            Signature::of_layout(&wire(3))
        );
    }

    #[test]
    fn dimension_feeds_hash() {
        let a = Layout::new(4, 2);
        let b = Layout::new(2, 4);
        assert_ne!(Signature::of_layout(&a), Signature::of_layout(&b));
    }

    #[test]
    fn delta_signature_ignores_topology() {
        // Same scan-line structure, different fill: shift which track is
        // present while keeping identical line coordinates.
        let mut a = Layout::new(12, 8);
        a.fill_rect(Rect::new(2, 2, 2, 4));
        a.fill_rect(Rect::new(6, 2, 2, 4));
        let mut b = Layout::new(12, 8);
        b.fill_rect(Rect::new(2, 2, 2, 4));
        b.fill_rect(Rect::new(6, 2, 2, 4));
        // b keeps the same edges but removes the interior of one wire's
        // middle cell is impossible without changing lines; instead verify
        // equal layouts share both signatures.
        let sa = SquishPattern::from_layout(&a);
        let sb = SquishPattern::from_layout(&b);
        assert_eq!(Signature::of_deltas(&sa), Signature::of_deltas(&sb));
        assert_eq!(Signature::of_squish(&sa), Signature::of_squish(&sb));
    }

    #[test]
    fn squish_signature_separates_topology() {
        // Two patterns engineered to share Δ vectors but differ in fill.
        use crate::topology::TopologyMatrix;
        let mut t1 = TopologyMatrix::new(3, 3);
        t1.set(1, 1, true);
        let mut t2 = TopologyMatrix::new(3, 3);
        t2.set(0, 0, true);
        let s1 = SquishPattern::new(t1, vec![2, 3, 2], vec![1, 4, 1]);
        let s2 = SquishPattern::new(t2, vec![2, 3, 2], vec![1, 4, 1]);
        assert_eq!(Signature::of_deltas(&s1), Signature::of_deltas(&s2));
        assert_ne!(Signature::of_squish(&s1), Signature::of_squish(&s2));
    }

    #[test]
    fn delta_separator_prevents_concat_collisions() {
        use crate::topology::TopologyMatrix;
        // dx=[1,2], dy=[3] vs dx=[1], dy=[2,3]: byte-concatenation of the
        // Δ streams would collide without the separator.
        let s1 = SquishPattern::new(TopologyMatrix::new(1, 2), vec![1, 2], vec![3]);
        let s2 = SquishPattern::new(TopologyMatrix::new(2, 1), vec![1], vec![2, 3]);
        assert_ne!(Signature::of_deltas(&s1), Signature::of_deltas(&s2));
    }

    #[test]
    fn display_is_hex() {
        let s = Signature(0xdead_beef);
        assert_eq!(s.to_string(), "00000000deadbeef");
    }
}
