//! Rendering layouts and images for inspection (ASCII art, PGM files).
//!
//! The paper's Figure 8 is a gallery of generated variations; these helpers
//! let the bench harness write the same gallery as portable graymaps plus
//! terminal-friendly ASCII.

use crate::image::GrayImage;
use crate::layout::Layout;
use std::io::{self, Write};

/// Renders a layout as ASCII art (`#` = metal, `.` = empty).
///
/// # Example
///
/// ```
/// use pp_geometry::{Layout, Rect};
/// use pp_geometry::render::to_ascii;
///
/// let mut l = Layout::new(3, 2);
/// l.fill_rect(Rect::new(0, 0, 1, 2));
/// assert_eq!(to_ascii(&l), "#..\n#..\n");
/// ```
pub fn to_ascii(layout: &Layout) -> String {
    let mut s = String::with_capacity(((layout.width() + 1) * layout.height()) as usize);
    for y in 0..layout.height() {
        for x in 0..layout.width() {
            s.push(if layout.get(x, y) { '#' } else { '.' });
        }
        s.push('\n');
    }
    s
}

/// Renders two layouts side by side with a gutter, for diff-style viewing.
///
/// # Panics
///
/// Panics if heights differ.
pub fn to_ascii_pair(left: &Layout, right: &Layout) -> String {
    assert_eq!(left.height(), right.height(), "heights must match");
    let mut s = String::new();
    for y in 0..left.height() {
        for x in 0..left.width() {
            s.push(if left.get(x, y) { '#' } else { '.' });
        }
        s.push_str("  |  ");
        for x in 0..right.width() {
            s.push(if right.get(x, y) { '#' } else { '.' });
        }
        s.push('\n');
    }
    s
}

/// Writes a binary layout as an 8-bit PGM (P5) image.
///
/// Metal renders dark (0), background light (255), matching typical layout
/// viewers.
///
/// # Errors
///
/// Propagates I/O errors from `writer`. A `&mut W` may be passed wherever a
/// `W: Write` is expected.
pub fn write_pgm<W: Write>(layout: &Layout, mut writer: W) -> io::Result<()> {
    writeln!(writer, "P5")?;
    writeln!(writer, "{} {}", layout.width(), layout.height())?;
    writeln!(writer, "255")?;
    let bytes: Vec<u8> = layout.iter().map(|b| if b { 0 } else { 255 }).collect();
    writer.write_all(&bytes)
}

/// Writes a grayscale image as an 8-bit PGM (P5), mapping `[-1, 1] → [255, 0]`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_gray_pgm<W: Write>(image: &GrayImage, mut writer: W) -> io::Result<()> {
    writeln!(writer, "P5")?;
    writeln!(writer, "{} {}", image.width(), image.height())?;
    writeln!(writer, "255")?;
    let bytes: Vec<u8> = image
        .as_pixels()
        .iter()
        .map(|&p| {
            let v = (1.0 - (p.clamp(-1.0, 1.0) + 1.0) / 2.0) * 255.0;
            v.round() as u8
        })
        .collect();
    writer.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn ascii_matches_from_ascii() {
        let mut l = Layout::new(4, 3);
        l.fill_rect(Rect::new(1, 0, 2, 3));
        let art = to_ascii(&l);
        assert_eq!(Layout::from_ascii(&art), l);
    }

    #[test]
    fn pair_render_has_gutter() {
        let l = Layout::new(2, 2);
        let s = to_ascii_pair(&l, &l);
        assert!(s.lines().all(|line| line.contains("  |  ")));
    }

    #[test]
    fn pgm_header_and_size() {
        let mut l = Layout::new(3, 2);
        l.set(0, 0, true);
        let mut buf = Vec::new();
        write_pgm(&l, &mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf[..12]);
        assert!(text.starts_with("P5\n3 2\n255\n"));
        // 6 payload bytes follow the header.
        assert_eq!(buf.len(), 11 + 6);
        assert_eq!(buf[11], 0); // metal pixel is dark
        assert_eq!(buf[12], 255);
    }

    #[test]
    fn gray_pgm_maps_range() {
        let img = GrayImage::from_pixels(2, 1, vec![-1.0, 1.0]);
        let mut buf = Vec::new();
        write_gray_pgm(&img, &mut buf).unwrap();
        let n = buf.len();
        assert_eq!(&buf[n - 2..], &[255, 0]);
    }
}
