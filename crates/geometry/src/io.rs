//! Pattern-library serialisation.
//!
//! Pattern libraries outlive a process: DFM teams hand generated
//! libraries to OPC/hotspot flows as files. Real flows use GDSII/OASIS;
//! this reproduction ships two formats:
//!
//! * `PPLIB v1` — a minimal line-oriented text raster format that
//!   round-trips exactly and diffs cleanly in review tools:
//!
//!   ```text
//!   PPLIB v1
//!   pattern 32 32
//!   <one '#'/'.' row per line>
//!   ...
//!   end
//!   ```
//!
//! * `PPSQ v1` ([`write_squish_library`] / [`read_squish_library`]) —
//!   a compact little-endian binary format over *squish* patterns
//!   (topology bits packed 8-per-byte plus the Δx/Δy width vectors),
//!   the durable representation the engine's artifact layer persists:
//!   squish → raster → squish is lossless, so libraries resume with
//!   identical signatures and statistics.

use crate::layout::Layout;
use crate::squish::SquishPattern;
use crate::topology::TopologyMatrix;
use std::io::{self, BufRead, Read, Write};

/// Writes a library of layouts in `PPLIB v1` text format.
///
/// # Errors
///
/// Propagates I/O errors from `writer` (a `&mut W` may be passed).
pub fn write_library<W: Write>(layouts: &[Layout], mut writer: W) -> io::Result<()> {
    writeln!(writer, "PPLIB v1")?;
    for l in layouts {
        writeln!(writer, "pattern {} {}", l.width(), l.height())?;
        for y in 0..l.height() {
            let row: String = (0..l.width())
                .map(|x| if l.get(x, y) { '#' } else { '.' })
                .collect();
            writeln!(writer, "{row}")?;
        }
    }
    writeln!(writer, "end")
}

/// Reads a library written by [`write_library`].
///
/// # Errors
///
/// Returns `InvalidData` on malformed headers, dimensions or rows, and
/// propagates I/O errors from `reader`.
pub fn read_library<R: BufRead>(reader: R) -> io::Result<Vec<Layout>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut lines = reader.lines();
    match lines.next() {
        Some(Ok(h)) if h.trim() == "PPLIB v1" => {}
        _ => return Err(bad("missing PPLIB v1 header")),
    }
    let mut out = Vec::new();
    loop {
        let header = match lines.next() {
            Some(Ok(l)) => l,
            Some(Err(e)) => return Err(e),
            None => return Err(bad("unexpected EOF before 'end'")),
        };
        let header = header.trim();
        if header == "end" {
            return Ok(out);
        }
        let mut parts = header.split_whitespace();
        if parts.next() != Some("pattern") {
            return Err(bad("expected 'pattern W H' or 'end'"));
        }
        let w: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad pattern width"))?;
        let h: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad pattern height"))?;
        if w == 0 || h == 0 {
            return Err(bad("zero pattern dimension"));
        }
        let mut bits = Vec::with_capacity((w * h) as usize);
        for _ in 0..h {
            let row = match lines.next() {
                Some(Ok(l)) => l,
                Some(Err(e)) => return Err(e),
                None => return Err(bad("truncated pattern rows")),
            };
            let row = row.trim_end();
            if row.chars().count() != w as usize {
                return Err(bad("row width mismatch"));
            }
            for ch in row.chars() {
                match ch {
                    '#' => bits.push(true),
                    '.' => bits.push(false),
                    _ => return Err(bad("unexpected character in row")),
                }
            }
        }
        out.push(Layout::from_bits(w, h, bits));
    }
}

/// Magic line opening every `PPSQ v1` stream.
const PPSQ_MAGIC: &[u8; 8] = b"PPSQ v1\n";

/// Upper bound on topology cells per stored pattern (2¹² per axis,
/// 2²⁴ cells — far beyond any clip this system rasterises). Corrupt
/// dimension fields must produce `InvalidData`, never an allocation
/// sized by attacker-controlled bytes.
const PPSQ_MAX_DIM: usize = 1 << 12;

fn write_u32_seq<W: Write>(writer: &mut W, values: &[u32]) -> io::Result<()> {
    for &v in values {
        writer.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Writes squish patterns in the binary `PPSQ v1` format.
///
/// Layout per pattern: `rows: u32`, `cols: u32`, topology cells in
/// row-major order packed 8-per-byte (zero-padded), then `cols` Δx and
/// `rows` Δy entries as `u32`. A `count: u32` follows the magic.
///
/// # Errors
///
/// Propagates I/O errors from `writer` (a `&mut W` may be passed).
pub fn write_squish_library<W: Write>(patterns: &[SquishPattern], mut writer: W) -> io::Result<()> {
    writer.write_all(PPSQ_MAGIC)?;
    writer.write_all(&(patterns.len() as u32).to_le_bytes())?;
    for p in patterns {
        let t = p.topology();
        writer.write_all(&(t.rows() as u32).to_le_bytes())?;
        writer.write_all(&(t.cols() as u32).to_le_bytes())?;
        let mut byte = 0u8;
        let mut nbits = 0;
        for &cell in t.as_cells() {
            byte = (byte << 1) | u8::from(cell);
            nbits += 1;
            if nbits == 8 {
                writer.write_all(&[byte])?;
                byte = 0;
                nbits = 0;
            }
        }
        if nbits > 0 {
            writer.write_all(&[byte << (8 - nbits)])?;
        }
        write_u32_seq(&mut writer, p.dx())?;
        write_u32_seq(&mut writer, p.dy())?;
    }
    Ok(())
}

/// Reads a library written by [`write_squish_library`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic, truncated stream, zero
/// dimensions or zero Δ entries, and propagates I/O errors from
/// `reader`. Degenerate-but-valid patterns (a single row or column)
/// round-trip like any other.
pub fn read_squish_library<R: Read>(mut reader: R) -> io::Result<Vec<SquishPattern>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != PPSQ_MAGIC {
        return Err(bad("missing PPSQ v1 magic"));
    }
    let mut u32buf = [0u8; 4];
    let mut read_u32 = |reader: &mut R| -> io::Result<u32> {
        reader.read_exact(&mut u32buf)?;
        Ok(u32::from_le_bytes(u32buf))
    };
    let count = read_u32(&mut reader)? as usize;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let rows = read_u32(&mut reader)? as usize;
        let cols = read_u32(&mut reader)? as usize;
        if rows == 0 || cols == 0 {
            return Err(bad("zero topology dimension"));
        }
        if rows > PPSQ_MAX_DIM || cols > PPSQ_MAX_DIM {
            return Err(bad("topology dimension exceeds format bound"));
        }
        let nbytes = (rows * cols).div_ceil(8);
        let mut packed = vec![0u8; nbytes];
        reader.read_exact(&mut packed)?;
        let mut cells = Vec::with_capacity(rows * cols);
        for i in 0..rows * cols {
            let byte = packed[i / 8];
            cells.push((byte >> (7 - i % 8)) & 1 == 1);
        }
        let topology = TopologyMatrix::from_cells(rows, cols, cells);
        let mut dx = Vec::with_capacity(cols);
        for _ in 0..cols {
            dx.push(read_u32(&mut reader)?);
        }
        let mut dy = Vec::with_capacity(rows);
        for _ in 0..rows {
            dy.push(read_u32(&mut reader)?);
        }
        if dx.iter().chain(&dy).any(|&d| d == 0) {
            return Err(bad("zero delta entry"));
        }
        out.push(SquishPattern::new(topology, dx, dy));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;
    use crate::signature::Signature;

    fn sample_lib() -> Vec<Layout> {
        let mut a = Layout::new(8, 6);
        a.fill_rect(Rect::new(1, 1, 3, 4));
        let mut b = Layout::new(5, 5);
        b.fill_rect(Rect::new(0, 0, 5, 2));
        vec![a, b]
    }

    #[test]
    fn roundtrip() {
        let lib = sample_lib();
        let mut buf = Vec::new();
        write_library(&lib, &mut buf).unwrap();
        let back = read_library(buf.as_slice()).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn empty_library_roundtrip() {
        let mut buf = Vec::new();
        write_library(&[], &mut buf).unwrap();
        assert!(read_library(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_library("pattern 2 2\n##\n##\nend\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_library(&sample_lib(), &mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(read_library(cut).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "PPLIB v1\npattern 3 2\n###\n##\nend\n";
        assert!(read_library(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_characters() {
        let text = "PPLIB v1\npattern 2 1\n#x\nend\n";
        assert!(read_library(text.as_bytes()).is_err());
    }

    #[test]
    fn squish_roundtrip_preserves_signatures() {
        let patterns: Vec<SquishPattern> = sample_lib()
            .iter()
            .map(SquishPattern::from_layout)
            .collect();
        let mut buf = Vec::new();
        write_squish_library(&patterns, &mut buf).unwrap();
        let back = read_squish_library(buf.as_slice()).unwrap();
        assert_eq!(back, patterns);
        for (a, b) in patterns.iter().zip(&back) {
            assert_eq!(Signature::of_squish(a), Signature::of_squish(b));
            assert_eq!(Signature::of_deltas(a), Signature::of_deltas(b));
            assert_eq!(a.to_layout(), b.to_layout());
        }
    }

    #[test]
    fn squish_roundtrip_handles_degenerate_patterns() {
        // 1-row, 1-col, 1x1 empty and 1x1 full: the smallest squish
        // forms a layout can canonicalise to.
        let one_row = SquishPattern::new(
            TopologyMatrix::from_cells(1, 3, vec![true, false, true]),
            vec![2, 5, 1],
            vec![7],
        );
        let one_col = SquishPattern::new(
            TopologyMatrix::from_cells(3, 1, vec![false, true, false]),
            vec![4],
            vec![1, 2, 3],
        );
        let empty = SquishPattern::new(TopologyMatrix::new(1, 1), vec![9], vec![9]);
        let mut full_t = TopologyMatrix::new(1, 1);
        full_t.set(0, 0, true);
        let full = SquishPattern::new(full_t, vec![3], vec![3]);
        let patterns = vec![one_row, one_col, empty, full];
        let mut buf = Vec::new();
        write_squish_library(&patterns, &mut buf).unwrap();
        assert_eq!(read_squish_library(buf.as_slice()).unwrap(), patterns);
    }

    #[test]
    fn squish_reader_rejects_corruption() {
        let patterns = vec![SquishPattern::from_layout(&sample_lib()[0])];
        let mut buf = Vec::new();
        write_squish_library(&patterns, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_squish_library(bad.as_slice()).is_err());
        // Truncation at every prefix must error, never panic.
        for cut in 0..buf.len() {
            assert!(read_squish_library(&buf[..cut]).is_err(), "cut {cut}");
        }
        // Absurd dimension fields must be rejected *before* any
        // dimension-sized allocation happens (a corrupt artifact must
        // surface InvalidData, not abort the process).
        let mut huge = Vec::new();
        huge.extend_from_slice(b"PPSQ v1\n");
        huge.extend_from_slice(&1u32.to_le_bytes()); // count
        huge.extend_from_slice(&u32::MAX.to_le_bytes()); // rows
        huge.extend_from_slice(&u32::MAX.to_le_bytes()); // cols
        assert!(read_squish_library(huge.as_slice()).is_err());
        // Empty library round-trips.
        let mut empty = Vec::new();
        write_squish_library(&[], &mut empty).unwrap();
        assert!(read_squish_library(empty.as_slice()).unwrap().is_empty());
    }
}
