//! Plain-text pattern-library serialisation.
//!
//! Pattern libraries outlive a process: DFM teams hand generated
//! libraries to OPC/hotspot flows as files. Real flows use GDSII/OASIS;
//! this reproduction uses a minimal line-oriented text format (`PPLIB`)
//! that round-trips exactly and diffs cleanly in review tools:
//!
//! ```text
//! PPLIB v1
//! pattern 32 32
//! <one '#'/'.' row per line>
//! ...
//! end
//! ```

use crate::layout::Layout;
use std::io::{self, BufRead, Write};

/// Writes a library of layouts in `PPLIB v1` text format.
///
/// # Errors
///
/// Propagates I/O errors from `writer` (a `&mut W` may be passed).
pub fn write_library<W: Write>(layouts: &[Layout], mut writer: W) -> io::Result<()> {
    writeln!(writer, "PPLIB v1")?;
    for l in layouts {
        writeln!(writer, "pattern {} {}", l.width(), l.height())?;
        for y in 0..l.height() {
            let row: String = (0..l.width())
                .map(|x| if l.get(x, y) { '#' } else { '.' })
                .collect();
            writeln!(writer, "{row}")?;
        }
    }
    writeln!(writer, "end")
}

/// Reads a library written by [`write_library`].
///
/// # Errors
///
/// Returns `InvalidData` on malformed headers, dimensions or rows, and
/// propagates I/O errors from `reader`.
pub fn read_library<R: BufRead>(reader: R) -> io::Result<Vec<Layout>> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut lines = reader.lines();
    match lines.next() {
        Some(Ok(h)) if h.trim() == "PPLIB v1" => {}
        _ => return Err(bad("missing PPLIB v1 header")),
    }
    let mut out = Vec::new();
    loop {
        let header = match lines.next() {
            Some(Ok(l)) => l,
            Some(Err(e)) => return Err(e),
            None => return Err(bad("unexpected EOF before 'end'")),
        };
        let header = header.trim();
        if header == "end" {
            return Ok(out);
        }
        let mut parts = header.split_whitespace();
        if parts.next() != Some("pattern") {
            return Err(bad("expected 'pattern W H' or 'end'"));
        }
        let w: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad pattern width"))?;
        let h: u32 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| bad("bad pattern height"))?;
        if w == 0 || h == 0 {
            return Err(bad("zero pattern dimension"));
        }
        let mut bits = Vec::with_capacity((w * h) as usize);
        for _ in 0..h {
            let row = match lines.next() {
                Some(Ok(l)) => l,
                Some(Err(e)) => return Err(e),
                None => return Err(bad("truncated pattern rows")),
            };
            let row = row.trim_end();
            if row.chars().count() != w as usize {
                return Err(bad("row width mismatch"));
            }
            for ch in row.chars() {
                match ch {
                    '#' => bits.push(true),
                    '.' => bits.push(false),
                    _ => return Err(bad("unexpected character in row")),
                }
            }
        }
        out.push(Layout::from_bits(w, h, bits));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn sample_lib() -> Vec<Layout> {
        let mut a = Layout::new(8, 6);
        a.fill_rect(Rect::new(1, 1, 3, 4));
        let mut b = Layout::new(5, 5);
        b.fill_rect(Rect::new(0, 0, 5, 2));
        vec![a, b]
    }

    #[test]
    fn roundtrip() {
        let lib = sample_lib();
        let mut buf = Vec::new();
        write_library(&lib, &mut buf).unwrap();
        let back = read_library(buf.as_slice()).unwrap();
        assert_eq!(back, lib);
    }

    #[test]
    fn empty_library_roundtrip() {
        let mut buf = Vec::new();
        write_library(&[], &mut buf).unwrap();
        assert!(read_library(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn rejects_missing_header() {
        assert!(read_library("pattern 2 2\n##\n##\nend\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_library(&sample_lib(), &mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(read_library(cut).is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let text = "PPLIB v1\npattern 3 2\n###\n##\nend\n";
        assert!(read_library(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_bad_characters() {
        let text = "PPLIB v1\npattern 2 1\n#x\nend\n";
        assert!(read_library(text.as_bytes()).is_err());
    }
}
