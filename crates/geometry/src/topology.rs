//! Binary topology matrices for the squish representation.

use serde::{Deserialize, Serialize};

/// A dense binary matrix recording which squish-grid cells contain metal.
///
/// Rows index y intervals (top to bottom); columns index x intervals (left
/// to right).
///
/// # Example
///
/// ```
/// use pp_geometry::TopologyMatrix;
///
/// let mut t = TopologyMatrix::new(2, 3);
/// t.set(0, 1, true);
/// assert!(t.get(0, 1));
/// assert_eq!(t.filled_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopologyMatrix {
    rows: usize,
    cols: usize,
    cells: Vec<bool>,
}

/// A maximal horizontal run of filled cells within one topology row.
///
/// `row` is the y-interval index; columns `[c0, c1)` are filled and the run
/// cannot be extended left or right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bar {
    /// Row (y-interval) index.
    pub row: usize,
    /// First filled column (inclusive).
    pub c0: usize,
    /// One past the last filled column.
    pub c1: usize,
}

impl TopologyMatrix {
    /// Creates an all-empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "topology dimensions must be nonzero");
        TopologyMatrix {
            rows,
            cols,
            cells: vec![false; rows * cols],
        }
    }

    /// Builds a matrix from a row-major cell vector.
    ///
    /// # Panics
    ///
    /// Panics if `cells.len() != rows * cols`.
    pub fn from_cells(rows: usize, cols: usize, cells: Vec<bool>) -> Self {
        assert!(rows > 0 && cols > 0, "topology dimensions must be nonzero");
        assert_eq!(cells.len(), rows * cols, "cell count must match dimensions");
        TopologyMatrix { rows, cols, cells }
    }

    /// Number of rows (y intervals).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (x intervals).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads cell `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.rows && col < self.cols);
        self.cells[row * self.cols + col]
    }

    /// Writes cell `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        debug_assert!(row < self.rows && col < self.cols);
        self.cells[row * self.cols + col] = value;
    }

    /// Number of filled cells.
    pub fn filled_count(&self) -> usize {
        self.cells.iter().filter(|&&c| c).count()
    }

    /// Raw row-major cells.
    pub fn as_cells(&self) -> &[bool] {
        &self.cells
    }

    /// All maximal horizontal runs of filled cells, row by row.
    ///
    /// These are the "bars" whose physical widths the design rules
    /// constrain: the width of `Bar { c0, c1, .. }` under Δx is
    /// `dx[c0] + … + dx[c1-1]`.
    pub fn horizontal_bars(&self) -> Vec<Bar> {
        let mut bars = Vec::new();
        for row in 0..self.rows {
            let mut col = 0;
            while col < self.cols {
                if self.get(row, col) {
                    let c0 = col;
                    while col < self.cols && self.get(row, col) {
                        col += 1;
                    }
                    bars.push(Bar { row, c0, c1: col });
                } else {
                    col += 1;
                }
            }
        }
        bars
    }

    /// All maximal vertical runs of filled cells, column by column.
    ///
    /// Returned as `(col, r0, r1)` triples with rows `[r0, r1)` filled.
    pub fn vertical_bars(&self) -> Vec<(usize, usize, usize)> {
        let mut bars = Vec::new();
        for col in 0..self.cols {
            let mut row = 0;
            while row < self.rows {
                if self.get(row, col) {
                    let r0 = row;
                    while row < self.rows && self.get(row, col) {
                        row += 1;
                    }
                    bars.push((col, r0, row));
                } else {
                    row += 1;
                }
            }
        }
        bars
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> TopologyMatrix {
        let mut out = TopologyMatrix::new(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }
}

impl std::fmt::Display for TopologyMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{}", if self.get(r, c) { '#' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TopologyMatrix {
        // .##.
        // .##.
        // #..#
        TopologyMatrix::from_cells(
            3,
            4,
            vec![
                false, true, true, false, //
                false, true, true, false, //
                true, false, false, true,
            ],
        )
    }

    #[test]
    fn get_set() {
        let mut t = TopologyMatrix::new(2, 2);
        t.set(1, 0, true);
        assert!(t.get(1, 0));
        assert!(!t.get(0, 1));
        assert_eq!(t.filled_count(), 1);
    }

    #[test]
    fn horizontal_bars_found() {
        let bars = sample().horizontal_bars();
        assert_eq!(
            bars,
            vec![
                Bar {
                    row: 0,
                    c0: 1,
                    c1: 3
                },
                Bar {
                    row: 1,
                    c0: 1,
                    c1: 3
                },
                Bar {
                    row: 2,
                    c0: 0,
                    c1: 1
                },
                Bar {
                    row: 2,
                    c0: 3,
                    c1: 4
                },
            ]
        );
    }

    #[test]
    fn vertical_bars_found() {
        let bars = sample().vertical_bars();
        assert_eq!(bars, vec![(0, 2, 3), (1, 0, 2), (2, 0, 2), (3, 2, 3)]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let t = sample();
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn display_shows_cells() {
        let s = sample().to_string();
        assert_eq!(s, ".##.\n.##.\n#..#\n");
    }

    #[test]
    #[should_panic(expected = "cell count must match")]
    fn from_cells_validates_length() {
        let _ = TopologyMatrix::from_cells(2, 2, vec![true; 3]);
    }
}
