//! Axis-aligned integer rectangles on the design grid.

use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle in pixel coordinates.
///
/// `x`/`y` are the top-left corner; `w`/`h` are the extent in pixels. A
/// rectangle with zero width or height is *empty* and contains no pixels.
///
/// # Example
///
/// ```
/// use pp_geometry::Rect;
///
/// let r = Rect::new(2, 3, 4, 5);
/// assert_eq!(r.area(), 20);
/// assert!(r.contains(2, 3));
/// assert!(!r.contains(6, 3)); // exclusive right edge
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x: u32,
    /// Top edge (inclusive).
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and extent.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Creates a rectangle from inclusive-exclusive pixel bounds.
    ///
    /// # Panics
    ///
    /// Panics if `x1 < x0` or `y1 < y0`.
    pub fn from_bounds(x0: u32, y0: u32, x1: u32, y1: u32) -> Self {
        assert!(x1 >= x0 && y1 >= y0, "invalid rect bounds");
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// The number of pixels covered.
    pub fn area(&self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }

    /// Whether no pixels are covered.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Exclusive right edge.
    pub fn right(&self) -> u32 {
        self.x + self.w
    }

    /// Exclusive bottom edge.
    pub fn bottom(&self) -> u32 {
        self.y + self.h
    }

    /// Whether the pixel `(px, py)` lies inside.
    pub fn contains(&self, px: u32, py: u32) -> bool {
        px >= self.x && px < self.right() && py >= self.y && py < self.bottom()
    }

    /// The intersection with `other`, or `None` when disjoint (or when the
    /// intersection would be empty).
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x1 > x0 && y1 > y0 {
            Some(Rect::from_bounds(x0, y0, x1, y1))
        } else {
            None
        }
    }

    /// Whether the two rectangles share at least one pixel.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// The smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.right().max(other.right());
        let y1 = self.bottom().max(other.bottom());
        Rect::from_bounds(x0, y0, x1, y1)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{},{} {}x{}]", self.x, self.y, self.w, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_empty() {
        assert_eq!(Rect::new(0, 0, 3, 4).area(), 12);
        assert!(Rect::new(5, 5, 0, 4).is_empty());
        assert!(!Rect::new(5, 5, 1, 1).is_empty());
    }

    #[test]
    fn contains_edges() {
        let r = Rect::new(1, 1, 2, 2);
        assert!(r.contains(1, 1));
        assert!(r.contains(2, 2));
        assert!(!r.contains(3, 2));
        assert!(!r.contains(0, 1));
    }

    #[test]
    fn intersect_disjoint() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(2, 0, 2, 2); // touching edge, no shared pixel
        assert_eq!(a.intersect(&b), None);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(2, 1, 4, 4);
        assert_eq!(a.intersect(&b), Some(Rect::new(2, 1, 2, 3)));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(5, 5, 1, 1);
        let u = a.union(&b);
        assert!(u.contains(0, 0) && u.contains(5, 5));
        assert_eq!(u, Rect::new(0, 0, 6, 6));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = Rect::new(3, 3, 2, 2);
        let e = Rect::new(9, 9, 0, 0);
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
    }

    #[test]
    fn from_bounds_roundtrip() {
        let r = Rect::from_bounds(2, 3, 7, 9);
        assert_eq!((r.x, r.y, r.right(), r.bottom()), (2, 3, 7, 9));
    }

    #[test]
    #[should_panic(expected = "invalid rect bounds")]
    fn from_bounds_rejects_inverted() {
        let _ = Rect::from_bounds(5, 0, 2, 1);
    }
}
