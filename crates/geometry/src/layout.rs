//! Binary single-layer layout rasters.

use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// A single-layer Manhattan layout clip as a binary raster.
///
/// Each pixel is one design-grid unit (nominally a few nanometres). `true`
/// means metal is present. This is the "pixel-based representation" that
/// PatternPaint operates on: Δx/Δy of the squish grid are pre-defined with a
/// fixed physical width per pixel, so no nonlinear solver is needed to
/// recover geometry.
///
/// # Example
///
/// ```
/// use pp_geometry::{Layout, Rect};
///
/// let mut l = Layout::new(8, 8);
/// l.fill_rect(Rect::new(1, 1, 2, 6));
/// assert!(l.get(1, 3));
/// assert!(!l.get(4, 4));
/// assert_eq!(l.metal_area(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layout {
    width: u32,
    height: u32,
    bits: Vec<bool>,
}

impl Layout {
    /// Creates an empty (all-zero) layout clip.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "layout dimensions must be nonzero");
        Layout {
            width,
            height,
            bits: vec![false; (width as usize) * (height as usize)],
        }
    }

    /// Builds a layout from a row-major bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != width * height` or a dimension is zero.
    pub fn from_bits(width: u32, height: u32, bits: Vec<bool>) -> Self {
        assert!(width > 0 && height > 0, "layout dimensions must be nonzero");
        assert_eq!(
            bits.len(),
            (width as usize) * (height as usize),
            "bit vector length must match dimensions"
        );
        Layout {
            width,
            height,
            bits,
        }
    }

    /// Parses a layout from an ASCII art string where `#`/`1` are metal and
    /// `.`/`0`/space are empty. Rows are newline-separated; all rows must
    /// have equal length.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows, unknown characters or an empty string.
    pub fn from_ascii(art: &str) -> Self {
        let rows: Vec<&str> = art
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        assert!(!rows.is_empty(), "empty ascii layout");
        let width = rows[0].chars().count() as u32;
        let height = rows.len() as u32;
        let mut bits = Vec::with_capacity((width * height) as usize);
        for row in &rows {
            assert_eq!(row.chars().count() as u32, width, "ragged ascii layout");
            for ch in row.chars() {
                match ch {
                    '#' | '1' => bits.push(true),
                    '.' | '0' | ' ' => bits.push(false),
                    other => panic!("unknown layout character {other:?}"),
                }
            }
        }
        Layout::from_bits(width, height, bits)
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The clip as a rectangle at the origin.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, 0, self.width, self.height)
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + (x as usize)
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds (in debug builds; release builds may return
    /// an arbitrary pixel via the flattened index).
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> bool {
        self.bits[self.idx(x, y)]
    }

    /// Writes the pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: bool) {
        let i = self.idx(x, y);
        self.bits[i] = value;
    }

    /// Fills `rect ∩ bounds` with metal.
    pub fn fill_rect(&mut self, rect: Rect) {
        self.paint_rect(rect, true);
    }

    /// Clears `rect ∩ bounds`.
    pub fn clear_rect(&mut self, rect: Rect) {
        self.paint_rect(rect, false);
    }

    fn paint_rect(&mut self, rect: Rect, value: bool) {
        if let Some(r) = rect.intersect(&self.bounds()) {
            for y in r.y..r.bottom() {
                for x in r.x..r.right() {
                    let i = self.idx(x, y);
                    self.bits[i] = value;
                }
            }
        }
    }

    /// Number of metal pixels.
    pub fn metal_area(&self) -> u64 {
        self.bits.iter().filter(|&&b| b).count() as u64
    }

    /// Metal density in `[0, 1]`.
    pub fn density(&self) -> f64 {
        self.metal_area() as f64 / (self.width as f64 * self.height as f64)
    }

    /// Row-major iterator over pixels.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Raw row-major bits.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// One row of pixels.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    pub fn row(&self, y: u32) -> &[bool] {
        assert!(y < self.height);
        let start = (y as usize) * (self.width as usize);
        &self.bits[start..start + self.width as usize]
    }

    /// Extracts the sub-clip `rect ∩ bounds` as a new layout.
    ///
    /// # Panics
    ///
    /// Panics if the intersection is empty.
    pub fn crop(&self, rect: Rect) -> Layout {
        let r = rect
            .intersect(&self.bounds())
            .expect("crop rect must intersect layout");
        let mut out = Layout::new(r.w, r.h);
        for y in 0..r.h {
            for x in 0..r.w {
                out.set(x, y, self.get(r.x + x, r.y + y));
            }
        }
        out
    }

    /// Pastes `src` with its top-left corner at `(x, y)`, clipping at the
    /// boundary.
    pub fn paste(&mut self, src: &Layout, x: u32, y: u32) {
        for sy in 0..src.height() {
            let dy = y + sy;
            if dy >= self.height {
                break;
            }
            for sx in 0..src.width() {
                let dx = x + sx;
                if dx >= self.width {
                    break;
                }
                self.set(dx, dy, src.get(sx, sy));
            }
        }
    }

    /// Mirrors the layout left-right.
    pub fn flip_horizontal(&self) -> Layout {
        let mut out = Layout::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(self.width - 1 - x, y, self.get(x, y));
            }
        }
        out
    }

    /// Mirrors the layout top-bottom.
    pub fn flip_vertical(&self) -> Layout {
        let mut out = Layout::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(x, self.height - 1 - y, self.get(x, y));
            }
        }
        out
    }

    /// Rotates the clip 90° clockwise (width and height swap).
    pub fn rotate_cw(&self) -> Layout {
        let mut out = Layout::new(self.height, self.width);
        for y in 0..self.height {
            for x in 0..self.width {
                out.set(self.height - 1 - y, x, self.get(x, y));
            }
        }
        out
    }

    /// Per-pixel logical OR of two equally sized clips.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn or(&self, other: &Layout) -> Layout {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "layout dimensions must match"
        );
        let bits = self
            .bits
            .iter()
            .zip(&other.bits)
            .map(|(&a, &b)| a || b)
            .collect();
        Layout::from_bits(self.width, self.height, bits)
    }

    /// Number of pixels whose value differs between the two clips.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn hamming_distance(&self, other: &Layout) -> u64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "layout dimensions must match"
        );
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_query() {
        let mut l = Layout::new(10, 10);
        l.fill_rect(Rect::new(2, 2, 3, 4));
        assert!(l.get(2, 2) && l.get(4, 5));
        assert!(!l.get(5, 2) && !l.get(2, 6));
        assert_eq!(l.metal_area(), 12);
    }

    #[test]
    fn fill_clips_at_boundary() {
        let mut l = Layout::new(4, 4);
        l.fill_rect(Rect::new(2, 2, 10, 10));
        assert_eq!(l.metal_area(), 4);
    }

    #[test]
    fn clear_rect_removes_metal() {
        let mut l = Layout::new(6, 6);
        l.fill_rect(Rect::new(0, 0, 6, 6));
        l.clear_rect(Rect::new(1, 1, 4, 4));
        assert_eq!(l.metal_area(), 36 - 16);
        assert!(!l.get(2, 2));
        assert!(l.get(0, 0));
    }

    #[test]
    fn ascii_roundtrip() {
        let art = "\
            ##..\n\
            ##..\n\
            ..##\n\
            ..##";
        let l = Layout::from_ascii(art);
        assert_eq!(l.width(), 4);
        assert_eq!(l.height(), 4);
        assert!(l.get(0, 0) && l.get(3, 3));
        assert!(!l.get(2, 0));
    }

    #[test]
    fn crop_and_paste_roundtrip() {
        let mut l = Layout::new(8, 8);
        l.fill_rect(Rect::new(1, 1, 3, 3));
        let sub = l.crop(Rect::new(0, 0, 4, 4));
        let mut back = Layout::new(8, 8);
        back.paste(&sub, 0, 0);
        assert_eq!(back.crop(Rect::new(0, 0, 4, 4)), sub);
    }

    #[test]
    fn flips_are_involutions() {
        let mut l = Layout::new(5, 7);
        l.fill_rect(Rect::new(0, 1, 2, 3));
        assert_eq!(l.flip_horizontal().flip_horizontal(), l);
        assert_eq!(l.flip_vertical().flip_vertical(), l);
    }

    #[test]
    fn rotate_four_times_is_identity() {
        let mut l = Layout::new(4, 6);
        l.fill_rect(Rect::new(1, 2, 2, 3));
        let r = l.rotate_cw().rotate_cw().rotate_cw().rotate_cw();
        assert_eq!(r, l);
    }

    #[test]
    fn density_of_half_filled() {
        let mut l = Layout::new(4, 4);
        l.fill_rect(Rect::new(0, 0, 4, 2));
        assert!((l.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let mut a = Layout::new(4, 4);
        let mut b = Layout::new(4, 4);
        a.fill_rect(Rect::new(0, 0, 2, 1));
        b.fill_rect(Rect::new(1, 0, 2, 1));
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn or_unions_metal() {
        let mut a = Layout::new(3, 1);
        let mut b = Layout::new(3, 1);
        a.set(0, 0, true);
        b.set(2, 0, true);
        let u = a.or(&b);
        assert!(u.get(0, 0) && u.get(2, 0) && !u.get(1, 0));
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dimension_rejected() {
        let _ = Layout::new(0, 4);
    }
}
