//! The squish pattern representation (topology matrix + Δ vectors).
//!
//! A squish pattern compresses a Manhattan layout into a small binary
//! *topology matrix* plus two vectors of physical interval widths (Δx, Δy).
//! Scan lines are placed at every x (resp. y) coordinate where some polygon
//! edge lies; the matrix cell `(i, j)` records whether the region between
//! scan lines `j`/`j+1` (x) and `i`/`i+1` (y) is metal.

use crate::layout::Layout;
use crate::topology::TopologyMatrix;
use serde::{Deserialize, Serialize};

/// Returns the x coordinates of vertical scan lines of `layout`.
///
/// A scan line exists at `x` iff some row changes value between columns
/// `x-1` and `x` (plus the implicit clip borders 0 and `width`). The
/// returned vector is sorted, starts with 0 and ends with `width`.
///
/// # Example
///
/// ```
/// use pp_geometry::{scan_lines_x, Layout, Rect};
/// let mut l = Layout::new(8, 4);
/// l.fill_rect(Rect::new(2, 0, 3, 4));
/// assert_eq!(scan_lines_x(&l), vec![0, 2, 5, 8]);
/// ```
pub fn scan_lines_x(layout: &Layout) -> Vec<u32> {
    let mut lines = vec![0u32];
    for x in 1..layout.width() {
        let mut edge = false;
        for y in 0..layout.height() {
            if layout.get(x - 1, y) != layout.get(x, y) {
                edge = true;
                break;
            }
        }
        if edge {
            lines.push(x);
        }
    }
    lines.push(layout.width());
    lines
}

/// Returns the y coordinates of horizontal scan lines of `layout`.
///
/// Symmetric to [`scan_lines_x`].
pub fn scan_lines_y(layout: &Layout) -> Vec<u32> {
    let mut lines = vec![0u32];
    for y in 1..layout.height() {
        let mut edge = false;
        for x in 0..layout.width() {
            if layout.get(x, y - 1) != layout.get(x, y) {
                edge = true;
                break;
            }
        }
        if edge {
            lines.push(y);
        }
    }
    lines.push(layout.height());
    lines
}

/// A layout in squish form: binary topology matrix plus Δx/Δy widths.
///
/// Invariants (maintained by all constructors):
/// * `topology.cols() == dx.len()` and `topology.rows() == dy.len()`;
/// * every Δ entry is ≥ 1.
///
/// # Example
///
/// ```
/// use pp_geometry::{Layout, Rect, SquishPattern};
/// let mut l = Layout::new(8, 8);
/// l.fill_rect(Rect::new(2, 1, 3, 6));
/// let s = SquishPattern::from_layout(&l);
/// assert_eq!(s.to_layout(), l);
/// assert_eq!(s.dx().iter().sum::<u32>(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SquishPattern {
    topology: TopologyMatrix,
    dx: Vec<u32>,
    dy: Vec<u32>,
}

impl SquishPattern {
    /// Assembles a squish pattern from parts.
    ///
    /// # Panics
    ///
    /// Panics if the Δ vector lengths do not match the topology dimensions
    /// or any Δ is zero.
    pub fn new(topology: TopologyMatrix, dx: Vec<u32>, dy: Vec<u32>) -> Self {
        assert_eq!(
            topology.cols(),
            dx.len(),
            "dx length must equal topology cols"
        );
        assert_eq!(
            topology.rows(),
            dy.len(),
            "dy length must equal topology rows"
        );
        assert!(dx.iter().all(|&d| d > 0), "dx entries must be positive");
        assert!(dy.iter().all(|&d| d > 0), "dy entries must be positive");
        SquishPattern { topology, dx, dy }
    }

    /// Extracts the squish representation of a raster layout.
    pub fn from_layout(layout: &Layout) -> Self {
        let xs = scan_lines_x(layout);
        let ys = scan_lines_y(layout);
        Self::from_layout_with_lines(layout, &xs, &ys)
    }

    /// Builds a squish pattern from a raster using the *given* scan lines.
    ///
    /// The cell value is decided by majority vote of the raster pixels it
    /// covers, which makes this robust to noisy rasters whose edges do not
    /// exactly coincide with the provided lines (used by template-based
    /// denoising).
    ///
    /// # Panics
    ///
    /// Panics if either line set has fewer than two entries, is unsorted,
    /// contains duplicates, or does not start at 0 / end at the clip size.
    pub fn from_layout_with_lines(layout: &Layout, xs: &[u32], ys: &[u32]) -> Self {
        validate_lines(xs, layout.width());
        validate_lines(ys, layout.height());
        let cols = xs.len() - 1;
        let rows = ys.len() - 1;
        let mut topology = TopologyMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let mut ones = 0u64;
                let mut total = 0u64;
                for y in ys[i]..ys[i + 1] {
                    for x in xs[j]..xs[j + 1] {
                        total += 1;
                        if layout.get(x, y) {
                            ones += 1;
                        }
                    }
                }
                topology.set(i, j, ones * 2 > total);
            }
        }
        let dx = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let dy = ys.windows(2).map(|w| w[1] - w[0]).collect();
        SquishPattern::new(topology, dx, dy)
    }

    /// Rasterises back to a layout of size `(Σdx, Σdy)`.
    pub fn to_layout(&self) -> Layout {
        let width: u32 = self.dx.iter().sum();
        let height: u32 = self.dy.iter().sum();
        let mut layout = Layout::new(width, height);
        let mut y0 = 0u32;
        for i in 0..self.topology.rows() {
            let mut x0 = 0u32;
            for j in 0..self.topology.cols() {
                if self.topology.get(i, j) {
                    for y in y0..y0 + self.dy[i] {
                        for x in x0..x0 + self.dx[j] {
                            layout.set(x, y, true);
                        }
                    }
                }
                x0 += self.dx[j];
            }
            y0 += self.dy[i];
        }
        layout
    }

    /// The binary topology matrix.
    pub fn topology(&self) -> &TopologyMatrix {
        &self.topology
    }

    /// Interval widths between consecutive x scan lines.
    pub fn dx(&self) -> &[u32] {
        &self.dx
    }

    /// Interval widths between consecutive y scan lines.
    pub fn dy(&self) -> &[u32] {
        &self.dy
    }

    /// Replaces the Δ vectors (e.g. with solver output), keeping topology.
    ///
    /// # Panics
    ///
    /// Same invariants as [`SquishPattern::new`].
    pub fn with_deltas(&self, dx: Vec<u32>, dy: Vec<u32>) -> Self {
        SquishPattern::new(self.topology.clone(), dx, dy)
    }

    /// Total metal area: the sum of `Δx·Δy` over filled topology cells.
    ///
    /// Equals `self.to_layout().metal_area()` without rasterising.
    pub fn metal_area(&self) -> u64 {
        let mut area = 0u64;
        for i in 0..self.topology.rows() {
            for j in 0..self.topology.cols() {
                if self.topology.get(i, j) {
                    area += u64::from(self.dx[j]) * u64::from(self.dy[i]);
                }
            }
        }
        area
    }

    /// The canonical (minimal-scan-line) form of this pattern: adjacent
    /// identical columns and rows are merged, their Δs summed.
    ///
    /// For any pattern `s`, `s.canonicalize()` equals
    /// `SquishPattern::from_layout(&s.to_layout())` — the scan lines of
    /// the rasterisation are exactly the group boundaries where adjacent
    /// topology columns (rows) differ — so callers holding a squish built
    /// over non-minimal lines (e.g. template-denoiser output) can reach
    /// the canonical form without a rasterise + rescan round trip.
    pub fn canonicalize(&self) -> SquishPattern {
        let rows = self.topology.rows();
        let cols = self.topology.cols();
        // Representative index of each maximal run of identical columns.
        let mut col_reps: Vec<usize> = vec![0];
        for j in 1..cols {
            if (0..rows).any(|r| self.topology.get(r, j) != self.topology.get(r, j - 1)) {
                col_reps.push(j);
            }
        }
        let mut row_reps: Vec<usize> = vec![0];
        for i in 1..rows {
            if (0..cols).any(|c| self.topology.get(i, c) != self.topology.get(i - 1, c)) {
                row_reps.push(i);
            }
        }
        if col_reps.len() == cols && row_reps.len() == rows {
            return self.clone();
        }
        let mut dx = Vec::with_capacity(col_reps.len());
        for (gi, &j0) in col_reps.iter().enumerate() {
            let j1 = col_reps.get(gi + 1).copied().unwrap_or(cols);
            dx.push(self.dx[j0..j1].iter().sum());
        }
        let mut dy = Vec::with_capacity(row_reps.len());
        for (gi, &i0) in row_reps.iter().enumerate() {
            let i1 = row_reps.get(gi + 1).copied().unwrap_or(rows);
            dy.push(self.dy[i0..i1].iter().sum());
        }
        let mut topology = TopologyMatrix::new(row_reps.len(), col_reps.len());
        for (gi, &i) in row_reps.iter().enumerate() {
            for (gj, &j) in col_reps.iter().enumerate() {
                topology.set(gi, gj, self.topology.get(i, j));
            }
        }
        SquishPattern::new(topology, dx, dy)
    }

    /// Pattern complexity `(Cx, Cy)`: scan-line counts minus one per axis,
    /// i.e. the numbers of Δ intervals minus one. This is the tuple whose
    /// library-wide distribution defines the H1 entropy.
    pub fn complexity(&self) -> (u32, u32) {
        (self.dx.len() as u32 - 1, self.dy.len() as u32 - 1)
    }

    /// Cumulative x scan-line coordinates (starting at 0).
    pub fn x_lines(&self) -> Vec<u32> {
        cumsum(&self.dx)
    }

    /// Cumulative y scan-line coordinates (starting at 0).
    pub fn y_lines(&self) -> Vec<u32> {
        cumsum(&self.dy)
    }
}

fn cumsum(deltas: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(deltas.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for &d in deltas {
        acc += d;
        out.push(acc);
    }
    out
}

fn validate_lines(lines: &[u32], extent: u32) {
    assert!(lines.len() >= 2, "need at least two scan lines");
    assert_eq!(lines[0], 0, "scan lines must start at 0");
    assert_eq!(
        *lines.last().unwrap(),
        extent,
        "scan lines must end at clip size"
    );
    assert!(
        lines.windows(2).all(|w| w[0] < w[1]),
        "scan lines must be strictly increasing"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;
    use proptest::prelude::*;

    fn wire_layout() -> Layout {
        let mut l = Layout::new(12, 10);
        l.fill_rect(Rect::new(2, 1, 3, 8));
        l.fill_rect(Rect::new(7, 1, 3, 8));
        l
    }

    #[test]
    fn scan_lines_of_empty_clip() {
        let l = Layout::new(5, 3);
        assert_eq!(scan_lines_x(&l), vec![0, 5]);
        assert_eq!(scan_lines_y(&l), vec![0, 3]);
    }

    #[test]
    fn scan_lines_of_two_wires() {
        let l = wire_layout();
        assert_eq!(scan_lines_x(&l), vec![0, 2, 5, 7, 10, 12]);
        assert_eq!(scan_lines_y(&l), vec![0, 1, 9, 10]);
    }

    #[test]
    fn roundtrip_is_lossless() {
        let l = wire_layout();
        let s = SquishPattern::from_layout(&l);
        assert_eq!(s.to_layout(), l);
    }

    #[test]
    fn complexity_counts_intervals() {
        let s = SquishPattern::from_layout(&wire_layout());
        // 6 x-lines -> 5 intervals -> Cx = 4; 4 y-lines -> 3 intervals -> Cy = 2.
        assert_eq!(s.complexity(), (4, 2));
    }

    #[test]
    fn deltas_sum_to_extent() {
        let l = wire_layout();
        let s = SquishPattern::from_layout(&l);
        assert_eq!(s.dx().iter().sum::<u32>(), l.width());
        assert_eq!(s.dy().iter().sum::<u32>(), l.height());
    }

    #[test]
    fn majority_vote_with_coarse_lines() {
        // One 4-wide wire; force a single x interval over the full clip:
        // the cell is mostly empty, so the result is empty.
        let mut l = Layout::new(10, 4);
        l.fill_rect(Rect::new(0, 0, 4, 4));
        let s = SquishPattern::from_layout_with_lines(&l, &[0, 10], &[0, 4]);
        assert_eq!(s.to_layout().metal_area(), 0);
    }

    #[test]
    fn with_deltas_rescales_geometry() {
        let s = SquishPattern::from_layout(&wire_layout());
        let dx: Vec<u32> = s.dx().iter().map(|&d| d * 2).collect();
        let dy = s.dy().to_vec();
        let scaled = s.with_deltas(dx, dy);
        assert_eq!(scaled.to_layout().width(), 24);
        assert_eq!(scaled.topology(), s.topology());
    }

    #[test]
    #[should_panic(expected = "dx entries must be positive")]
    fn zero_delta_rejected() {
        let s = SquishPattern::from_layout(&wire_layout());
        let mut dx = s.dx().to_vec();
        dx[0] = 0;
        let _ = s.with_deltas(dx, s.dy().to_vec());
    }

    #[test]
    fn metal_area_matches_raster() {
        let l = wire_layout();
        let s = SquishPattern::from_layout(&l);
        assert_eq!(s.metal_area(), l.metal_area());
        assert_eq!(
            SquishPattern::from_layout(&Layout::new(6, 6)).metal_area(),
            0
        );
    }

    #[test]
    fn canonicalize_merges_redundant_lines() {
        let l = wire_layout();
        // Build over every unit line: maximally redundant.
        let xs: Vec<u32> = (0..=l.width()).collect();
        let ys: Vec<u32> = (0..=l.height()).collect();
        let fine = SquishPattern::from_layout_with_lines(&l, &xs, &ys);
        let canon = fine.canonicalize();
        assert_eq!(canon, SquishPattern::from_layout(&l));
        // Canonical form is a fixed point.
        assert_eq!(canon.canonicalize(), canon);
    }

    proptest! {
        /// canonicalize() == rasterise-then-resquish on arbitrary squish
        /// patterns built over arbitrary (valid) line subsets.
        #[test]
        fn prop_canonicalize_matches_resquish(rects in proptest::collection::vec(
            (0u32..20, 0u32..20, 1u32..8, 1u32..8), 0..6),
            keep in proptest::collection::vec(0u32..2, 23..24)) {
            let mut l = Layout::new(24, 24);
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            // Arbitrary line set: borders plus any subset of interior lines.
            let mut xs = vec![0u32];
            xs.extend((1..24).filter(|&x| keep[(x - 1) as usize] > 0));
            xs.push(24);
            let s = SquishPattern::from_layout_with_lines(&l, &xs, &xs);
            prop_assert_eq!(
                s.canonicalize(),
                SquishPattern::from_layout(&s.to_layout())
            );
        }

        /// Squish roundtrip is the identity on arbitrary rect soups.
        #[test]
        fn prop_roundtrip(rects in proptest::collection::vec(
            (0u32..20, 0u32..20, 1u32..8, 1u32..8), 0..6)) {
            let mut l = Layout::new(24, 24);
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            let s = SquishPattern::from_layout(&l);
            prop_assert_eq!(s.to_layout(), l);
        }

        /// Scan lines are strictly increasing and span the clip.
        #[test]
        fn prop_scan_lines_valid(rects in proptest::collection::vec(
            (0u32..20, 0u32..20, 1u32..8, 1u32..8), 0..6)) {
            let mut l = Layout::new(24, 24);
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            for lines in [scan_lines_x(&l), scan_lines_y(&l)] {
                prop_assert_eq!(lines[0], 0);
                prop_assert_eq!(*lines.last().unwrap(), 24);
                prop_assert!(lines.windows(2).all(|w| w[0] < w[1]));
            }
        }

        /// Topology size never exceeds the raster size.
        #[test]
        fn prop_compression(rects in proptest::collection::vec(
            (0u32..20, 0u32..20, 1u32..8, 1u32..8), 0..6)) {
            let mut l = Layout::new(24, 24);
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            let s = SquishPattern::from_layout(&l);
            prop_assert!(s.dx().len() <= 24);
            prop_assert!(s.dy().len() <= 24);
        }
    }
}
