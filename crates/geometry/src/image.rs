//! Grayscale floating-point images bridging layouts and the diffusion model.
//!
//! The diffusion substrate works in continuous pixel space; [`GrayImage`]
//! holds one f32 per pixel in nominal range `[-1, 1]` (metal = +1, empty =
//! -1, the usual normalisation for image diffusion models).

use crate::layout::Layout;
use serde::{Deserialize, Serialize};

/// A dense grayscale image with f32 pixels.
///
/// # Example
///
/// ```
/// use pp_geometry::{GrayImage, Layout, Rect};
///
/// let mut l = Layout::new(4, 4);
/// l.fill_rect(Rect::new(0, 0, 2, 4));
/// let img = GrayImage::from_layout(&l);
/// assert_eq!(img.get(0, 0), 1.0);
/// assert_eq!(img.get(3, 0), -1.0);
/// assert_eq!(img.to_layout(0.0), l);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrayImage {
    width: u32,
    height: u32,
    pixels: Vec<f32>,
}

impl GrayImage {
    /// Creates an image filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn filled(width: u32, height: u32, value: f32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage {
            width,
            height,
            pixels: vec![value; (width as usize) * (height as usize)],
        }
    }

    /// Creates an all-background (−1) image.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, -1.0)
    }

    /// Wraps a row-major pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<f32>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        assert_eq!(
            pixels.len(),
            (width as usize) * (height as usize),
            "pixel count must match dimensions"
        );
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// Encodes a binary layout as ±1 pixels.
    pub fn from_layout(layout: &Layout) -> Self {
        let pixels = layout.iter().map(|b| if b { 1.0 } else { -1.0 }).collect();
        GrayImage {
            width: layout.width(),
            height: layout.height(),
            pixels,
        }
    }

    /// Thresholds back to a binary layout (`pixel > threshold` ⇒ metal).
    pub fn to_layout(&self, threshold: f32) -> Layout {
        let bits = self.pixels.iter().map(|&p| p > threshold).collect();
        Layout::from_bits(self.width, self.height, bits)
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        (y as usize) * (self.width as usize) + (x as usize)
    }

    /// Reads pixel `(x, y)`.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> f32 {
        self.pixels[self.idx(x, y)]
    }

    /// Writes pixel `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: f32) {
        let i = self.idx(x, y);
        self.pixels[i] = value;
    }

    /// Raw row-major pixels.
    pub fn as_pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Mutable raw pixels.
    pub fn as_pixels_mut(&mut self) -> &mut [f32] {
        &mut self.pixels
    }

    /// Consumes the image, returning its pixel buffer.
    pub fn into_pixels(self) -> Vec<f32> {
        self.pixels
    }

    /// Clamps every pixel into `[lo, hi]`.
    pub fn clamp(&mut self, lo: f32, hi: f32) {
        for p in &mut self.pixels {
            *p = p.clamp(lo, hi);
        }
    }

    /// Mean absolute difference against another image.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mean_abs_diff(&self, other: &GrayImage) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimensions must match"
        );
        let sum: f32 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| (a - b).abs())
            .sum();
        sum / self.pixels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;
    use proptest::prelude::*;

    #[test]
    fn layout_roundtrip() {
        let mut l = Layout::new(6, 5);
        l.fill_rect(Rect::new(1, 1, 3, 3));
        let img = GrayImage::from_layout(&l);
        assert_eq!(img.to_layout(0.0), l);
    }

    #[test]
    fn threshold_splits_pixels() {
        let img = GrayImage::from_pixels(2, 1, vec![0.4, 0.6]);
        let l = img.to_layout(0.5);
        assert!(!l.get(0, 0));
        assert!(l.get(1, 0));
    }

    #[test]
    fn clamp_bounds_pixels() {
        let mut img = GrayImage::from_pixels(3, 1, vec![-5.0, 0.2, 7.0]);
        img.clamp(-1.0, 1.0);
        assert_eq!(img.as_pixels(), &[-1.0, 0.2, 1.0]);
    }

    #[test]
    fn mean_abs_diff_zero_for_self() {
        let img = GrayImage::filled(4, 4, 0.3);
        assert_eq!(img.mean_abs_diff(&img), 0.0);
    }

    #[test]
    fn mean_abs_diff_simple() {
        let a = GrayImage::filled(2, 2, 1.0);
        let b = GrayImage::filled(2, 2, 0.0);
        assert!((a.mean_abs_diff(&b) - 1.0).abs() < 1e-6);
    }

    proptest! {
        /// from_layout always produces exactly ±1 pixels.
        #[test]
        fn prop_binary_pixels(rects in proptest::collection::vec(
            (0u32..8, 0u32..8, 1u32..4, 1u32..4), 0..4)) {
            let mut l = Layout::new(10, 10);
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            let img = GrayImage::from_layout(&l);
            prop_assert!(img.as_pixels().iter().all(|&p| p == 1.0 || p == -1.0));
            prop_assert_eq!(img.to_layout(0.0), l);
        }
    }
}
