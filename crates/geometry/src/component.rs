//! Connected-component extraction on layouts.

use crate::layout::Layout;
use crate::rect::Rect;
use serde::{Deserialize, Serialize};

/// One 4-connected metal component of a layout.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Component {
    /// Number of metal pixels in the component.
    pub area: u64,
    /// Tight bounding box.
    pub bbox: Rect,
}

/// Extracts all 4-connected metal components.
///
/// Components are returned in raster-scan order of their first pixel.
/// Diagonal adjacency does **not** connect (matching how metal shapes merge
/// physically only when they share an edge).
///
/// # Example
///
/// ```
/// use pp_geometry::{connected_components, Layout, Rect};
///
/// let mut l = Layout::new(8, 8);
/// l.fill_rect(Rect::new(0, 0, 2, 2));
/// l.fill_rect(Rect::new(4, 4, 3, 2));
/// let comps = connected_components(&l);
/// assert_eq!(comps.len(), 2);
/// assert_eq!(comps[0].area, 4);
/// assert_eq!(comps[1].bbox, Rect::new(4, 4, 3, 2));
/// ```
pub fn connected_components(layout: &Layout) -> Vec<Component> {
    let w = layout.width() as usize;
    let h = layout.height() as usize;
    let mut visited = vec![false; w * h];
    let mut out = Vec::new();
    let mut stack: Vec<(u32, u32)> = Vec::new();

    for y0 in 0..layout.height() {
        for x0 in 0..layout.width() {
            let i0 = (y0 as usize) * w + x0 as usize;
            if visited[i0] || !layout.get(x0, y0) {
                continue;
            }
            let mut area = 0u64;
            let (mut minx, mut miny, mut maxx, mut maxy) = (x0, y0, x0, y0);
            stack.push((x0, y0));
            visited[i0] = true;
            while let Some((x, y)) = stack.pop() {
                area += 1;
                minx = minx.min(x);
                maxx = maxx.max(x);
                miny = miny.min(y);
                maxy = maxy.max(y);
                let mut push = |nx: u32, ny: u32, stack: &mut Vec<(u32, u32)>| {
                    let ni = (ny as usize) * w + nx as usize;
                    if !visited[ni] && layout.get(nx, ny) {
                        visited[ni] = true;
                        stack.push((nx, ny));
                    }
                };
                if x > 0 {
                    push(x - 1, y, &mut stack);
                }
                if x + 1 < layout.width() {
                    push(x + 1, y, &mut stack);
                }
                if y > 0 {
                    push(x, y - 1, &mut stack);
                }
                if y + 1 < layout.height() {
                    push(x, y + 1, &mut stack);
                }
            }
            out.push(Component {
                area,
                bbox: Rect::from_bounds(minx, miny, maxx + 1, maxy + 1),
            });
        }
        let _ = h; // silence unused in release
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_layout_has_no_components() {
        assert!(connected_components(&Layout::new(4, 4)).is_empty());
    }

    #[test]
    fn single_rect() {
        let mut l = Layout::new(6, 6);
        l.fill_rect(Rect::new(1, 2, 3, 2));
        let comps = connected_components(&l);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 6);
        assert_eq!(comps[0].bbox, Rect::new(1, 2, 3, 2));
    }

    #[test]
    fn diagonal_touch_does_not_connect() {
        let mut l = Layout::new(4, 4);
        l.set(0, 0, true);
        l.set(1, 1, true);
        assert_eq!(connected_components(&l).len(), 2);
    }

    #[test]
    fn l_shape_is_one_component() {
        let mut l = Layout::new(8, 8);
        l.fill_rect(Rect::new(1, 1, 2, 6));
        l.fill_rect(Rect::new(1, 5, 6, 2));
        let comps = connected_components(&l);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].area, 2 * 6 + 6 * 2 - 2 * 2);
    }

    proptest! {
        /// Total component area equals the layout's metal area.
        #[test]
        fn prop_total_area(rects in proptest::collection::vec(
            (0u32..12, 0u32..12, 1u32..6, 1u32..6), 0..5)) {
            let mut l = Layout::new(16, 16);
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            let total: u64 = connected_components(&l).iter().map(|c| c.area).sum();
            prop_assert_eq!(total, l.metal_area());
        }

        /// Every component fits in its bounding box.
        #[test]
        fn prop_bbox_contains_area(rects in proptest::collection::vec(
            (0u32..12, 0u32..12, 1u32..6, 1u32..6), 1..5)) {
            let mut l = Layout::new(16, 16);
            for (x, y, w, h) in rects {
                l.fill_rect(Rect::new(x, y, w, h));
            }
            for c in connected_components(&l) {
                prop_assert!(c.area <= c.bbox.area());
            }
        }
    }
}
