//! Layout rasters, scan lines and the squish pattern representation.
//!
//! This crate is the geometric substrate of the PatternPaint reproduction.
//! Everything above it (design-rule checking, diffusion, denoising, metrics)
//! speaks one of two languages defined here:
//!
//! * [`Layout`] — a single-layer binary Manhattan raster, one bit per design
//!   grid pixel. This is the "pixel-based representation" PatternPaint uses
//!   instead of solving geometry vectors with a nonlinear solver.
//! * [`SquishPattern`] — the squish representation of a layout: a binary
//!   topology matrix plus Δx/Δy interval vectors recording the distances
//!   between consecutive scan lines (Gennari & Lai, US 8832621B1).
//!
//! The two are loss-lessly inter-convertible for Manhattan geometry:
//! [`SquishPattern::from_layout`] extracts scan lines at every polygon edge,
//! and [`SquishPattern::to_layout`] rasterises back.
//!
//! # Example
//!
//! ```
//! use pp_geometry::{Layout, Rect, SquishPattern};
//!
//! let mut layout = Layout::new(16, 16);
//! layout.fill_rect(Rect::new(2, 1, 4, 12)); // a vertical wire
//! layout.fill_rect(Rect::new(9, 1, 4, 12)); // another track
//!
//! let squish = SquishPattern::from_layout(&layout);
//! assert_eq!(squish.to_layout(), layout);
//! // Complexity (Cx, Cy) counts scan lines minus one per axis.
//! let (cx, cy) = squish.complexity();
//! assert!(cx >= 3 && cy >= 1);
//! ```

#![forbid(unsafe_code)]

pub mod component;
pub mod image;
pub mod io;
pub mod layout;
pub mod rect;
pub mod render;
pub mod signature;
pub mod squish;
pub mod topology;

pub use component::{connected_components, Component};
pub use image::GrayImage;
pub use io::{read_library, read_squish_library, write_library, write_squish_library};
pub use layout::Layout;
pub use rect::Rect;
pub use signature::Signature;
pub use squish::{scan_lines_x, scan_lines_y, SquishPattern};
pub use topology::TopologyMatrix;
