//! Criterion benches for the design-choice ablations called out in
//! DESIGN.md: denoiser threshold, selection strategy cost, and network
//! width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_diffusion::{DiffusionConfig, DiffusionModel};
use pp_geometry::GrayImage;
use pp_inpaint::{Denoiser, MaskSet, NlmDenoiser, TemplateDenoiser, ThresholdDenoiser};
use pp_pdk::SynthNode;
use pp_selection::{select_representatives, PcaSelector};

/// Template-matching threshold T (Algorithm 1): cost is flat in T; the
/// quality impact is measured by `table3`-style runs.
fn bench_denoise_threshold(c: &mut Criterion) {
    let node = SynthNode::default();
    let model = DiffusionModel::new(DiffusionConfig::standard(node.clip()), 0);
    let starter = node.starter_patterns()[0].clone();
    let raw = model
        .sample_inpaint(
            &GrayImage::from_layout(&starter),
            MaskSet::Default.masks(node.clip())[0].as_image(),
            3,
        )
        .unwrap();
    let mut group = c.benchmark_group("denoise_threshold");
    for t in [1u32, 2, 4] {
        let d = TemplateDenoiser::new(t);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| d.denoise(&raw, &starter))
        });
    }
    group.finish();
}

/// Denoiser scheme cost comparison (template vs nlm vs none).
fn bench_denoiser_schemes(c: &mut Criterion) {
    let node = SynthNode::default();
    let model = DiffusionModel::new(DiffusionConfig::standard(node.clip()), 0);
    let starter = node.starter_patterns()[0].clone();
    let raw = model
        .sample_inpaint(
            &GrayImage::from_layout(&starter),
            MaskSet::Default.masks(node.clip())[0].as_image(),
            3,
        )
        .unwrap();
    let mut group = c.benchmark_group("denoiser_scheme");
    let schemes: [&dyn Denoiser; 3] = [
        &TemplateDenoiser::new(2),
        &NlmDenoiser::new(),
        &ThresholdDenoiser::new(),
    ];
    for d in schemes {
        group.bench_function(d.name(), |b| b.iter(|| d.denoise(&raw, &starter)));
    }
    group.finish();
}

/// PCA + farthest-point selection vs plain farthest-point on raw pixels
/// (the paper's Algorithm 2 vs a no-PCA ablation).
fn bench_selection(c: &mut Criterion) {
    let node = SynthNode::default();
    let library: Vec<_> = (0..8).flat_map(|_| node.starter_patterns()).collect();
    let mut group = c.benchmark_group("selection");
    group.sample_size(10);
    group.bench_function("pca_farthest_point", |b| {
        let selector = PcaSelector::new(0.9, 0.4, 1);
        b.iter(|| selector.select(&library, 10))
    });
    group.bench_function("raw_farthest_point", |b| {
        let features: Vec<Vec<f32>> = library
            .iter()
            .map(|l| l.iter().map(|p| if p { 1.0 } else { -1.0 }).collect())
            .collect();
        b.iter(|| select_representatives(&features, 10, |_| true, 1))
    });
    group.finish();
}

/// U-Net width ablation: sampling cost vs base channel count.
fn bench_model_width(c: &mut Criterion) {
    let node = SynthNode::default();
    let img = GrayImage::filled(node.clip(), node.clip(), -1.0);
    let mask = GrayImage::filled(node.clip(), node.clip(), 1.0);
    let mut group = c.benchmark_group("unet_width");
    group.sample_size(10);
    for base_ch in [8usize, 16, 24] {
        let cfg = DiffusionConfig {
            base_ch,
            ..DiffusionConfig::standard(node.clip())
        };
        let model = DiffusionModel::new(cfg, 0);
        group.bench_with_input(BenchmarkId::from_parameter(base_ch), &base_ch, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                model.sample_inpaint(&img, &mask, seed).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_denoise_threshold, bench_denoiser_schemes, bench_selection, bench_model_width
}
criterion_main!(benches);
