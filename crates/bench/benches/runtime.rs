//! Criterion benches backing Table II and Figure 9: the per-sample cost
//! of each pipeline stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_diffusion::{DiffusionConfig, DiffusionModel};
use pp_drc::check_layout;
use pp_geometry::GrayImage;
use pp_inpaint::{Denoiser, MaskSet, TemplateDenoiser};
use pp_pdk::SynthNode;
use pp_solver::{random_topology, LegalizeSolver, SolverSetting};

/// One DDIM inpainting sample (untrained weights; runtime is
/// architecture-bound, not weight-bound).
fn bench_inpaint(c: &mut Criterion) {
    let node = SynthNode::default();
    let model = DiffusionModel::new(DiffusionConfig::standard(node.clip()), 0);
    let starter = &node.starter_patterns()[0];
    let img = GrayImage::from_layout(starter);
    let mask = MaskSet::Default.masks(node.clip())[0].clone();
    c.bench_function("inpaint_one_sample", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            model.sample_inpaint(&img, mask.as_image(), seed).unwrap()
        });
    });
}

/// Template-based denoising of one raw sample.
fn bench_denoise(c: &mut Criterion) {
    let node = SynthNode::default();
    let model = DiffusionModel::new(DiffusionConfig::standard(node.clip()), 0);
    let starter = node.starter_patterns()[0].clone();
    let img = GrayImage::from_layout(&starter);
    let mask = MaskSet::Default.masks(node.clip())[0].clone();
    let raw = model.sample_inpaint(&img, mask.as_image(), 7).unwrap();
    let denoiser = TemplateDenoiser::new(2);
    c.bench_function("template_denoise_one_sample", |b| {
        b.iter(|| denoiser.denoise(&raw, &starter));
    });
}

/// Sign-off DRC of one clip.
fn bench_drc(c: &mut Criterion) {
    let node = SynthNode::default();
    let starter = node.starter_patterns()[5].clone();
    c.bench_function("drc_check_one_clip", |b| {
        b.iter(|| check_layout(&starter, node.rules()));
    });
}

/// Solver legalization across settings and sizes (the Figure 9 axes).
fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_legalize");
    group.sample_size(10);
    for setting in SolverSetting::ALL {
        for size in [10usize, 40] {
            let solver = LegalizeSolver::new(setting);
            let topo = random_topology(size, 1);
            group.bench_with_input(
                BenchmarkId::new(setting.to_string(), size),
                &topo,
                |b, topo| b.iter(|| solver.solve(topo, 1)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inpaint, bench_denoise, bench_drc, bench_solver
}
criterion_main!(benches);
