//! Shared harness for regenerating every table and figure of the
//! PatternPaint evaluation.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md's
//! experiment index):
//!
//! | target | artifact |
//! |---|---|
//! | `table1` | Table I — generation comparison (baselines + 4 PatternPaint variants, init + iter) |
//! | `table2` | Table II — per-sample runtime (inpaint / denoise / DiffPattern) |
//! | `table3` | Table III — denoising-scheme success rates |
//! | `fig7`  | Figure 7 — iterative-generation metric curves |
//! | `fig8`  | Figure 8 — starter + generated-variation gallery (PGM + ASCII) |
//! | `fig9`  | Figure 9 — solver runtime/success vs topology size |
//!
//! Counts are scaled ~20× down from the paper (CPU substrate); set
//! `PP_SCALE=N` to multiply sample counts. Pretrained/finetuned model
//! weights are cached under `target/pp-model-cache/` so repeated runs
//! skip training.

#![forbid(unsafe_code)]

use patternpaint_core::{PatternPaint, PipelineConfig};
use pp_pdk::SynthNode;
use std::fs;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;

/// The four PatternPaint model variants of Table I / Figure 7.
///
/// `sd1`/`sd2` correspond to the paper's two Stable Diffusion inpainting
/// checkpoints; here they are two pretraining seeds of the substrate
/// (independent "foundation" models).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Variant label, e.g. `"sd1-base"`.
    pub name: &'static str,
    /// Pretraining seed.
    pub seed: u64,
    /// Whether few-shot finetuning is applied.
    pub finetuned: bool,
}

/// All four variants in the paper's row order.
pub const VARIANTS: [Variant; 4] = [
    Variant {
        name: "sd1-base",
        seed: 101,
        finetuned: false,
    },
    Variant {
        name: "sd2-base",
        seed: 202,
        finetuned: false,
    },
    Variant {
        name: "sd1-ft",
        seed: 101,
        finetuned: true,
    },
    Variant {
        name: "sd2-ft",
        seed: 202,
        finetuned: true,
    },
];

/// Sample-count multiplier from the `PP_SCALE` environment variable.
pub fn scale() -> usize {
    std::env::var("PP_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/pp-model-cache");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Returns a pipeline for `variant`, pretraining (and finetuning when
/// requested) only on cache miss; weights are cached on disk.
///
/// # Panics
///
/// Panics if the (preset) configuration fails pipeline validation —
/// a bench-harness bug, not a runtime condition.
pub fn cached_pipeline(variant: Variant, cfg: &PipelineConfig) -> PatternPaint {
    let node = SynthNode::default();
    let stage = if variant.finetuned { "ft" } else { "base" };
    let path = cache_dir().join(format!("{}-{}.weights", variant.name, stage));

    let mut pp =
        PatternPaint::untrained(node.clone(), *cfg, variant.seed).expect("bench presets are valid");
    if let Ok(f) = fs::File::open(&path) {
        if pp.load_weights(BufReader::new(f)).is_ok() {
            eprintln!("[cache] loaded {}", path.display());
            return pp;
        }
    }
    eprintln!(
        "[cache] training {} (miss at {})",
        variant.name,
        path.display()
    );
    // Base weights may themselves be cached.
    let mut pp = if variant.finetuned {
        let base = Variant {
            finetuned: false,
            ..variant
        };
        let mut pp = cached_pipeline(base, cfg);
        pp.finetune().expect("starters are well-formed");
        pp
    } else {
        PatternPaint::pretrained(node, *cfg, variant.seed).expect("bench presets are valid")
    };
    if let Ok(f) = fs::File::create(&path) {
        let _ = pp.save_weights(BufWriter::new(f));
    }
    pp
}

/// Writes a JSON report next to the repository root for EXPERIMENTS.md.
pub fn dump_json(name: &str, value: &serde_json::Value) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    if let Ok(s) = serde_json::to_string_pretty(value) {
        let _ = fs::write(&path, s);
        eprintln!("[json] wrote {}", path.display());
    }
}

/// Formats one Table I-style row.
pub fn fmt_row(
    name: &str,
    generated: usize,
    legal: usize,
    unique: usize,
    h1: f64,
    h2: f64,
) -> String {
    format!("{name:<24} {generated:>9} {legal:>7} {unique:>7} {h1:>6.2} {h2:>6.2}",)
}

/// The Table I-style header matching [`fmt_row`].
pub fn fmt_header() -> String {
    format!(
        "{:<24} {:>9} {:>7} {:>7} {:>6} {:>6}",
        "method", "generated", "legal", "unique", "H1", "H2"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_cover_paper_rows() {
        assert_eq!(VARIANTS.len(), 4);
        assert_eq!(VARIANTS.iter().filter(|v| v.finetuned).count(), 2);
        // base/ft pairs share pretraining seeds.
        assert_eq!(VARIANTS[0].seed, VARIANTS[2].seed);
        assert_eq!(VARIANTS[1].seed, VARIANTS[3].seed);
    }

    #[test]
    fn scale_defaults_to_one() {
        std::env::remove_var("PP_SCALE");
        assert_eq!(scale(), 1);
    }

    #[test]
    fn row_formatting_aligns() {
        let h = fmt_header();
        let r = fmt_row("starter patterns", 0, 20, 20, 3.68, 4.32);
        assert_eq!(h.len(), r.len());
    }
}
