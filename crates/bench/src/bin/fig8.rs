//! Regenerates Figure 8: a starter pattern and five generated
//! variations, written as PGM images plus terminal ASCII art.
//!
//! Run: `cargo run -p pp-bench --release --bin fig8`
//! Output: `bench_results/fig8/*.pgm`

#![forbid(unsafe_code)]

use patternpaint_core::PipelineConfig;
use pp_bench::{cached_pipeline, Variant};
use pp_drc::check_layout;
use pp_geometry::render::{to_ascii, write_pgm};
use pp_inpaint::{Denoiser, MaskSet, TemplateDenoiser};
use pp_pdk::SynthNode;
use std::fs::{self, File};
use std::io::BufWriter;
use std::path::PathBuf;

fn main() {
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let pp = cached_pipeline(
        Variant {
            name: "sd1-ft",
            seed: 101,
            finetuned: true,
        },
        &cfg,
    );

    let out_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results/fig8");
    let _ = fs::create_dir_all(&out_dir);

    let starter = pp.starters()[8].clone(); // the H-pattern starter
    println!("Figure 8 — starter pattern:");
    println!("{}", to_ascii(&starter));
    if let Ok(f) = File::create(out_dir.join("starter.pgm")) {
        let _ = write_pgm(&starter, BufWriter::new(f));
    }

    // Generate variations until five DR-clean distinct ones are found.
    let denoiser = TemplateDenoiser::new(2);
    let masks: Vec<_> = MaskSet::ALL
        .iter()
        .flat_map(|s| s.masks(node.clip()))
        .collect();
    let mut found = 0usize;
    let mut attempt = 0u64;
    while found < 5 && attempt < 400 {
        let mask = &masks[(attempt as usize) % masks.len()];
        let raw = pp
            .generate_raw(&[(starter.clone(), mask.clone())], 0xf18 + attempt)
            .expect("job is well-formed");
        attempt += 1;
        let candidate = denoiser.denoise(&raw[0].raw, &starter);
        if candidate == starter || candidate.metal_area() == 0 {
            continue;
        }
        if check_layout(&candidate, node.rules()).is_clean() {
            found += 1;
            println!("generated variation {found} (mask {:?}):", mask.region());
            println!("{}", to_ascii(&candidate));
            if let Ok(f) = File::create(out_dir.join(format!("variation{found}.pgm"))) {
                let _ = write_pgm(&candidate, BufWriter::new(f));
            }
        }
    }
    println!("wrote {} variations to {}", found, out_dir.display());
    if found < 5 {
        println!("(fewer than 5 after {attempt} attempts — rerun or raise PP_SCALE)");
    }
}
