//! Regenerates Figure 9: nonlinear-solver runtime and success rate
//! versus topology size under three rule settings, with PatternPaint's
//! template-denoising runtime as the flat reference line.
//!
//! Run: `cargo run -p pp-bench --release --bin fig9`

#![forbid(unsafe_code)]

use pp_bench::dump_json;
use pp_geometry::{GrayImage, Layout, Rect};
use pp_inpaint::{Denoiser, TemplateDenoiser};
use pp_solver::{random_topology, LegalizeSolver, SolverSetting};
use serde_json::json;
use std::time::Instant;

/// Template-denoise runtime on a clip whose squish topology has roughly
/// `size` scan lines per axis (the fair PatternPaint-side comparison).
fn denoise_runtime(size: usize) -> f64 {
    let side = (4 * size) as u32;
    let mut template = Layout::new(side, side);
    let mut x = 2u32;
    while x + 3 < side {
        template.fill_rect(Rect::new(x, 2, 3, side - 4));
        x += 8;
    }
    let img = GrayImage::from_layout(&template);
    let d = TemplateDenoiser::new(2);
    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = d.denoise(&img, &template);
    }
    t0.elapsed().as_secs_f64() / f64::from(reps)
}

fn main() {
    let sizes = [10usize, 20, 30, 40, 50, 60, 70, 80];
    let trials = 10u64;
    let mut jrows = Vec::new();

    println!("Figure 9 — solver runtime (s) and success rate (%) vs topology size");
    println!(
        "{:>5} {:>18} {:>12} {:>10}",
        "size", "setting", "runtime (s)", "success"
    );
    for &size in &sizes {
        for setting in SolverSetting::ALL {
            let solver = LegalizeSolver::new(setting);
            let t0 = Instant::now();
            let ok = (0..trials)
                .filter(|&s| solver.solve(&random_topology(size, s), s).success)
                .count();
            let avg = t0.elapsed().as_secs_f64() / trials as f64;
            let pct = 100.0 * ok as f64 / trials as f64;
            println!(
                "{:>5} {:>18} {:>12.5} {:>9.0}%",
                size,
                setting.to_string(),
                avg,
                pct
            );
            jrows.push(json!({
                "size": size, "setting": setting.to_string(),
                "runtime_s": avg, "success_pct": pct,
            }));
        }
        let dn = denoise_runtime(size);
        println!(
            "{:>5} {:>18} {:>12.5} {:>10}",
            size, "patternpaint-denoise", dn, "-"
        );
        jrows.push(json!({
            "size": size, "setting": "patternpaint-denoise", "runtime_s": dn,
        }));
    }
    println!();
    println!("paper reference (Fig. 9): solver runtime grows steeply with size and");
    println!("rule complexity; success <50% past 60x60 under complex settings, while");
    println!("PatternPaint's denoising stays flat and orders of magnitude cheaper.");
    dump_json("fig9", &json!({ "rows": jrows }));
}
