//! Regenerates Table I: performance comparison for layout pattern
//! generation (starters, CUP, DiffPattern, PatternPaint ×4, init+iter).
//!
//! Run: `cargo run -p pp-bench --release --bin table1`
//! Scale up with `PP_SCALE=5` (multiplies sample counts).

use patternpaint_core::{PatternLibrary, PipelineConfig};
use pp_baselines::{CupBaseline, DiffPatternBaseline};
use pp_bench::{cached_pipeline, dump_json, fmt_header, fmt_row, scale, VARIANTS};
use pp_geometry::Layout;
use pp_metrics::LibraryStats;
use pp_pdk::{RuleBasedGenerator, SynthNode};
use serde_json::json;

fn stats_row(name: &str, generated: usize, legal: usize, patterns: &[Layout]) -> (String, serde_json::Value) {
    let stats = LibraryStats::from_layouts(patterns);
    let row = fmt_row(name, generated, legal, stats.unique, stats.h1, stats.h2);
    let j = json!({
        "method": name, "generated": generated, "legal": legal,
        "unique": stats.unique, "h1": stats.h1, "h2": stats.h2,
    });
    (row, j)
}

fn main() {
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let scale = scale();
    let mut rows = Vec::new();
    let mut jsons = Vec::new();

    println!("Table I — performance comparison (counts scaled ~20x down from the paper; PP_SCALE={scale})");
    println!("{}", fmt_header());

    // Starter patterns row.
    let starters = node.starter_patterns();
    let (row, j) = stats_row("starter-patterns", 0, 20, &starters);
    println!("{row}");
    rows.push(row);
    jsons.push(j);

    // Baselines trained on 1k rule-based samples (paper: commercial tool).
    let training = RuleBasedGenerator::new(node.clone(), 77).generate_batch(1000);

    let n_baseline = 300 * scale;
    eprintln!("[table1] training CUP on 1000 samples...");
    let mut cup = CupBaseline::new(node.rules().clone(), 5);
    cup.train(&training, 400, 8, 2e-3, 5);
    let outcomes = cup.generate(&training, n_baseline, 5);
    let legal: Vec<Layout> = outcomes.iter().filter(|o| o.legal).filter_map(|o| o.layout.clone()).collect();
    let (row, j) = stats_row("CUP", n_baseline, legal.len(), &legal);
    println!("{row}");
    rows.push(row);
    jsons.push(j);

    eprintln!("[table1] training DiffPattern on 1000 samples...");
    let mut dp = DiffPatternBaseline::new(node.rules().clone(), 6);
    dp.train(&training, 400, 8, 2e-3, 6);
    let n_dp = 150 * scale;
    let outcomes = dp.generate(n_dp, 6);
    let legal: Vec<Layout> = outcomes.iter().filter(|o| o.legal).filter_map(|o| o.layout.clone()).collect();
    let (row, j) = stats_row("DiffPattern", n_dp, legal.len(), &legal);
    println!("{row}");
    rows.push(row);
    jsons.push(j);

    // PatternPaint variants: init then iter.
    let mut iter_rows = Vec::new();
    for variant in VARIANTS {
        let mut cfg_v = cfg;
        cfg_v.variations = scale.max(1);
        let pp = cached_pipeline(variant, &cfg_v);
        eprintln!("[table1] {} initial generation...", variant.name);
        let round = pp.initial_generation();
        let (row, j) = stats_row(
            &format!("PatternPaint-{}-init", variant.name),
            round.generated,
            round.legal,
            round.library.patterns(),
        );
        println!("{row}");
        rows.push(row);
        jsons.push(j);

        eprintln!("[table1] {} iterative generation...", variant.name);
        let mut library = round.library.clone();
        library.extend(pp.starters().iter().cloned());
        let stats = pp.iterative_generation(&mut library, 3, round.legal);
        let last = stats.last().expect("at least one iteration");
        let total_generated = round.generated + stats.iter().map(|s| s.generated).sum::<usize>();
        let (row, j) = stats_row(
            &format!("PatternPaint-{}-iter", variant.name),
            total_generated,
            last.legal_total,
            library.patterns(),
        );
        println!("{row}");
        iter_rows.push(row.clone());
        rows.push(row);
        jsons.push(j);
    }

    println!();
    println!("paper reference (Table I): CUP 0 legal, DiffPattern 4 legal of 20k;");
    println!("PatternPaint init ~6-12% legal, ft > base on legal/unique/H2;");
    println!("iter grows unique and H2 further (e.g. sd1-ft-iter 7229 legal, H2 11.80).");
    dump_json("table1", &json!({ "rows": jsons, "scale": scale }));
    let _ = PatternLibrary::new(); // keep the core crate linked even at scale 0
}
