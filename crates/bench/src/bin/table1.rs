//! Regenerates Table I: performance comparison for layout pattern
//! generation (starters, CUP, DiffPattern, PatternPaint ×4, init+iter).
//!
//! Every method runs through the one `run_round` stage harness: the
//! baselines behind their `Sampler` adapters with a pass-through
//! denoiser, PatternPaint through its own (stream-backed) round entry
//! points.
//!
//! Run: `cargo run -p pp-bench --release --bin table1`
//! Scale up with `PP_SCALE=5` (multiplies sample counts).

#![forbid(unsafe_code)]

use patternpaint_core::{
    run_round, DrcValidator, GenerationRequest, JobSet, PatternLibrary, PipelineConfig, Sampler,
    StreamOptions,
};
use pp_baselines::{CupBaseline, CupSampler, DiffPatternBaseline, DiffPatternSampler};
use pp_bench::{cached_pipeline, dump_json, fmt_header, fmt_row, scale, VARIANTS};
use pp_geometry::Layout;
use pp_inpaint::{Mask, ThresholdDenoiser};
use pp_metrics::LibraryStats;
use pp_pdk::{RuleBasedGenerator, SynthNode};
use serde_json::json;

fn stats_row(
    name: &str,
    generated: usize,
    legal: usize,
    patterns: &[Layout],
) -> (String, serde_json::Value) {
    let stats = LibraryStats::from_layouts(patterns);
    let row = fmt_row(name, generated, legal, stats.unique, stats.h1, stats.h2);
    let j = json!({
        "method": name, "generated": generated, "legal": legal,
        "unique": stats.unique, "h1": stats.h1, "h2": stats.h2,
    });
    (row, j)
}

/// A fixed-count request for whole-pattern samplers: the mask is unused
/// by the baselines, the templates cycle through the training pool.
fn baseline_request(
    node: &SynthNode,
    templates: &[Layout],
    n: usize,
    seed: u64,
) -> GenerationRequest {
    let jobs = JobSet::cycle(templates, &[Mask::full(node.clip())], n);
    GenerationRequest::new(jobs, seed)
}

/// One harness pass for a baseline sampler: sample → threshold →
/// sign-off deck, identical plumbing to the PatternPaint rounds.
///
/// Note a deliberate semantics change vs the pre-harness bench: H1/H2
/// for baseline rows are now computed over the *deduplicated* library
/// (as the PatternPaint rows always were), not the multiset of legal
/// samples, so every row of the table reads the same way.
fn run_baseline(
    sampler: &dyn Sampler,
    node: &SynthNode,
    templates: &[Layout],
    n: usize,
    seed: u64,
) -> (String, serde_json::Value) {
    let request = baseline_request(node, templates, n, seed);
    let round = run_round(
        sampler,
        &ThresholdDenoiser::new(),
        &DrcValidator::new(node.rules().clone()),
        &request,
        &StreamOptions::default(),
    )
    .expect("baseline harness runs");
    stats_row(
        sampler.name(),
        round.generated,
        round.legal,
        round.library.patterns(),
    )
}

fn main() {
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let scale = scale();
    let mut rows = Vec::new();
    let mut jsons = Vec::new();

    println!("Table I — performance comparison (counts scaled ~20x down from the paper; PP_SCALE={scale})");
    println!("{}", fmt_header());

    // Starter patterns row.
    let starters = node.starter_patterns();
    let (row, j) = stats_row("starter-patterns", 0, 20, &starters);
    println!("{row}");
    rows.push(row);
    jsons.push(j);

    // Baselines trained on 1k rule-based samples (paper: commercial tool).
    let training = RuleBasedGenerator::new(node.clone(), 77).generate_batch(1000);

    let n_baseline = 300 * scale;
    eprintln!("[table1] training CUP on 1000 samples...");
    let mut cup = CupBaseline::new(node.rules().clone(), 5);
    cup.train(&training, 400, 8, 2e-3, 5);
    let cup_sampler = CupSampler::new(cup, training.clone());
    let (row, j) = run_baseline(&cup_sampler, &node, &training, n_baseline, 5);
    println!("{row}");
    rows.push(row);
    jsons.push(j);

    eprintln!("[table1] training DiffPattern on 1000 samples...");
    let mut dp = DiffPatternBaseline::new(node.rules().clone(), 6);
    dp.train(&training, 400, 8, 2e-3, 6);
    let dp_sampler = DiffPatternSampler::new(dp);
    let n_dp = 150 * scale;
    let (row, j) = run_baseline(&dp_sampler, &node, &training, n_dp, 6);
    println!("{row}");
    rows.push(row);
    jsons.push(j);

    // PatternPaint variants: init then iter (the same harness, via the
    // pipeline's stream-backed round entry points).
    let mut iter_rows = Vec::new();
    for variant in VARIANTS {
        let mut cfg_v = cfg;
        cfg_v.variations = scale.max(1);
        let pp = cached_pipeline(variant, &cfg_v);
        eprintln!("[table1] {} initial generation...", variant.name);
        let round = pp.initial_generation().expect("round runs");
        let (row, j) = stats_row(
            &format!("PatternPaint-{}-init", variant.name),
            round.generated,
            round.legal,
            round.library.patterns(),
        );
        println!("{row}");
        rows.push(row);
        jsons.push(j);

        eprintln!("[table1] {} iterative generation...", variant.name);
        let mut library = round.library.clone();
        library.extend(pp.starters().iter().cloned());
        let stats = pp
            .iterative_generation(&mut library, 3, round.legal)
            .expect("iterations run");
        let last = stats.last().expect("at least one iteration");
        let total_generated = round.generated + stats.iter().map(|s| s.generated).sum::<usize>();
        let (row, j) = stats_row(
            &format!("PatternPaint-{}-iter", variant.name),
            total_generated,
            last.legal_total,
            library.patterns(),
        );
        println!("{row}");
        iter_rows.push(row.clone());
        rows.push(row);
        jsons.push(j);
    }

    println!();
    println!("paper reference (Table I): CUP 0 legal, DiffPattern 4 legal of 20k;");
    println!("PatternPaint init ~6-12% legal, ft > base on legal/unique/H2;");
    println!("iter grows unique and H2 further (e.g. sd1-ft-iter 7229 legal, H2 11.80).");
    dump_json("table1", &json!({ "rows": jsons, "scale": scale }));
    let _ = PatternLibrary::new(); // keep the core crate linked even at scale 0
}
