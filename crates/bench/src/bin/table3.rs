//! Regenerates Table III: generation success rate under three denoising
//! schemes (template-based vs non-local means vs none) for all four
//! model variants.
//!
//! Run: `cargo run -p pp-bench --release --bin table3`

#![forbid(unsafe_code)]

use patternpaint_core::PipelineConfig;
use pp_bench::{cached_pipeline, dump_json, scale, VARIANTS};
use pp_drc::check_layout;
use pp_inpaint::{Denoiser, MaskSet, NlmDenoiser, TemplateDenoiser, ThresholdDenoiser};
use pp_pdk::SynthNode;
use serde_json::json;

fn main() {
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let per_pair = scale(); // variations per (starter, mask)

    println!("Table III — success rate S%% (legal / generated) by denoising scheme");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "model", "template", "nlm", "none"
    );

    let template = TemplateDenoiser::new(2);
    let nlm = NlmDenoiser::new();
    let none = ThresholdDenoiser::new();
    let mut averages = [0.0f64; 3];
    let mut jrows = Vec::new();

    for variant in VARIANTS {
        let pp = cached_pipeline(variant, &cfg);
        // One shared raw batch per model: starters x 10 masks x per_pair.
        let mut jobs = Vec::new();
        for s in pp.starters() {
            for set in MaskSet::ALL {
                for m in set.masks(node.clip()) {
                    for _ in 0..per_pair {
                        jobs.push((s.clone(), m.clone()));
                    }
                }
            }
        }
        let raw = pp
            .generate_raw(&jobs, 0x7ab1e3)
            .expect("jobs are well-formed");
        let rate = |d: &dyn Denoiser| {
            let legal = raw
                .iter()
                .filter(|s| {
                    let out = d.denoise(&s.raw, &s.template);
                    out.metal_area() > 0 && check_layout(&out, node.rules()).is_clean()
                })
                .count();
            100.0 * legal as f64 / raw.len() as f64
        };
        let r = [rate(&template), rate(&nlm), rate(&none)];
        println!(
            "{:<14} {:>11.2}% {:>11.2}% {:>11.2}%",
            variant.name, r[0], r[1], r[2]
        );
        for (a, v) in averages.iter_mut().zip(r) {
            *a += v / VARIANTS.len() as f64;
        }
        jrows.push(json!({
            "model": variant.name, "template": r[0], "nlm": r[1], "none": r[2],
            "generated": raw.len(),
        }));
    }
    println!(
        "{:<14} {:>11.2}% {:>11.2}% {:>11.2}%",
        "average", averages[0], averages[1], averages[2]
    );
    println!();
    println!("paper reference: template 8.37% avg >> nlm 0.86% >> none 0.00%");
    dump_json("table3", &json!({ "rows": jrows, "average": averages }));
}
