//! The sampling-throughput trajectory benchmark.
//!
//! Times the two training/inference hot paths that every scaling PR
//! must not regress:
//!
//! 1. **pretrain-tiny** — a short training run of the tiny model
//!    (exercises forward + backward + Adam through the GEMM kernels);
//! 2. **64-job inpaint batch** on the standard 32×32 model, in three
//!    modes:
//!    * `per_sample_naive` — batch size 1 through the scalar reference
//!      kernels (the pre-GEMM per-sample path this repository shipped
//!      before the batching rework);
//!    * `per_sample_gemm` — batch size 1 through the blocked kernels
//!      (isolates the GEMM win);
//!    * `batched_gemm` — micro-batched through the blocked kernels (the
//!      production path; adds the batching win);
//!    * `streamed_gemm` — the same micro-batched workers delivering
//!      through the bounded-channel stream that backs
//!      `generate_stream` and the round entry points (guards the
//!      streaming redesign against regressing the batch path);
//!    * `engine_sched` — the same jobs through a shared Engine
//!      scheduler (bit-identity with the batch path asserted);
//!    * `qos_sched` — the QoS front door: the jobs split across two
//!      tenants in different QoS classes, submitted as `JobSpec`s to a
//!      `Service` over a `WeightedFair` scheduler, timed to the last
//!      `JobOutcome` and followed by a `SchedulerStats` snapshot
//!      (queue depths, per-session micro-batch shares, wait /
//!      turnaround counters);
//!    * `faulted_clean` — the supervision-overhead guard: the full job
//!      batch as a clean tenant while a one-job tenant absorbs an
//!      injected worker panic and retries. The clean tenant is what's
//!      timed — catch_unwind isolation, poison-safe locks, and the
//!      fault hook must cost ~nothing on the happy path, so this mode
//!      stays within a few percent of `batched_gemm`;
//!    * `mixed_tenants` — the continuous-batching headline: a
//!      mixed-width flood (narrow Batch + wide BestEffort tenants,
//!      with Interactive tenants arriving mid-flight) A/B'd under
//!      `DispatchMode::FixedBatch` and `DispatchMode::Continuous`.
//!      Reports aggregate samples/s plus per-class p50/p99
//!      submit→first-dispatch waits; Continuous must beat FixedBatch
//!      on both throughput and Interactive p99 wait.
//!
//! All modes run the same worker-thread count, so the reported speedup
//! is purely kernels + batching. Results go to `BENCH_sampling.json` at
//! the repository root (schema in PERF.md) and stdout.
//!
//! Run: `cargo run --release -p pp-bench --bin sampling_bench`
//! (`PP_BENCH_JOBS=n` shrinks the batch; `PP_BENCH_SMOKE=1` also skips
//! the JSON write and shortens the pretrain probe — the ci.sh
//! bench-smoke step uses both so the binary cannot silently rot.)

#![forbid(unsafe_code)]

use patternpaint_core::{
    ArtifactStore, DispatchMode, Engine, Fault, FaultPlan, Fleet, FleetOptions, JobSet, JobSpec,
    MemStore, PipelineConfig, QosClass, RawSample, RetryPolicy, Sampler, ScheduledSampler,
    SchedulerOptions, SchedulerStats, Service, ServiceOptions, StreamOptions, TrainSpec,
    WeightedFair,
};
use pp_diffusion::{CancelToken, DiffusionModel};
use pp_geometry::GrayImage;
use pp_inpaint::MaskSet;
use pp_nn::gemm;
use pp_pdk::SynthNode;
use serde_json::json;
use std::path::PathBuf;
use std::time::Instant;

const JOBS: usize = 64;

struct ModeResult {
    name: &'static str,
    seconds: f64,
    samples_per_sec: f64,
    ns_per_step: f64,
}

fn run_mode(
    name: &'static str,
    model: &std::sync::Arc<DiffusionModel>,
    jobs: &[(GrayImage, GrayImage)],
    threads: usize,
    batch_size: usize,
    naive: bool,
    streamed: bool,
) -> ModeResult {
    gemm::set_force_naive(naive);
    // Warm up allocator pools and caches on a small prefix.
    let _ = model
        .sample_inpaint_batch_sized(&jobs[..threads.min(jobs.len())], 1, threads, batch_size)
        .expect("warmup jobs are well-formed");
    let t0 = Instant::now();
    let out = if streamed {
        // The bounded-channel delivery path behind generate_stream,
        // consumed with a small per-worker buffer (real backpressure).
        let stream = model
            .sample_inpaint_stream(
                jobs.to_vec(),
                42,
                threads,
                batch_size,
                2,
                CancelToken::new(),
            )
            .expect("jobs are well-formed");
        let mut out = Vec::with_capacity(jobs.len());
        for mb in stream {
            out.extend(mb.samples);
        }
        out
    } else {
        model
            .sample_inpaint_batch_sized(jobs, 42, threads, batch_size)
            .expect("jobs are well-formed")
    };
    let seconds = t0.elapsed().as_secs_f64();
    gemm::set_force_naive(false);
    assert_eq!(out.len(), jobs.len());
    let steps = (jobs.len() * model.config().ddim_steps) as f64;
    ModeResult {
        name,
        seconds,
        samples_per_sec: jobs.len() as f64 / seconds,
        ns_per_step: seconds * 1e9 / steps,
    }
}

/// The pretrain-tiny probe, folded into the Service trainer: a
/// `JobSpec::train` over a tiny engine sized to the same total number
/// of optimiser steps the old direct `DiffusionModel::train` loop ran
/// (`total_steps`, split across 4 epochs). Returns (seconds, final
/// loss).
fn pretrain_probe(total_steps: usize) -> (f64, f32) {
    let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(7)
        .untrained_engine()
        .expect("tiny config is valid");
    let store = std::sync::Arc::new(MemStore::new());
    let service = Service::new(
        &engine,
        ServiceOptions {
            threads: 2,
            store: Some(store as std::sync::Arc<dyn ArtifactStore>),
            ..Default::default()
        },
    );
    let epochs = 4u32;
    let spec = TrainSpec::new("bench-pretrain")
        .with_epochs(epochs)
        .with_steps_per_epoch(total_steps / epochs as usize)
        .with_batch(4)
        .with_lr(2e-3)
        .with_synth_corpus(32);
    let t0 = Instant::now();
    let outcome = service
        .submit(JobSpec::train(spec))
        .expect("train job admitted")
        .wait();
    let seconds = t0.elapsed().as_secs_f64();
    assert!(outcome.is_completed(), "pretrain probe outcome: {outcome}");
    let summary = outcome
        .into_report()
        .expect("completed carries a report")
        .train
        .expect("train jobs report a summary");
    (seconds, summary.final_loss)
}

/// `PP_BENCH_MODE=train_coexist`: the training-coexistence latency
/// gate. Runs the same burst of Interactive sampling jobs twice — solo,
/// and next to a long-running best-effort Train job — and compares the
/// Interactive first-dispatch wait p99 (`SchedulerStats`). The Train
/// driver parks between epochs whenever a higher class has queued
/// work, so the budget is tight: the coexist p99 must stay within
/// 1.5x of solo (after a small noise floor), else the process exits 1.
fn train_coexist(smoke: bool, jobs: usize) {
    /// Sub-floor waits are scheduler noise, not contention; measuring
    /// a ratio of two ~100µs numbers would be a coin flip.
    const FLOOR_MICROS: u64 = 500;
    const BUDGET: f64 = 1.5;
    let engine = Engine::builder(SynthNode::small(), PipelineConfig::tiny())
        .seed(3)
        .untrained_engine()
        .expect("tiny config is valid");
    let burst = |service: &Service| -> u64 {
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                service
                    .submit(
                        JobSpec::initial()
                            .with_budget(4)
                            .with_seed(60 + i as u64)
                            .with_class(QosClass::Interactive),
                    )
                    .expect("interactive job admitted")
            })
            .collect();
        for h in handles {
            let outcome = h.wait();
            assert!(outcome.is_completed(), "interactive outcome: {outcome}");
        }
        service
            .scheduler_stats()
            .wait_p99_micros_by_class
            .interactive
    };
    // Interleaved reps, min p99 per side: wall clock on a shared box
    // swings, and the gate should compare best-case against best-case.
    let reps = if smoke { 2 } else { 3 };
    let (mut solo_p99, mut coexist_p99) = (u64::MAX, u64::MAX);
    for _ in 0..reps {
        let solo = Service::new(
            &engine,
            ServiceOptions {
                threads: 2,
                ..Default::default()
            },
        );
        solo_p99 = solo_p99.min(burst(&solo));

        let store = std::sync::Arc::new(MemStore::new());
        let service = Service::new(
            &engine,
            ServiceOptions {
                threads: 2,
                store: Some(store as std::sync::Arc<dyn ArtifactStore>),
                ..Default::default()
            },
        );
        // Short epochs keep the park granularity fine; the epoch count
        // is sized to outlast the burst, then the job is cancelled.
        let train = service
            .submit(JobSpec::train(
                TrainSpec::new("coexist")
                    .with_epochs(100_000)
                    .with_steps_per_epoch(1)
                    .with_batch(2)
                    .with_synth_corpus(8),
            ))
            .expect("train job admitted");
        // Measure steady-state coexistence, not the trainer's one-time
        // dataset/prior preparation: wait for the first epoch to land
        // (progress is epoch-granular) before releasing the burst.
        while train.progress().completed == 0 {
            std::thread::yield_now();
        }
        coexist_p99 = coexist_p99.min(burst(&service));
        train.cancel();
        let _ = train.wait();
    }
    let ratio = coexist_p99.max(FLOOR_MICROS) as f64 / solo_p99.max(FLOOR_MICROS) as f64;
    println!(
        "train_coexist: interactive wait p99 solo = {:.2}ms, with train job = {:.2}ms \
         ({ratio:.2}x, budget {BUDGET:.1}x, floor {FLOOR_MICROS}us, {jobs} jobs x {reps} reps)",
        solo_p99 as f64 / 1e3,
        coexist_p99 as f64 / 1e3,
    );
    if ratio > BUDGET {
        eprintln!("train_coexist: FAILED — a co-resident train job may not cost interactive tenants more than {BUDGET:.1}x first-dispatch wait");
        std::process::exit(1);
    }
}

fn main() {
    let smoke = std::env::var("PP_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let jobs: usize = std::env::var("PP_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(JOBS);
    if std::env::var("PP_BENCH_MODE").as_deref() == Ok("train_coexist") {
        train_coexist(smoke, jobs);
        return;
    }
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let threads = cfg.threads;

    // 1. pretrain-tiny: training throughput through the GEMM kernels.
    //    Since the pp-train rework this routes through the Service
    //    trainer (JobSpec::train) instead of a bare DiffusionModel
    //    loop — same total number of optimiser steps, so the JSON
    //    series stays comparable; the timing now honestly includes
    //    the per-epoch checkpoint writes production training pays.
    let tiny_steps = if smoke { 20usize } else { 200 };
    let (pretrain_s, pretrain_loss) = pretrain_probe(tiny_steps);
    println!(
        "pretrain-tiny: {tiny_steps} steps in {pretrain_s:.3}s ({:.1} steps/s, final loss {:.4})",
        tiny_steps as f64 / pretrain_s,
        pretrain_loss
    );

    // 2. 64-job inpaint batch on the standard model (untrained weights:
    // runtime is architecture-bound, not weight-bound).
    let model = std::sync::Arc::new(DiffusionModel::new(cfg.model, 0));
    let starters = node.starter_patterns();
    let masks = MaskSet::Default.masks(node.clip());
    let jobs: Vec<(GrayImage, GrayImage)> = (0..jobs)
        .map(|i| {
            (
                GrayImage::from_layout(&starters[i % starters.len()]),
                masks[i % masks.len()].as_image().clone(),
            )
        })
        .collect();

    // One engine snapshot (same weights: seed 0) serves both the
    // engine_sched and qos_sched modes.
    let engine = Engine::builder(node.clone(), cfg)
        .seed(0)
        .untrained_engine()
        .expect("standard config is valid");

    // Every ratio-guarded mode (batched onward) runs a few times and
    // keeps its fastest run: wall clock on a shared box swings ±15%
    // in multi-second regimes, so a single shot of numerator or
    // denominator is a phase lottery that can push an honest ≈1.0
    // overhead ratio past the 5% bar in either direction. The reps are
    // *interleaved* — each round runs every guarded mode once — so a
    // fast regime that lasts a few seconds touches all of them, not
    // just whichever mode's back-to-back reps happened to land in it.
    let reps = if smoke { 1 } else { 4 };
    let fastest = |a: ModeResult, b: ModeResult| if b.seconds < a.seconds { b } else { a };
    // The bit-identity reference for engine_sched, computed once.
    let reference = model
        .sample_inpaint_batch_sized(&jobs, 42, threads, cfg.batch_size)
        .expect("jobs are well-formed");
    let naive_mode = run_mode("per_sample_naive", &model, &jobs, threads, 1, true, false);
    let per_gemm_mode = run_mode("per_sample_gemm", &model, &jobs, threads, 1, false, false);
    let run_batched = || {
        run_mode(
            "batched_gemm",
            &model,
            &jobs,
            threads,
            cfg.batch_size,
            false,
            false,
        )
    };
    let run_streamed = || {
        run_mode(
            "streamed_gemm",
            &model,
            &jobs,
            threads,
            cfg.batch_size,
            false,
            true,
        )
    };
    // The engine-backed path: the same jobs through a shared
    // Engine scheduler (the pool that serves concurrent sessions)
    // instead of a per-request worker pool. Same weights (seed 0),
    // same per-job RNG streams, so outputs are bit-identical —
    // asserted against the blocking batch path.
    let run_engine = || {
        let scheduler = engine.scheduler(threads);
        let sampler = ScheduledSampler::new(scheduler.handle(), cfg.batch_size);
        let jobset = JobSet::cycle(&starters, &masks, jobs.len());
        let opts = StreamOptions::default();
        // Warm up worker U-Net pools like the other modes.
        let warm = JobSet::cycle(&starters, &masks, threads.min(jobs.len()));
        let _ = sampler.sample(&warm, 1).expect("warmup jobs run");
        let t0 = Instant::now();
        let out: Vec<RawSample> = sampler
            .sample_stream(&jobset, 42, &opts)
            .expect("jobs are well-formed")
            .collect::<Result<_, _>>()
            .expect("scheduler stream yields no errors");
        let seconds = t0.elapsed().as_secs_f64();
        assert_eq!(out.len(), jobs.len());
        for (r, b) in out.iter().zip(&reference) {
            assert_eq!(
                &r.raw, b,
                "engine-scheduled output diverged from batch path"
            );
        }
        let steps = (jobs.len() * cfg.model.ddim_steps) as f64;
        ModeResult {
            name: "engine_sched",
            seconds,
            samples_per_sec: jobs.len() as f64 / seconds,
            ns_per_step: seconds * 1e9 / steps,
        }
    };

    // The QoS front door: the same job count split across two tenants
    // in different classes, submitted declaratively and interleaved by
    // the WeightedFair policy. Timed to the last terminal JobOutcome
    // (this path includes the round tail — denoise + DRC + admission —
    // which is orders of magnitude faster than sampling).
    let run_qos = || {
        let service = Service::new(
            &engine,
            ServiceOptions {
                threads,
                scheduler: SchedulerOptions::new().policy(WeightedFair),
                ..Default::default()
            },
        );
        let request = |n: usize, seed: u64| {
            patternpaint_core::GenerationRequest::new(JobSet::cycle(&starters, &masks, n), seed)
        };
        // Warm up worker U-Net pools like the other modes.
        service
            .submit(JobSpec::raw(request(threads.min(jobs.len()), 1)))
            .expect("warmup job admitted")
            .wait()
            .into_report()
            .expect("warmup job completes");
        let interactive_jobs = jobs.len() / 2;
        let batch_jobs = jobs.len() - interactive_jobs;
        let t0 = Instant::now();
        let a = service
            .submit(JobSpec::raw(request(interactive_jobs, 42)).with_class(QosClass::Interactive))
            .expect("interactive tenant admitted");
        let b = service
            .submit(JobSpec::raw(request(batch_jobs, 43)).with_class(QosClass::Batch))
            .expect("batch tenant admitted");
        let (ra, rb) = (a.wait(), b.wait());
        let seconds = t0.elapsed().as_secs_f64();
        let generated = [&ra, &rb]
            .iter()
            .map(|o| o.report().expect("tenant completes").generated)
            .sum::<usize>();
        assert_eq!(generated, jobs.len(), "every tenant sample must arrive");
        let stats = service.scheduler_stats();
        let steps = (jobs.len() * cfg.model.ddim_steps) as f64;
        (
            ModeResult {
                name: "qos_sched",
                seconds,
                samples_per_sec: jobs.len() as f64 / seconds,
                ns_per_step: seconds * 1e9 / steps,
            },
            stats,
        )
    };
    // The supervision-overhead guard: the same full job batch as a
    // clean Interactive tenant while a one-job BestEffort tenant
    // absorbs an injected worker panic and retries. Only the clean
    // tenant is timed; the faulted tenant's real work (one sample,
    // since the panic fires before any DDIM compute) is what bounds
    // the interference. Supervision — catch_unwind isolation,
    // poison-safe locks, the fault hook's single branch — must cost
    // ~nothing on this happy path.
    let run_faulted = || {
        // Sessions are allocated in submit order: warmup = 1,
        // clean = 2, faulted = 3.
        let service = Service::new(
            &engine,
            ServiceOptions {
                threads,
                scheduler: SchedulerOptions::new()
                    .policy(WeightedFair)
                    .faults(FaultPlan::new().inject(3, Fault::PanicAt { batch: 0 })),
                ..Default::default()
            },
        );
        let request = |n: usize, seed: u64| {
            patternpaint_core::GenerationRequest::new(JobSet::cycle(&starters, &masks, n), seed)
        };
        // Warm up worker U-Net pools like the other modes.
        service
            .submit(JobSpec::raw(request(threads.min(jobs.len()), 1)))
            .expect("warmup job admitted")
            .wait()
            .into_report()
            .expect("warmup job completes");
        let t0 = Instant::now();
        let clean = service
            .submit(JobSpec::raw(request(jobs.len(), 42)).with_class(QosClass::Interactive))
            .expect("clean tenant admitted");
        let faulted = service
            .submit(
                JobSpec::raw(request(1, 43))
                    .with_class(QosClass::BestEffort)
                    .with_retry(RetryPolicy::new(2, std::time::Duration::from_millis(1))),
            )
            .expect("faulted tenant admitted");
        let clean_outcome = clean.wait();
        let seconds = t0.elapsed().as_secs_f64();
        let clean_report = clean_outcome
            .into_report()
            .expect("clean tenant completes despite the neighbouring panic");
        assert_eq!(clean_report.generated, jobs.len());
        assert_eq!(clean_report.attempts, 1, "the clean tenant never retried");
        let faulted_report = faulted
            .wait()
            .into_report()
            .expect("faulted tenant retries to completion");
        assert_eq!(
            faulted_report.attempts, 2,
            "the injected panic forced exactly one retry"
        );
        let retries = service.stats().retries;
        let stats = service.scheduler_stats();
        assert_eq!(stats.worker_panics, 1, "the one injected panic was caught");
        assert_eq!(stats.workers_lost, 0, "the panic never escaped the batch");
        let steps = (jobs.len() * cfg.model.ddim_steps) as f64;
        (
            ModeResult {
                name: "faulted_clean",
                seconds,
                samples_per_sec: jobs.len() as f64 / seconds,
                ns_per_step: seconds * 1e9 / steps,
            },
            stats,
            retries,
        )
    };
    // Interleaved best-of-N: round r runs batched, streamed,
    // engine_sched, qos_sched and faulted_clean once each, and each
    // mode keeps its fastest round — so every mode's best sampled the
    // same noise regimes as the `batched` denominator it is guarded
    // against.
    let mut batched_mode = run_batched();
    let mut streamed_mode = run_streamed();
    let mut engine_mode = run_engine();
    let mut qos_best = run_qos();
    let mut faulted_best = run_faulted();
    // Per-round seconds for [batched, streamed, engine, qos, faulted]:
    // the overhead guards are computed as *paired* ratios within a
    // round (median across rounds), so both sides of each ratio saw
    // the same few seconds of box weather. Ratio-of-global-bests is
    // not regime-safe: one anomalously fast batched rep sinks every
    // guard at once even when each mode's own best is honest.
    let mut rounds = vec![[
        batched_mode.seconds,
        streamed_mode.seconds,
        engine_mode.seconds,
        qos_best.0.seconds,
        faulted_best.0.seconds,
    ]];
    for _ in 1..reps {
        let b = run_batched();
        let s = run_streamed();
        let e = run_engine();
        let q = run_qos();
        let f = run_faulted();
        rounds.push([b.seconds, s.seconds, e.seconds, q.0.seconds, f.0.seconds]);
        batched_mode = fastest(batched_mode, b);
        streamed_mode = fastest(streamed_mode, s);
        engine_mode = fastest(engine_mode, e);
        if q.0.seconds < qos_best.0.seconds {
            qos_best = q;
        }
        if f.0.seconds < faulted_best.0.seconds {
            faulted_best = f;
        }
    }
    let paired_ratio = |idx: usize| -> f64 {
        let mut rs: Vec<f64> = rounds.iter().map(|r| r[0] / r[idx]).collect();
        rs.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let n = rs.len();
        if n % 2 == 1 {
            rs[n / 2]
        } else {
            0.5 * (rs[n / 2 - 1] + rs[n / 2])
        }
    };
    let stream_ratio = paired_ratio(1);
    let engine_ratio = paired_ratio(2);
    let qos_ratio = paired_ratio(3);
    let faulted_ratio = paired_ratio(4);
    let (qos_mode, qos_stats) = qos_best;
    let (faulted_mode, faulted_stats, faulted_retries) = faulted_best;
    let modes: Vec<ModeResult> = vec![
        naive_mode,
        per_gemm_mode,
        batched_mode,
        streamed_mode,
        engine_mode,
        qos_mode,
        faulted_mode,
    ];

    // The continuous-batching headline: a mixed-width multi-tenant
    // flood with Interactive tenants arriving mid-flight, run on fresh
    // services over the same engine under the pre-slot FixedBatch
    // dispatch and under Continuous. The flood's shape targets both
    // structural weaknesses of fixed dispatch at once:
    //
    //  * four *narrow* Batch tenants (width 1, the per-tenant-latency
    //    optimum) — fixed runs their samples as 1-wide forward passes,
    //    paying full per-pass overhead per sample, while continuous
    //    admission packs them into shared passes (samples/s);
    //  * two *wide* BestEffort tenants (width 8) — fixed must run each
    //    of their micro-batches as one 8-wide × all-steps block during
    //    which it cannot look at the queue, so an Interactive arrival
    //    behind one waits out the whole block; continuous drip-admits
    //    them a few slots at a time into whatever is free, keeping
    //    slot retirements frequent and the next retirement is offered
    //    to the highest-ranked arrival (Interactive wait p99).
    //
    // One worker, deliberately: the host is a single vCPU (a second
    // worker only interleaves noisily) and a single pool makes the
    // dispatch discipline the only variable in the A/B.
    struct MixedRun {
        seconds: f64,
        samples: usize,
        stats: SchedulerStats,
    }
    let mixed_once = |mode: DispatchMode| -> MixedRun {
        let service = Service::new(
            &engine,
            ServiceOptions {
                threads: 1,
                scheduler: SchedulerOptions::new()
                    .policy(WeightedFair)
                    .dispatch(mode)
                    .slot_capacity(6),
                ..Default::default()
            },
        );
        let mut narrow = cfg;
        narrow.batch_size = 1;
        let mut wide = cfg;
        wide.batch_size = 8;
        let request = |n: usize, seed: u64| {
            patternpaint_core::GenerationRequest::new(JobSet::cycle(&starters, &masks, n), seed)
        };
        let tenant =
            |n: usize, seed: u64, c: PipelineConfig| JobSpec::raw(request(n, seed)).with_config(c);
        // Warm up the worker U-Net pool like the other modes.
        service
            .submit(tenant(1, 1, narrow))
            .expect("warmup job admitted")
            .wait()
            .into_report()
            .expect("warmup job completes");
        let batch_jobs = (jobs.len() / 8).max(2);
        let interactive_jobs = (jobs.len() / 16).max(2);
        // Spaced so arrivals land in the flood's steady state
        // (staggered slot completions), not in the aligned cold-start
        // cohort of a freshly filled table.
        let stagger = std::time::Duration::from_millis(if smoke { 1 } else { 150 });
        // The narrow tenants ramp in a few step-times apart. Submitted
        // back-to-back they would all be admitted at the *same* step
        // boundary of a cold table, and with uniform job lengths that
        // cohort alignment self-perpetuates: slots retire in bunches a
        // full job-duration apart and a mid-epoch arrival waits the
        // whole epoch. Ramped in, each slot keeps its own phase and
        // one frees every few steps — the steady state continuous
        // batching is meant to serve arrivals into.
        let ramp = std::time::Duration::from_millis(if smoke { 1 } else { 25 });
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for i in 0..4u64 {
            handles.push(
                service
                    .submit(tenant(batch_jobs, 50 + i, narrow).with_class(QosClass::Batch))
                    .expect("steady narrow tenant admitted"),
            );
            std::thread::sleep(ramp);
        }
        for w in 0..2u64 {
            handles.push(
                service
                    .submit(tenant(batch_jobs, 55 + w, wide).with_class(QosClass::BestEffort))
                    .expect("steady wide tenant admitted"),
            );
        }
        // Interactive tenants arrive mid-flight, staggered.
        for k in 0..4u64 {
            std::thread::sleep(stagger);
            handles.push(
                service
                    .submit(
                        tenant(interactive_jobs, 60 + k, narrow).with_class(QosClass::Interactive),
                    )
                    .expect("interactive tenant admitted"),
            );
        }
        let samples = handles
            .into_iter()
            .map(|h| {
                h.wait()
                    .into_report()
                    .expect("mixed tenant completes")
                    .generated
            })
            .sum::<usize>();
        let seconds = t0.elapsed().as_secs_f64();
        MixedRun {
            seconds,
            samples,
            stats: service.scheduler_stats(),
        }
    };
    // Wall clock on a shared box swings ±15% between runs — slow
    // regimes last seconds, long enough to bias a whole block of
    // same-mode runs — and the wait percentiles of any single run are
    // a phase lottery (whether an arrival lands just before or just
    // after a refill). So the A/B interleaves the two modes
    // (fixed, continuous, fixed, …) so both sample the same noise
    // windows, and each metric gets the estimator that suits it:
    // throughput from the fastest of N runs, wait percentiles as the
    // median of the per-run percentiles.
    let summarize = |runs: Vec<MixedRun>| -> MixedRun {
        let median_wait = |f: &dyn Fn(&MixedRun) -> u64| -> u64 {
            let mut v: Vec<u64> = runs.iter().map(f).collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        let p50_int = median_wait(&|r| r.stats.wait_p50_micros_by_class.interactive);
        let p99_int = median_wait(&|r| r.stats.wait_p99_micros_by_class.interactive);
        let mut best = runs
            .into_iter()
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .expect("at least one run");
        best.stats.wait_p50_micros_by_class.interactive = p50_int;
        best.stats.wait_p99_micros_by_class.interactive = p99_int;
        best
    };
    let mut fixed_runs = Vec::new();
    let mut cont_runs = Vec::new();
    for _ in 0..if smoke { 1 } else { 4 } {
        fixed_runs.push(mixed_once(DispatchMode::FixedBatch));
        cont_runs.push(mixed_once(DispatchMode::Continuous));
    }
    let mixed_fixed = summarize(fixed_runs);
    let mixed_cont = summarize(cont_runs);
    let mixed_ratio = (mixed_cont.samples as f64 / mixed_cont.seconds)
        / (mixed_fixed.samples as f64 / mixed_fixed.seconds);
    // p99 improvement as fixed/continuous: > 1 means Continuous admits
    // Interactive work sooner. Clamp the denominator — a sub-µs wait
    // rounds to 0.
    let interactive_p99_improvement = mixed_fixed.stats.wait_p99_micros_by_class.interactive as f64
        / (mixed_cont.stats.wait_p99_micros_by_class.interactive.max(1)) as f64;

    // 3. pp-fleet replica scaling, N ∈ {1, 2, 4}. The host is a single
    // vCPU, so N replicas of a CPU-bound forward pass cannot scale —
    // their computes serialise on the one core. What a fleet *does*
    // overlap on any host is the off-CPU part of a job: the remote
    // accelerator round trip. This mode models that explicitly with
    // `FaultPlan::stall_all` — every slot admission sleeps a fixed
    // off-CPU interval on its replica's worker thread before the
    // (cheap, tiny-model) on-CPU compute. One replica serialises
    // stall + compute per job; N replicas sleep concurrently, so the
    // sweep measures exactly what the router adds or saves — not
    // kernel throughput. Width-1 jobs on a one-slot table keep the
    // per-job admission count fixed across N. The honest caveat,
    // recorded in PERF.md: the ≥1.7× N=2 ratio below validates the
    // *router* (distribution, stealing, per-replica queues overlap
    // independent off-CPU waits); it says nothing about scaling
    // on-CPU kernels across replicas on one core.
    let fleet_jobs = if smoke { 8usize } else { 32 };
    // ~14ms off-CPU per job vs ~1.5ms on-CPU (tiny model + round
    // tail): the off-CPU share must dominate for replica overlap to
    // show through on one core — with stall s and compute c, perfect
    // overlap yields (s+c)/(s/2+c) at N=2, so s ≈ 9c predicts ~1.8×
    // before router overhead.
    let fleet_stall = std::time::Duration::from_millis(14);
    let fleet_node = SynthNode::small();
    let fleet_cfg = PipelineConfig::tiny();
    let fleet_engine = Engine::builder(fleet_node.clone(), fleet_cfg)
        .seed(0)
        .untrained_engine()
        .expect("tiny config is valid");
    let fleet_masks = MaskSet::Default.masks(fleet_node.clip());
    struct FleetRun {
        replicas: usize,
        seconds: f64,
        samples_per_sec: f64,
        steals: u64,
    }
    let fleet_once = |n: usize| -> FleetRun {
        let fleet = Fleet::replicate(
            &fleet_engine,
            FleetOptions::new()
                .with_replicas(n)
                .scheduler_factory(move |_| {
                    SchedulerOptions::new()
                        .slot_capacity(1)
                        .faults(FaultPlan::new().stall_all(fleet_stall))
                }),
        );
        let request = |seed: u64| {
            patternpaint_core::GenerationRequest::new(
                JobSet::cycle(fleet_engine.starters(), &fleet_masks, 1),
                seed,
            )
        };
        // Warm every replica's U-Net pool before the clock starts.
        let warm: Vec<_> = (0..n)
            .map(|i| {
                fleet
                    .submit(JobSpec::raw(request(1)).with_placement(i as u64))
                    .expect("warmup job admitted")
            })
            .collect();
        for h in warm {
            h.wait().into_report().expect("warmup job completes");
        }
        let t0 = Instant::now();
        let handles: Vec<_> = (0..fleet_jobs)
            .map(|i| {
                let seed = 100 + i as u64;
                fleet
                    .submit(JobSpec::raw(request(seed)).with_seed(seed))
                    .expect("fleet job admitted")
            })
            .collect();
        let generated: usize = handles
            .into_iter()
            .map(|h| {
                h.wait()
                    .into_report()
                    .expect("fleet job completes")
                    .generated
            })
            .sum();
        let seconds = t0.elapsed().as_secs_f64();
        assert_eq!(generated, fleet_jobs, "every fleet sample must arrive");
        FleetRun {
            replicas: n,
            seconds,
            samples_per_sec: fleet_jobs as f64 / seconds,
            steals: fleet.stats().steals,
        }
    };
    // Interleaved best-of-N with a paired N=2/N=1 ratio, same
    // reasoning as the overhead guards above.
    let fleet_ns: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let fleet_reps = if smoke { 1 } else { 3 };
    let mut fleet_best: Vec<FleetRun> = fleet_ns.iter().map(|&n| fleet_once(n)).collect();
    let mut fleet_rounds: Vec<Vec<f64>> = vec![fleet_best.iter().map(|r| r.seconds).collect()];
    for _ in 1..fleet_reps {
        let round: Vec<FleetRun> = fleet_ns.iter().map(|&n| fleet_once(n)).collect();
        fleet_rounds.push(round.iter().map(|r| r.seconds).collect());
        for (best, run) in fleet_best.iter_mut().zip(round) {
            if run.seconds < best.seconds {
                *best = run;
            }
        }
    }
    let fleet_n2_ratio = {
        // Median of per-round (N=1 seconds / N=2 seconds): the
        // aggregate-throughput scaling factor, regime-paired.
        let mut rs: Vec<f64> = fleet_rounds.iter().map(|r| r[0] / r[1]).collect();
        rs.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let n = rs.len();
        if n % 2 == 1 {
            rs[n / 2]
        } else {
            0.5 * (rs[n / 2 - 1] + rs[n / 2])
        }
    };

    println!();
    println!(
        "{:<18} {:>10} {:>14} {:>14}",
        "mode", "total (s)", "samples/sec", "ns/step"
    );
    for m in &modes {
        println!(
            "{:<18} {:>10.3} {:>14.2} {:>14.0}",
            m.name, m.seconds, m.samples_per_sec, m.ns_per_step
        );
    }
    let speedup = modes[2].samples_per_sec / modes[0].samples_per_sec;
    let faulted_vs_qos = faulted_ratio / qos_ratio;
    println!();
    println!("batched_gemm vs per_sample_naive (pre-rework path): {speedup:.2}x");
    println!("streamed_gemm vs batched_gemm (stream delivery overhead): {stream_ratio:.2}x");
    println!("engine_sched vs batched_gemm (shared-scheduler overhead): {engine_ratio:.2}x");
    println!("qos_sched vs batched_gemm (front door + policy + tail overhead): {qos_ratio:.2}x");
    println!(
        "faulted_clean vs batched_gemm (supervision + neighbouring fault overhead): \
         {faulted_ratio:.2}x"
    );
    println!(
        "faulted_clean scheduler stats: worker_panics={} workers_lost={} retries={}",
        faulted_stats.worker_panics, faulted_stats.workers_lost, faulted_retries
    );
    println!();
    println!(
        "qos_sched scheduler stats: policy={} micro_batches={} wait={:.1}ms turnaround={:.1}ms",
        qos_stats.policy,
        qos_stats.micro_batches,
        qos_stats.wait_micros as f64 / 1e3,
        qos_stats.turnaround_micros as f64 / 1e3,
    );
    for s in &qos_stats.per_session {
        println!(
            "  session {} [{}]: {} micro-batches, {} samples",
            s.session, s.class, s.micro_batches, s.samples
        );
    }
    println!();
    for (label, r) in [("fixed", &mixed_fixed), ("continuous", &mixed_cont)] {
        println!(
            "mixed_tenants [{label:>10}]: {} samples in {:.3}s ({:.2} samples/s); \
             interactive wait p50/p99 = {:.1}/{:.1} ms; \
             slots filled/idle = {}/{}; merged passes = {}",
            r.samples,
            r.seconds,
            r.samples as f64 / r.seconds,
            r.stats.wait_p50_micros_by_class.interactive as f64 / 1e3,
            r.stats.wait_p99_micros_by_class.interactive as f64 / 1e3,
            r.stats.slots_filled,
            r.stats.slots_idle,
            r.stats.batches_merged,
        );
    }
    println!(
        "mixed_tenants continuous vs fixed: {mixed_ratio:.2}x samples/s, \
         {interactive_p99_improvement:.2}x lower interactive p99 wait"
    );
    println!();
    for r in &fleet_best {
        println!(
            "replicas [N={}]: {} jobs in {:.3}s ({:.2} samples/s; {} steals; \
             {:.0}ms modelled off-CPU stall per job)",
            r.replicas,
            fleet_jobs,
            r.seconds,
            r.samples_per_sec,
            r.steals,
            fleet_stall.as_secs_f64() * 1e3,
        );
    }
    println!("replicas N=2 vs N=1: {fleet_n2_ratio:.2}x aggregate samples/s");

    let mode_rows: Vec<serde_json::Value> = modes
        .iter()
        .map(|m| {
            json!({
                "name": m.name,
                "seconds": m.seconds,
                "samples_per_sec": m.samples_per_sec,
                "ns_per_step": m.ns_per_step,
            })
        })
        .collect();
    let config = json!({
        "image": cfg.model.image as usize,
        "base_ch": cfg.model.base_ch,
        "ddim_steps": cfg.model.ddim_steps,
        "jobs": jobs.len(),
        "threads": threads,
        "batch_size": cfg.batch_size,
    });
    let pretrain = json!({
        "steps": tiny_steps,
        "seconds": pretrain_s,
        "steps_per_sec": tiny_steps as f64 / pretrain_s,
    });
    let qos_sessions: Vec<serde_json::Value> = qos_stats
        .per_session
        .iter()
        .map(|s| {
            json!({
                "session": s.session,
                "class": s.class.to_string(),
                "micro_batches": s.micro_batches,
                "samples": s.samples,
            })
        })
        .collect();
    let qos_stats_row = json!({
        "policy": qos_stats.policy,
        "micro_batches": qos_stats.micro_batches,
        "samples": qos_stats.samples,
        "wait_micros": qos_stats.wait_micros,
        "turnaround_micros": qos_stats.turnaround_micros,
        "per_session": qos_sessions,
    });
    let mixed_row = |r: &MixedRun| {
        let class_row = |c: &patternpaint_core::ClassCounts| {
            json!({
                "interactive": c.interactive,
                "batch": c.batch,
                "best_effort": c.best_effort,
            })
        };
        json!({
            "seconds": r.seconds,
            "samples": r.samples,
            "samples_per_sec": r.samples as f64 / r.seconds,
            "wait_p50_micros_by_class": class_row(&r.stats.wait_p50_micros_by_class),
            "wait_p99_micros_by_class": class_row(&r.stats.wait_p99_micros_by_class),
            "slots_filled": r.stats.slots_filled,
            "slots_idle": r.stats.slots_idle,
            "batches_merged": r.stats.batches_merged,
            "micro_batches": r.stats.micro_batches,
        })
    };
    let out = json!({
        "benchmark": "sampling",
        "config": config,
        "pretrain_tiny": pretrain,
        "modes": mode_rows,
        "speedup_batched_vs_per_sample_naive": speedup,
        "streamed_vs_batched": stream_ratio,
        "engine_sched_vs_batched": engine_ratio,
        "qos_sched_vs_batched": qos_ratio,
        "qos_sched_stats": qos_stats_row,
        "faulted_clean_vs_batched": faulted_ratio,
        "faulted_clean_vs_qos_sched": faulted_vs_qos,
        "faulted_stats": json!({
            "worker_panics": faulted_stats.worker_panics,
            "workers_lost": faulted_stats.workers_lost,
            "retries": faulted_retries,
        }),
        "mixed_tenants": json!({
            "fixed": mixed_row(&mixed_fixed),
            "continuous": mixed_row(&mixed_cont),
            "continuous_vs_fixed_samples_per_sec": mixed_ratio,
            "interactive_p99_wait_fixed_over_continuous": interactive_p99_improvement,
        }),
        "fleet_replicas": json!({
            "jobs": fleet_jobs,
            "stall_ms": fleet_stall.as_secs_f64() * 1e3,
            "sweep": fleet_best.iter().map(|r| json!({
                "replicas": r.replicas,
                "seconds": r.seconds,
                "samples_per_sec": r.samples_per_sec,
                "steals": r.steals,
            })).collect::<Vec<_>>(),
            "n2_vs_n1_samples_per_sec": fleet_n2_ratio,
        }),
    });
    if smoke {
        println!("smoke mode: skipping BENCH_sampling.json");
        return;
    }
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sampling.json");
    match serde_json::to_string_pretty(&out) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("failed to write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("failed to serialise: {e}"),
    }
}
