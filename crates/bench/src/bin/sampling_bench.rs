//! The sampling-throughput trajectory benchmark.
//!
//! Times the two training/inference hot paths that every scaling PR
//! must not regress:
//!
//! 1. **pretrain-tiny** — a short training run of the tiny model
//!    (exercises forward + backward + Adam through the GEMM kernels);
//! 2. **64-job inpaint batch** on the standard 32×32 model, in three
//!    modes:
//!    * `per_sample_naive` — batch size 1 through the scalar reference
//!      kernels (the pre-GEMM per-sample path this repository shipped
//!      before the batching rework);
//!    * `per_sample_gemm` — batch size 1 through the blocked kernels
//!      (isolates the GEMM win);
//!    * `batched_gemm` — micro-batched through the blocked kernels (the
//!      production path; adds the batching win);
//!    * `streamed_gemm` — the same micro-batched workers delivering
//!      through the bounded-channel stream that backs
//!      `generate_stream` and the round entry points (guards the
//!      streaming redesign against regressing the batch path);
//!    * `engine_sched` — the same jobs through a shared Engine
//!      scheduler (bit-identity with the batch path asserted);
//!    * `qos_sched` — the QoS front door: the jobs split across two
//!      tenants in different QoS classes, submitted as `JobSpec`s to a
//!      `Service` over a `WeightedFair` scheduler, timed to the last
//!      `JobOutcome` and followed by a `SchedulerStats` snapshot
//!      (queue depths, per-session micro-batch shares, wait /
//!      turnaround counters);
//!    * `faulted_clean` — the supervision-overhead guard: the full job
//!      batch as a clean tenant while a one-job tenant absorbs an
//!      injected worker panic and retries. The clean tenant is what's
//!      timed — catch_unwind isolation, poison-safe locks, and the
//!      fault hook must cost ~nothing on the happy path, so this mode
//!      stays within a few percent of `batched_gemm`.
//!
//! All modes run the same worker-thread count, so the reported speedup
//! is purely kernels + batching. Results go to `BENCH_sampling.json` at
//! the repository root (schema in PERF.md) and stdout.
//!
//! Run: `cargo run --release -p pp-bench --bin sampling_bench`
//! (`PP_BENCH_JOBS=n` shrinks the batch; `PP_BENCH_SMOKE=1` also skips
//! the JSON write and shortens the pretrain probe — the ci.sh
//! bench-smoke step uses both so the binary cannot silently rot.)

#![forbid(unsafe_code)]

use patternpaint_core::{
    Engine, Fault, FaultPlan, JobSet, JobSpec, PipelineConfig, QosClass, RawSample, RetryPolicy,
    Sampler, ScheduledSampler, SchedulerOptions, Service, ServiceOptions, StreamOptions,
    WeightedFair,
};
use pp_diffusion::{CancelToken, DiffusionConfig, DiffusionModel};
use pp_geometry::GrayImage;
use pp_inpaint::MaskSet;
use pp_nn::gemm;
use pp_pdk::{foundation_corpus, SynthNode};
use serde_json::json;
use std::path::PathBuf;
use std::time::Instant;

const JOBS: usize = 64;

struct ModeResult {
    name: &'static str,
    seconds: f64,
    samples_per_sec: f64,
    ns_per_step: f64,
}

fn run_mode(
    name: &'static str,
    model: &std::sync::Arc<DiffusionModel>,
    jobs: &[(GrayImage, GrayImage)],
    threads: usize,
    batch_size: usize,
    naive: bool,
    streamed: bool,
) -> ModeResult {
    gemm::set_force_naive(naive);
    // Warm up allocator pools and caches on a small prefix.
    let _ = model
        .sample_inpaint_batch_sized(&jobs[..threads.min(jobs.len())], 1, threads, batch_size)
        .expect("warmup jobs are well-formed");
    let t0 = Instant::now();
    let out = if streamed {
        // The bounded-channel delivery path behind generate_stream,
        // consumed with a small per-worker buffer (real backpressure).
        let stream = model
            .sample_inpaint_stream(
                jobs.to_vec(),
                42,
                threads,
                batch_size,
                2,
                CancelToken::new(),
            )
            .expect("jobs are well-formed");
        let mut out = Vec::with_capacity(jobs.len());
        for mb in stream {
            out.extend(mb.samples);
        }
        out
    } else {
        model
            .sample_inpaint_batch_sized(jobs, 42, threads, batch_size)
            .expect("jobs are well-formed")
    };
    let seconds = t0.elapsed().as_secs_f64();
    gemm::set_force_naive(false);
    assert_eq!(out.len(), jobs.len());
    let steps = (jobs.len() * model.config().ddim_steps) as f64;
    ModeResult {
        name,
        seconds,
        samples_per_sec: jobs.len() as f64 / seconds,
        ns_per_step: seconds * 1e9 / steps,
    }
}

fn main() {
    let smoke = std::env::var("PP_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let jobs: usize = std::env::var("PP_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(JOBS);
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let threads = cfg.threads;

    // 1. pretrain-tiny: training throughput through the GEMM kernels.
    let tiny_steps = if smoke { 20usize } else { 200 };
    let corpus: Vec<GrayImage> = foundation_corpus(32, 16, 0xf00d)
        .iter()
        .map(GrayImage::from_layout)
        .collect();
    let mut tiny = DiffusionModel::new(DiffusionConfig::tiny(16), 7);
    let t0 = Instant::now();
    let report = tiny
        .train(&corpus, tiny_steps, 4, 2e-3, 3)
        .expect("corpus is well-formed");
    let pretrain_s = t0.elapsed().as_secs_f64();
    println!(
        "pretrain-tiny: {tiny_steps} steps in {pretrain_s:.3}s ({:.1} steps/s, final loss {:.4})",
        tiny_steps as f64 / pretrain_s,
        report.final_loss
    );

    // 2. 64-job inpaint batch on the standard model (untrained weights:
    // runtime is architecture-bound, not weight-bound).
    let model = std::sync::Arc::new(DiffusionModel::new(cfg.model, 0));
    let starters = node.starter_patterns();
    let masks = MaskSet::Default.masks(node.clip());
    let jobs: Vec<(GrayImage, GrayImage)> = (0..jobs)
        .map(|i| {
            (
                GrayImage::from_layout(&starters[i % starters.len()]),
                masks[i % masks.len()].as_image().clone(),
            )
        })
        .collect();

    // One engine snapshot (same weights: seed 0) serves both the
    // engine_sched and qos_sched modes.
    let engine = Engine::builder(node.clone(), cfg)
        .seed(0)
        .untrained_engine()
        .expect("standard config is valid");

    let modes = [
        run_mode("per_sample_naive", &model, &jobs, threads, 1, true, false),
        run_mode("per_sample_gemm", &model, &jobs, threads, 1, false, false),
        run_mode(
            "batched_gemm",
            &model,
            &jobs,
            threads,
            cfg.batch_size,
            false,
            false,
        ),
        run_mode(
            "streamed_gemm",
            &model,
            &jobs,
            threads,
            cfg.batch_size,
            false,
            true,
        ),
        // The engine-backed path: the same jobs through a shared
        // Engine scheduler (the pool that serves concurrent sessions)
        // instead of a per-request worker pool. Same weights (seed 0),
        // same per-job RNG streams, so outputs are bit-identical —
        // asserted below against the blocking batch path.
        {
            let scheduler = engine.scheduler(threads);
            let sampler = ScheduledSampler::new(scheduler.handle(), cfg.batch_size);
            let jobset = JobSet::cycle(&starters, &masks, jobs.len());
            let opts = StreamOptions::default();
            // Warm up worker U-Net pools like the other modes.
            let warm = JobSet::cycle(&starters, &masks, threads.min(jobs.len()));
            let _ = sampler.sample(&warm, 1).expect("warmup jobs run");
            let t0 = Instant::now();
            let out: Vec<RawSample> = sampler
                .sample_stream(&jobset, 42, &opts)
                .expect("jobs are well-formed")
                .collect::<Result<_, _>>()
                .expect("scheduler stream yields no errors");
            let seconds = t0.elapsed().as_secs_f64();
            assert_eq!(out.len(), jobs.len());
            let reference = model
                .sample_inpaint_batch_sized(&jobs, 42, threads, cfg.batch_size)
                .expect("jobs are well-formed");
            for (r, b) in out.iter().zip(&reference) {
                assert_eq!(
                    &r.raw, b,
                    "engine-scheduled output diverged from batch path"
                );
            }
            let steps = (jobs.len() * cfg.model.ddim_steps) as f64;
            ModeResult {
                name: "engine_sched",
                seconds,
                samples_per_sec: jobs.len() as f64 / seconds,
                ns_per_step: seconds * 1e9 / steps,
            }
        },
    ];

    // The QoS front door: the same job count split across two tenants
    // in different classes, submitted declaratively and interleaved by
    // the WeightedFair policy. Timed to the last terminal JobOutcome
    // (this path includes the round tail — denoise + DRC + admission —
    // which is orders of magnitude faster than sampling).
    let (qos_mode, qos_stats) = {
        let service = Service::new(
            &engine,
            ServiceOptions {
                threads,
                scheduler: SchedulerOptions::new().policy(WeightedFair),
                ..Default::default()
            },
        );
        let request = |n: usize, seed: u64| {
            patternpaint_core::GenerationRequest::new(JobSet::cycle(&starters, &masks, n), seed)
        };
        // Warm up worker U-Net pools like the other modes.
        service
            .submit(JobSpec::raw(request(threads.min(jobs.len()), 1)))
            .expect("warmup job admitted")
            .wait()
            .into_report()
            .expect("warmup job completes");
        let interactive_jobs = jobs.len() / 2;
        let batch_jobs = jobs.len() - interactive_jobs;
        let t0 = Instant::now();
        let a = service
            .submit(JobSpec::raw(request(interactive_jobs, 42)).with_class(QosClass::Interactive))
            .expect("interactive tenant admitted");
        let b = service
            .submit(JobSpec::raw(request(batch_jobs, 43)).with_class(QosClass::Batch))
            .expect("batch tenant admitted");
        let (ra, rb) = (a.wait(), b.wait());
        let seconds = t0.elapsed().as_secs_f64();
        let generated = [&ra, &rb]
            .iter()
            .map(|o| o.report().expect("tenant completes").generated)
            .sum::<usize>();
        assert_eq!(generated, jobs.len(), "every tenant sample must arrive");
        let stats = service.scheduler_stats();
        let steps = (jobs.len() * cfg.model.ddim_steps) as f64;
        (
            ModeResult {
                name: "qos_sched",
                seconds,
                samples_per_sec: jobs.len() as f64 / seconds,
                ns_per_step: seconds * 1e9 / steps,
            },
            stats,
        )
    };
    // The supervision-overhead guard: the same full job batch as a
    // clean Interactive tenant while a one-job BestEffort tenant
    // absorbs an injected worker panic and retries. Only the clean
    // tenant is timed; the faulted tenant's real work (one sample,
    // since the panic fires before any DDIM compute) is what bounds
    // the interference. Supervision — catch_unwind isolation,
    // poison-safe locks, the fault hook's single branch — must cost
    // ~nothing on this happy path.
    let (faulted_mode, faulted_stats, faulted_retries) = {
        // Sessions are allocated in submit order: warmup = 1,
        // clean = 2, faulted = 3.
        let service = Service::new(
            &engine,
            ServiceOptions {
                threads,
                scheduler: SchedulerOptions::new()
                    .policy(WeightedFair)
                    .faults(FaultPlan::new().inject(3, Fault::PanicAt { batch: 0 })),
                ..Default::default()
            },
        );
        let request = |n: usize, seed: u64| {
            patternpaint_core::GenerationRequest::new(JobSet::cycle(&starters, &masks, n), seed)
        };
        // Warm up worker U-Net pools like the other modes.
        service
            .submit(JobSpec::raw(request(threads.min(jobs.len()), 1)))
            .expect("warmup job admitted")
            .wait()
            .into_report()
            .expect("warmup job completes");
        let t0 = Instant::now();
        let clean = service
            .submit(JobSpec::raw(request(jobs.len(), 42)).with_class(QosClass::Interactive))
            .expect("clean tenant admitted");
        let faulted = service
            .submit(
                JobSpec::raw(request(1, 43))
                    .with_class(QosClass::BestEffort)
                    .with_retry(RetryPolicy::new(2, std::time::Duration::from_millis(1))),
            )
            .expect("faulted tenant admitted");
        let clean_outcome = clean.wait();
        let seconds = t0.elapsed().as_secs_f64();
        let clean_report = clean_outcome
            .into_report()
            .expect("clean tenant completes despite the neighbouring panic");
        assert_eq!(clean_report.generated, jobs.len());
        assert_eq!(clean_report.attempts, 1, "the clean tenant never retried");
        let faulted_report = faulted
            .wait()
            .into_report()
            .expect("faulted tenant retries to completion");
        assert_eq!(
            faulted_report.attempts, 2,
            "the injected panic forced exactly one retry"
        );
        let retries = service.stats().retries;
        let stats = service.scheduler_stats();
        assert_eq!(stats.worker_panics, 1, "the one injected panic was caught");
        assert_eq!(stats.workers_lost, 0, "the panic never escaped the batch");
        let steps = (jobs.len() * cfg.model.ddim_steps) as f64;
        (
            ModeResult {
                name: "faulted_clean",
                seconds,
                samples_per_sec: jobs.len() as f64 / seconds,
                ns_per_step: seconds * 1e9 / steps,
            },
            stats,
            retries,
        )
    };
    let modes: Vec<ModeResult> = modes.into_iter().chain([qos_mode, faulted_mode]).collect();

    println!();
    println!(
        "{:<18} {:>10} {:>14} {:>14}",
        "mode", "total (s)", "samples/sec", "ns/step"
    );
    for m in &modes {
        println!(
            "{:<18} {:>10.3} {:>14.2} {:>14.0}",
            m.name, m.seconds, m.samples_per_sec, m.ns_per_step
        );
    }
    let speedup = modes[2].samples_per_sec / modes[0].samples_per_sec;
    let stream_ratio = modes[3].samples_per_sec / modes[2].samples_per_sec;
    let engine_ratio = modes[4].samples_per_sec / modes[2].samples_per_sec;
    let qos_ratio = modes[5].samples_per_sec / modes[2].samples_per_sec;
    let faulted_ratio = modes[6].samples_per_sec / modes[2].samples_per_sec;
    let faulted_vs_qos = modes[6].samples_per_sec / modes[5].samples_per_sec;
    println!();
    println!("batched_gemm vs per_sample_naive (pre-rework path): {speedup:.2}x");
    println!("streamed_gemm vs batched_gemm (stream delivery overhead): {stream_ratio:.2}x");
    println!("engine_sched vs batched_gemm (shared-scheduler overhead): {engine_ratio:.2}x");
    println!("qos_sched vs batched_gemm (front door + policy + tail overhead): {qos_ratio:.2}x");
    println!(
        "faulted_clean vs batched_gemm (supervision + neighbouring fault overhead): \
         {faulted_ratio:.2}x"
    );
    println!(
        "faulted_clean scheduler stats: worker_panics={} workers_lost={} retries={}",
        faulted_stats.worker_panics, faulted_stats.workers_lost, faulted_retries
    );
    println!();
    println!(
        "qos_sched scheduler stats: policy={} micro_batches={} wait={:.1}ms turnaround={:.1}ms",
        qos_stats.policy,
        qos_stats.micro_batches,
        qos_stats.wait_micros as f64 / 1e3,
        qos_stats.turnaround_micros as f64 / 1e3,
    );
    for s in &qos_stats.per_session {
        println!(
            "  session {} [{}]: {} micro-batches, {} samples",
            s.session, s.class, s.micro_batches, s.samples
        );
    }

    let mode_rows: Vec<serde_json::Value> = modes
        .iter()
        .map(|m| {
            json!({
                "name": m.name,
                "seconds": m.seconds,
                "samples_per_sec": m.samples_per_sec,
                "ns_per_step": m.ns_per_step,
            })
        })
        .collect();
    let config = json!({
        "image": cfg.model.image as usize,
        "base_ch": cfg.model.base_ch,
        "ddim_steps": cfg.model.ddim_steps,
        "jobs": jobs.len(),
        "threads": threads,
        "batch_size": cfg.batch_size,
    });
    let pretrain = json!({
        "steps": tiny_steps,
        "seconds": pretrain_s,
        "steps_per_sec": tiny_steps as f64 / pretrain_s,
    });
    let qos_sessions: Vec<serde_json::Value> = qos_stats
        .per_session
        .iter()
        .map(|s| {
            json!({
                "session": s.session,
                "class": s.class.to_string(),
                "micro_batches": s.micro_batches,
                "samples": s.samples,
            })
        })
        .collect();
    let qos_stats_row = json!({
        "policy": qos_stats.policy,
        "micro_batches": qos_stats.micro_batches,
        "samples": qos_stats.samples,
        "wait_micros": qos_stats.wait_micros,
        "turnaround_micros": qos_stats.turnaround_micros,
        "per_session": qos_sessions,
    });
    let out = json!({
        "benchmark": "sampling",
        "config": config,
        "pretrain_tiny": pretrain,
        "modes": mode_rows,
        "speedup_batched_vs_per_sample_naive": speedup,
        "streamed_vs_batched": stream_ratio,
        "engine_sched_vs_batched": engine_ratio,
        "qos_sched_vs_batched": qos_ratio,
        "qos_sched_stats": qos_stats_row,
        "faulted_clean_vs_batched": faulted_ratio,
        "faulted_clean_vs_qos_sched": faulted_vs_qos,
        "faulted_stats": json!({
            "worker_panics": faulted_stats.worker_panics,
            "workers_lost": faulted_stats.workers_lost,
            "retries": faulted_retries,
        }),
    });
    if smoke {
        println!("smoke mode: skipping BENCH_sampling.json");
        return;
    }
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sampling.json");
    match serde_json::to_string_pretty(&out) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("failed to write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("failed to serialise: {e}"),
    }
}
