//! The end-to-end round-tail trajectory benchmark.
//!
//! PR 1/2 made the sampler fast; a round is sample → denoise → DRC →
//! dedupe → select, and this benchmark times everything *after* the
//! sample stream plus the PCA selection fit. A cheap deterministic
//! jitter sampler stands in for the diffusion model so the tail
//! dominates wall clock (the "validator-heavy" regime: thousands of
//! clips through median-filter denoising, squish, signature and
//! sign-off DRC).
//!
//! Modes:
//!
//! * `serial_tail_naive` — `gemm::set_force_naive(true)`: the shipped
//!   pre-rework tail (denoise to raster, re-squish for DRC, re-squish
//!   again on library insert), serial. The baseline, analogous to
//!   `per_sample_naive` in `sampling_bench`.
//! * `serial_tail_fused` — the reworked single-squish tail (canonical
//!   squish straight from the denoiser, squish-space DRC, signature
//!   reuse, lazy rasterisation), still serial.
//! * `parallel_tail_2` / `parallel_tail_4` — the same fused tail fanned
//!   out over 2/4 tail workers with in-order admission.
//!
//! Since the engine redesign every mode runs as an `Engine` session
//! (sampler override = the replay sampler), i.e. through the same code
//! path a multi-tenant service drives; the harness internals are
//! unchanged, so trajectories stay comparable with pre-engine runs.
//!
//! Every mode must produce bit-identical libraries (asserted here).
//! The headline ratio `parallel_tail_vs_serial_tail` compares
//! `parallel_tail_4` against `serial_tail_naive` — per PERF.md, compare
//! ratios, not seconds. A `pca_fit` probe times `Pca::fit` on flattened
//! 32×32 libraries of {200, 2000} patterns under naive vs blocked
//! kernels (the selection half of the rework).
//!
//! Run: `cargo run --release -p pp-bench --bin round_bench`
//! (`PP_BENCH_JOBS=n` scales the round; `PP_BENCH_SMOKE=1` skips the
//! JSON write — the ci.sh bench-smoke step uses both.)

#![forbid(unsafe_code)]

use patternpaint_core::stages::{DrcValidator, SampleStream, Sampler};
use patternpaint_core::{
    Engine, GenerationRequest, JobSet, PatternLibrary, PipelineConfig, PpError, RawSample,
    StreamOptions,
};
use pp_geometry::{GrayImage, Layout, Rect};
use pp_inpaint::{MaskSet, TemplateDenoiser};
use pp_nn::gemm;
use pp_pdk::SynthNode;
use pp_selection::Pca;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::path::PathBuf;
use std::time::Instant;

/// A deterministic stand-in for the diffusion sampler: echoes the
/// template with jittered edges, greyscale noise, and the occasional
/// fresh wire in the masked region — cheap enough that the round tail
/// dominates, noisy enough that the tail does its full job (snapping,
/// majority votes, DRC hits, duplicates and fresh patterns alike).
struct JitterSampler;

impl JitterSampler {
    fn raw_for(
        job: &(std::sync::Arc<Layout>, std::sync::Arc<pp_inpaint::Mask>),
        seed: u64,
    ) -> GrayImage {
        let (template, mask) = job;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = GrayImage::from_layout(template);
        // Jitter vertical edges by one pixel occasionally.
        for y in 0..template.height() {
            for x in 1..template.width() {
                if template.get(x, y) != template.get(x - 1, y) && rng.gen_bool(0.3) {
                    let v = img.get(x, y);
                    img.set(x - 1, y, v);
                }
            }
        }
        // Sometimes paint a fresh wire inside the masked region so the
        // round discovers genuinely new patterns.
        if rng.gen_bool(0.3) {
            let w = template.width();
            let x = rng.gen_range(0..w.saturating_sub(4).max(1));
            let wire = Rect::new(x, 2, 3, template.height() - 4);
            let mask_img = mask.as_image();
            for y in wire.y..wire.bottom().min(template.height()) {
                for x in wire.x..wire.right().min(w) {
                    if mask_img.get(x, y) >= 0.5 {
                        img.set(x, y, 1.0);
                    }
                }
            }
        }
        for p in img.as_pixels_mut() {
            *p += rng.gen_range(-0.3f32..0.3);
        }
        img
    }
}

impl Sampler for JitterSampler {
    fn name(&self) -> &str {
        "jitter"
    }

    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        Ok(jobs
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, job)| RawSample {
                template: std::sync::Arc::clone(&job.0),
                raw: Self::raw_for(job, seed ^ i as u64),
            })
            .collect())
    }
}

/// Replays a pre-generated raw batch (a pointer-bump clone per sample),
/// so the timed loop measures the tail, not the synthetic sampler.
struct ReplaySampler {
    raws: Vec<RawSample>,
}

impl Sampler for ReplaySampler {
    fn name(&self) -> &str {
        "replay"
    }

    fn sample(&self, _jobs: &JobSet, _seed: u64) -> Result<Vec<RawSample>, PpError> {
        Ok(self.raws.clone())
    }

    fn sample_stream(
        &self,
        _jobs: &JobSet,
        _seed: u64,
        _opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        Ok(Box::new(self.raws.clone().into_iter().map(Ok)))
    }
}

struct ModeResult {
    name: &'static str,
    seconds: f64,
    samples_per_sec: f64,
    ns_per_sample: f64,
    library: PatternLibrary,
    counts: (usize, usize),
}

/// Runs one timed round through an engine `Session` (the
/// engine-backed service path); internally this is the same
/// `run_round_into` harness the bare functions drive, so numbers stay
/// comparable with pre-engine trajectories.
fn run_mode(
    name: &'static str,
    engine: &Engine,
    request: &GenerationRequest,
    tail_threads: usize,
    naive: bool,
) -> ModeResult {
    gemm::set_force_naive(naive);
    let opts = StreamOptions::default().with_tail_threads(tail_threads);
    // Warm-up pass (allocator pools, page faults), then the timed run.
    let mut warm = engine.session().with_options(opts.clone());
    let _ = warm.run_request(request);
    let mut session = engine.session().with_options(opts);
    let t0 = Instant::now();
    let counts = session.run_request(request).expect("round runs");
    let seconds = t0.elapsed().as_secs_f64();
    gemm::set_force_naive(false);
    let jobs = request.jobs().len() as f64;
    ModeResult {
        name,
        seconds,
        samples_per_sec: jobs / seconds,
        ns_per_sample: seconds * 1e9 / jobs,
        library: session.into_library(),
        counts,
    }
}

/// Synthetic wire-soup libraries for the PCA probe.
fn pca_library(n: usize, side: u32, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut l = Layout::new(side, side);
            for _ in 0..rng.gen_range(1..4) {
                let x = rng.gen_range(0..side - 3);
                let y = rng.gen_range(0..side / 2);
                let h = rng.gen_range(side / 4..side - y);
                l.fill_rect(Rect::new(x, y, 3, h));
            }
            l.iter().map(|b| if b { 1.0 } else { -1.0 }).collect()
        })
        .collect()
}

fn pca_probe(n: usize, side: u32) -> serde_json::Value {
    let data = pca_library(n, side, 0x9e37 + n as u64);
    // Match the selector's configuration: 90 % explained, 32 components.
    gemm::set_force_naive(true);
    let t0 = Instant::now();
    let naive = Pca::fit(&data, 0.9, 32, 7);
    let naive_s = t0.elapsed().as_secs_f64();
    gemm::set_force_naive(false);
    let t0 = Instant::now();
    let fast = Pca::fit(&data, 0.9, 32, 7);
    let fast_s = t0.elapsed().as_secs_f64();
    if naive.n_components() != fast.n_components() {
        // Float reassociation near the explained-variance cut can
        // legitimately shift the kept count by one; report, don't die.
        eprintln!(
            "note: component count differs across kernels ({} naive vs {} gemm)",
            naive.n_components(),
            fast.n_components()
        );
    }
    println!(
        "pca_fit n={n:>5} d={:>5}: naive {naive_s:.3}s, gemm {fast_s:.3}s ({:.2}x)",
        (side * side),
        naive_s / fast_s
    );
    json!({
        "library": n,
        "dim": side * side,
        "components": fast.n_components(),
        "seconds_naive": naive_s,
        "seconds_gemm": fast_s,
        "speedup_gemm_vs_naive": naive_s / fast_s,
    })
}

fn main() {
    let smoke = std::env::var("PP_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let jobs_target: usize = std::env::var("PP_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);

    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();

    // Starters × all ten masks × as many variations as it takes.
    let starters = node.starter_patterns();
    let masks: Vec<pp_inpaint::Mask> = MaskSet::ALL
        .iter()
        .flat_map(|s| s.masks(node.clip()))
        .collect();
    let variations = (jobs_target / (starters.len() * masks.len())).max(1);
    let request = GenerationRequest::fan_out(&starters, &masks, variations, 0x1217);
    let jobs = request.jobs().len();
    let replay = ReplaySampler {
        raws: JitterSampler
            .sample(request.jobs(), request.seed())
            .expect("jitter sampler cannot fail"),
    };
    // One shared engine snapshot serves every mode, with the replay
    // sampler standing in for the diffusion stage.
    let engine = Engine::builder(node.clone(), cfg)
        .sampler(replay)
        .denoiser(TemplateDenoiser::new(cfg.denoise_threshold))
        .validator(DrcValidator::new(node.rules().clone()))
        .untrained_engine()
        .expect("standard config is valid");

    #[rustfmt::skip]
    let modes = [
        run_mode("serial_tail_naive", &engine, &request, 0, true),
        run_mode("serial_tail_fused", &engine, &request, 0, false),
        run_mode("parallel_tail_2", &engine, &request, 2, false),
        run_mode("parallel_tail_4", &engine, &request, 4, false),
    ];

    // The whole point of the in-order admitter: every mode's library is
    // bit-identical. A benchmark that quietly diverged would be
    // measuring different work.
    for m in &modes[1..] {
        assert_eq!(m.counts, modes[0].counts, "{} counts diverged", m.name);
        assert_eq!(
            m.library.patterns(),
            modes[0].library.patterns(),
            "{} library diverged",
            m.name
        );
    }

    println!(
        "round: {jobs} jobs, {} legal, {} unique",
        modes[0].counts.1,
        modes[0].library.len()
    );
    println!();
    println!(
        "{:<20} {:>10} {:>14} {:>14}",
        "mode", "total (s)", "samples/sec", "ns/sample"
    );
    for m in &modes {
        println!(
            "{:<20} {:>10.3} {:>14.2} {:>14.0}",
            m.name, m.seconds, m.samples_per_sec, m.ns_per_sample
        );
    }
    let headline = modes[3].samples_per_sec / modes[0].samples_per_sec;
    let fused_ratio = modes[1].samples_per_sec / modes[0].samples_per_sec;
    println!();
    println!("parallel_tail_4 vs serial_tail_naive (pre-rework tail): {headline:.2}x");
    println!("serial_tail_fused vs serial_tail_naive (fused-tail win alone): {fused_ratio:.2}x");
    println!();

    let pca_sizes: &[usize] = if smoke { &[50] } else { &[200, 2000] };
    let pca_rows: Vec<serde_json::Value> = pca_sizes
        .iter()
        .map(|&n| pca_probe(n, node.clip()))
        .collect();

    if smoke {
        println!("smoke mode: skipping BENCH_round.json");
        return;
    }

    let mode_rows: Vec<serde_json::Value> = modes
        .iter()
        .map(|m| {
            json!({
                "name": m.name,
                "seconds": m.seconds,
                "samples_per_sec": m.samples_per_sec,
                "ns_per_sample": m.ns_per_sample,
            })
        })
        .collect();
    let config = json!({
        "image": node.clip(),
        "jobs": jobs,
        "variations": variations,
        "denoise_threshold": cfg.denoise_threshold,
        "tail_threads": 4,
        "sampler": "jitter (deterministic stand-in; validator-heavy regime)",
    });
    let round_counts = json!({
        "generated": modes[0].counts.0,
        "legal": modes[0].counts.1,
        "unique": modes[0].library.len(),
    });
    let out = json!({
        "benchmark": "round",
        "config": config,
        "round_counts": round_counts,
        "modes": mode_rows,
        "parallel_tail_vs_serial_tail": headline,
        "fused_serial_vs_serial_tail": fused_ratio,
        "pca_fit": pca_rows,
    });
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_round.json");
    match serde_json::to_string_pretty(&out) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("failed to write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("failed to serialise: {e}"),
    }
}
