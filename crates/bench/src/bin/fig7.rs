//! Regenerates Figure 7: legal count, unique count, H1 and H2 as
//! iterative generation proceeds, for all four PatternPaint variants.
//!
//! Run: `cargo run -p pp-bench --release --bin fig7`

#![forbid(unsafe_code)]

use patternpaint_core::PipelineConfig;
use pp_bench::{cached_pipeline, dump_json, scale, VARIANTS};
use serde_json::json;

fn main() {
    let cfg = PipelineConfig::standard();
    let iterations = 5usize;
    let mut jall = Vec::new();

    println!(
        "Figure 7 — iterative generation metrics (iterations 1..{})",
        iterations + 1
    );
    for variant in VARIANTS {
        let mut cfg_v = cfg;
        cfg_v.variations = scale();
        cfg_v.samples_per_iteration = 150 * scale();
        let pp = cached_pipeline(variant, &cfg_v);
        eprintln!("[fig7] {}: initial generation...", variant.name);
        let round = pp.initial_generation().expect("round runs");
        let mut library = round.library.clone();
        library.extend(pp.starters().iter().cloned());
        let s0 = library.stats();
        println!("\nmodel {}", variant.name);
        println!(
            "{:>5} {:>12} {:>13} {:>7} {:>7}",
            "iter", "legal_total", "unique_total", "H1", "H2"
        );
        println!(
            "{:>5} {:>12} {:>13} {:>7.2} {:>7.2}",
            1,
            round.legal,
            library.len(),
            s0.h1,
            s0.h2
        );
        let mut jser = vec![json!({
            "iter": 1, "legal": round.legal, "unique": library.len(),
            "h1": s0.h1, "h2": s0.h2,
        })];
        let stats = pp
            .iterative_generation(&mut library, iterations, round.legal)
            .expect("iterations run");
        for st in &stats {
            println!(
                "{:>5} {:>12} {:>13} {:>7.2} {:>7.2}",
                st.iteration, st.legal_total, st.unique_total, st.h1, st.h2
            );
            jser.push(json!({
                "iter": st.iteration, "legal": st.legal_total,
                "unique": st.unique_total, "h1": st.h1, "h2": st.h2,
            }));
        }
        jall.push(json!({ "model": variant.name, "series": jser }));
    }
    println!();
    println!("paper reference (Fig. 7): legal and unique counts and H2 grow with");
    println!("iterations; finetuned variants stay above base; H1 drifts down.");
    dump_json("fig7", &json!({ "models": jall }));
}
