//! Regenerates Table II: average per-sample runtime of PatternPaint's
//! inpainting and denoising versus DiffPattern's sample+legalize path.
//!
//! Run: `cargo run -p pp-bench --release --bin table2`

use patternpaint_core::PipelineConfig;
use pp_baselines::DiffPatternBaseline;
use pp_bench::{cached_pipeline, dump_json, Variant};
use pp_geometry::GrayImage;
use pp_inpaint::{Denoiser, MaskSet, TemplateDenoiser};
use pp_pdk::{RuleBasedGenerator, SynthNode};
use serde_json::json;
use std::time::Instant;

fn main() {
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let variant = Variant { name: "sd1-ft", seed: 101, finetuned: true };
    let pp = cached_pipeline(variant, &cfg);

    let n = 40usize;
    let starters = pp.starters().to_vec();
    let masks = MaskSet::Default.masks(node.clip());

    // PatternPaint inpainting runtime (single-threaded, per sample).
    let t0 = Instant::now();
    for i in 0..n {
        let s = &starters[i % starters.len()];
        let m = &masks[i % masks.len()];
        let _ = pp
            .model()
            .sample_inpaint(&GrayImage::from_layout(s), m.as_image(), i as u64);
    }
    let inpaint_avg = t0.elapsed().as_secs_f64() / n as f64;

    // Template denoising runtime.
    let raws: Vec<(GrayImage, &pp_geometry::Layout)> = (0..n)
        .map(|i| {
            let s = &starters[i % starters.len()];
            let m = &masks[i % masks.len()];
            (
                pp.model()
                    .sample_inpaint(&GrayImage::from_layout(s), m.as_image(), 1000 + i as u64),
                s,
            )
        })
        .collect();
    let denoiser = TemplateDenoiser::new(2);
    let t0 = Instant::now();
    for (raw, template) in &raws {
        let _ = denoiser.denoise(raw, template);
    }
    let denoise_avg = t0.elapsed().as_secs_f64() / n as f64;

    // DiffPattern: sample a topology and legalize it with the solver.
    let training = RuleBasedGenerator::new(node.clone(), 77).generate_batch(200);
    let mut dp = DiffPatternBaseline::new(node.rules().clone(), 6);
    dp.train(&training, 200, 8, 2e-3, 6);
    let outcomes = dp.generate(n, 9);
    let dp_avg = outcomes.iter().map(|o| o.seconds).sum::<f64>() / n as f64;

    println!("Table II — average runtime per sample (seconds)");
    println!("{:<28} {:>12} {:>14}", "method", "measured (s)", "paper (s)");
    println!("{:<28} {:>12.4} {:>14}", "PatternPaint (inpainting)", inpaint_avg, "0.81");
    println!("{:<28} {:>12.4} {:>14}", "PatternPaint (denoising)", denoise_avg, "0.21");
    println!("{:<28} {:>12.4} {:>14}", "DiffPattern", dp_avg, "38.04");
    println!();
    println!(
        "shape check: DiffPattern / inpainting = {:.1}x (paper: ~47x); denoise is the cheap step.",
        dp_avg / inpaint_avg.max(1e-9),
    );
    dump_json(
        "table2",
        &json!({
            "inpaint_avg_s": inpaint_avg,
            "denoise_avg_s": denoise_avg,
            "diffpattern_avg_s": dp_avg,
        }),
    );
}
