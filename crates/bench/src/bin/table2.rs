//! Regenerates Table II: average per-sample runtime of PatternPaint's
//! inpainting and denoising versus DiffPattern's sample+legalize path.
//!
//! Both generation paths run through the `Sampler` trait (a
//! single-worker `DiffusionSampler` for PatternPaint, the
//! `DiffPatternSampler` adapter for the baseline), so the timings cover
//! the same harness the other benches drive.
//!
//! Run: `cargo run -p pp-bench --release --bin table2`

#![forbid(unsafe_code)]

use patternpaint_core::{
    DiffusionSampler, GenerationRequest, JobSet, PatternDenoiser, PipelineConfig, Sampler,
};
use pp_baselines::{DiffPatternBaseline, DiffPatternSampler};
use pp_bench::{cached_pipeline, dump_json, Variant};
use pp_inpaint::{Mask, MaskSet, TemplateDenoiser};
use pp_pdk::{RuleBasedGenerator, SynthNode};
use serde_json::json;
use std::time::Instant;

/// n jobs cycling starters × default masks.
fn inpaint_jobs(node: &SynthNode, n: usize) -> JobSet {
    let masks = MaskSet::Default.masks(node.clip());
    JobSet::cycle(&node.starter_patterns(), &masks, n)
}

fn main() {
    let node = SynthNode::default();
    let cfg = PipelineConfig::standard();
    let variant = Variant {
        name: "sd1-ft",
        seed: 101,
        finetuned: true,
    };
    let pp = cached_pipeline(variant, &cfg);

    let n = 40usize;

    // PatternPaint inpainting runtime (single worker, batch size 1:
    // per-sample semantics through the Sampler trait).
    let sampler = DiffusionSampler::new(pp.model().clone(), 1, 1);
    let jobs = inpaint_jobs(&node, n);
    let t0 = Instant::now();
    let raws = sampler.sample(&jobs, 0).expect("jobs are well-formed");
    let inpaint_avg = t0.elapsed().as_secs_f64() / n as f64;

    // Template denoising runtime over the same raw batch.
    let denoiser = TemplateDenoiser::new(2);
    let t0 = Instant::now();
    for raw in &raws {
        let _ = denoiser.denoise_sample(raw);
    }
    let denoise_avg = t0.elapsed().as_secs_f64() / n as f64;

    // DiffPattern: sample a topology and legalize it with the solver,
    // through the same Sampler trait.
    let training = RuleBasedGenerator::new(node.clone(), 77).generate_batch(200);
    let mut dp = DiffPatternBaseline::new(node.rules().clone(), 6);
    dp.train(&training, 200, 8, 2e-3, 6);
    let dp_sampler = DiffPatternSampler::new(dp);
    let dp_jobs = JobSet::cycle(&training, &[Mask::full(node.clip())], n);
    let request = GenerationRequest::new(dp_jobs, 9);
    let t0 = Instant::now();
    let _ = dp_sampler
        .sample(request.jobs(), request.seed())
        .expect("baseline jobs run");
    let dp_avg = t0.elapsed().as_secs_f64() / n as f64;

    println!("Table II — average runtime per sample (seconds)");
    println!(
        "{:<28} {:>12} {:>14}",
        "method", "measured (s)", "paper (s)"
    );
    println!(
        "{:<28} {:>12.4} {:>14}",
        "PatternPaint (inpainting)", inpaint_avg, "0.81"
    );
    println!(
        "{:<28} {:>12.4} {:>14}",
        "PatternPaint (denoising)", denoise_avg, "0.21"
    );
    println!("{:<28} {:>12.4} {:>14}", "DiffPattern", dp_avg, "38.04");
    println!();
    println!(
        "shape check: DiffPattern / inpainting = {:.1}x (paper: ~47x); denoise is the cheap step.",
        dp_avg / inpaint_avg.max(1e-9),
    );
    dump_json(
        "table2",
        &json!({
            "inpaint_avg_s": inpaint_avg,
            "denoise_avg_s": denoise_avg,
            "diffpattern_avg_s": dp_avg,
        }),
    );
}
