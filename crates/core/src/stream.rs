//! Streaming generation requests: what to sample and how to observe it.

use crate::error::PpError;
use crate::jobs::JobSet;
use crate::jobspec::QosClass;
use pp_geometry::Layout;
use pp_inpaint::Mask;
use std::sync::Arc;
use std::time::Duration;

pub use pp_diffusion::CancelToken;

/// Progress of a running generation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Samples finished so far.
    pub completed: usize,
    /// Samples requested.
    pub total: usize,
}

/// Callback invoked after every finished micro-batch (from the thread
/// consuming the stream, never concurrently).
pub type ProgressHook = Arc<dyn Fn(Progress) + Send + Sync>;

/// How a stream is delivered: metering, cancellation, backpressure.
#[derive(Clone, Default)]
pub struct StreamOptions {
    /// Cooperative cancellation, checked between micro-batches; after
    /// [`CancelToken::cancel`] the stream ends early with whatever
    /// samples were already finished.
    pub cancel: CancelToken,
    /// Invoked after each finished micro-batch.
    pub progress: Option<ProgressHook>,
    /// Micro-batches buffered per sampling worker before sampling
    /// blocks (backpressure for slow consumers); `None` buffers a
    /// worker's whole chunk so sampling never waits on the consumer.
    pub capacity: Option<usize>,
    /// Worker threads for the round tail (denoise → DRC → dedupe).
    /// `Some(0)` forces the serial tail; `None` defers to the
    /// pipeline's [`crate::PipelineConfig::tail_threads`] (or serial,
    /// for the bare `run_round` harness). Any value produces
    /// bit-identical libraries — admission is reassembled in job order.
    pub tail_threads: Option<usize>,
    /// QoS class attached to scheduler submissions made under these
    /// options: it selects the admission queue and the share weight
    /// under class-aware policies ([`crate::WeightedFair`]). Ignored by
    /// private (non-scheduled) worker pools.
    pub class: QosClass,
    /// Deadline attached to scheduler submissions, measured from the
    /// moment of submission. Soft by default: [`crate::DeadlineFirst`]
    /// dispatches earlier deadlines first; nothing is aborted when one
    /// passes. See [`StreamOptions::hard_deadline`] for enforcement.
    pub deadline: Option<Duration>,
    /// Makes [`StreamOptions::deadline`] *hard*: once it passes, the
    /// scheduler cooperatively cancels the submission between
    /// micro-batches with [`crate::PpError::DeadlineExceeded`]
    /// (micro-batches already finished still reach the consumer, so
    /// partial results survive). Meaningless without a deadline set.
    pub hard_deadline: bool,
}

impl std::fmt::Debug for StreamOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamOptions")
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.as_ref().map(|_| "<hook>"))
            .field("capacity", &self.capacity)
            .field("tail_threads", &self.tail_threads)
            .field("class", &self.class)
            .field("deadline", &self.deadline)
            .field("hard_deadline", &self.hard_deadline)
            .finish()
    }
}

impl StreamOptions {
    /// Options with a progress hook.
    pub fn with_progress(mut self, hook: impl Fn(Progress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(hook));
        self
    }

    /// Options with a cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Options with a per-worker buffer bound (in micro-batches).
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] for `capacity == 0`: the delivery channels
    /// cannot be rendezvous-only, and `0` must not silently mean
    /// "unbounded" (that is what leaving the field `None` does).
    pub fn with_capacity(mut self, capacity: usize) -> Result<Self, PpError> {
        if capacity == 0 {
            return Err(PpError::Config(
                "capacity: 0 micro-batches would make delivery rendezvous-only; \
                 use 1 for the tightest backpressure or leave the field None for unbounded"
                    .into(),
            ));
        }
        self.capacity = Some(capacity);
        Ok(self)
    }

    /// Options with an explicit tail worker count (`0` = serial),
    /// overriding the pipeline configuration's default.
    pub fn with_tail_threads(mut self, tail_threads: usize) -> Self {
        self.tail_threads = Some(tail_threads);
        self
    }

    /// Options with a QoS class for scheduler submissions.
    pub fn with_class(mut self, class: QosClass) -> Self {
        self.class = class;
        self
    }

    /// Options with a soft deadline (from submission) for scheduler
    /// submissions.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Options with a *hard* deadline (from submission): past it, the
    /// scheduler cancels the submission at the next slot-admission
    /// point and the stream ends with
    /// [`crate::PpError::DeadlineExceeded`] after any
    /// already-finished jobs.
    pub fn with_hard_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self.hard_deadline = true;
        self
    }
}

/// What to generate: a job set plus the base seed deriving every
/// per-job RNG stream (`seed ^ job_index`, matching the batch path).
#[derive(Debug, Clone)]
pub struct GenerationRequest {
    jobs: JobSet,
    seed: u64,
}

impl GenerationRequest {
    /// A request over explicit jobs.
    pub fn new(jobs: JobSet, seed: u64) -> Self {
        GenerationRequest { jobs, seed }
    }

    /// The initial-generation fan-out: every starter × every mask ×
    /// `variations` (paper §IV-C), in that nesting order.
    pub fn fan_out(starters: &[Layout], masks: &[Mask], variations: usize, seed: u64) -> Self {
        let mut jobs = JobSet::new();
        for starter in starters {
            let template = Arc::new(starter.clone());
            for mask in masks {
                let mask = Arc::new(mask.clone());
                jobs.push_fan_out(&template, &mask, variations);
            }
        }
        GenerationRequest { jobs, seed }
    }

    /// The jobs to run.
    pub fn jobs(&self) -> &JobSet {
        &self.jobs
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_inpaint::MaskSet;
    use pp_pdk::SynthNode;

    #[test]
    fn zero_capacity_is_rejected_at_construction() {
        let err = StreamOptions::default().with_capacity(0).unwrap_err();
        assert!(matches!(err, PpError::Config(_)), "wrong error: {err}");
        assert!(err.to_string().contains("capacity"), "message was: {err}");
        let opts = StreamOptions::default().with_capacity(1).unwrap();
        assert_eq!(opts.capacity, Some(1));
    }

    #[test]
    fn qos_options_default_and_chain() {
        let opts = StreamOptions::default();
        assert_eq!(opts.class, QosClass::Batch);
        assert_eq!(opts.deadline, None);
        assert!(!opts.hard_deadline, "deadlines default to soft");
        let opts = opts
            .with_class(QosClass::Interactive)
            .with_deadline(Duration::from_millis(50));
        assert_eq!(opts.class, QosClass::Interactive);
        assert_eq!(opts.deadline, Some(Duration::from_millis(50)));
        assert!(!opts.hard_deadline, "with_deadline stays soft");
        let opts = opts.with_hard_deadline(Duration::from_millis(20));
        assert_eq!(opts.deadline, Some(Duration::from_millis(20)));
        assert!(opts.hard_deadline);
    }

    #[test]
    fn fan_out_matches_nested_order() {
        let node = SynthNode::small();
        let starters = node.starter_patterns();
        let masks: Vec<Mask> = MaskSet::ALL
            .iter()
            .flat_map(|s| s.masks(node.clip()))
            .collect();
        let req = GenerationRequest::fan_out(&starters, &masks, 2, 7);
        assert_eq!(req.jobs().len(), starters.len() * masks.len() * 2);
        assert_eq!(req.seed(), 7);
        // First two jobs share starter 0 and mask 0.
        let jobs = req.jobs().jobs();
        assert_eq!(*jobs[0].0, starters[0]);
        assert!(Arc::ptr_eq(&jobs[0].0, &jobs[1].0));
        assert!(Arc::ptr_eq(&jobs[0].1, &jobs[1].1));
        // Job `variations` moves to mask 1, same starter.
        assert!(Arc::ptr_eq(&jobs[0].0, &jobs[2].0));
        assert!(!Arc::ptr_eq(&jobs[0].1, &jobs[2].1));
    }
}
