//! Pipeline configuration.

use crate::error::PpError;
use pp_diffusion::DiffusionConfig;
use serde::{Deserialize, Serialize};

/// Pretraining hyperparameters (the foundation-model stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Foundation corpus size.
    pub corpus: usize,
    /// Optimiser steps.
    pub steps: usize,
    /// Batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
}

/// Few-shot finetuning hyperparameters (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// Optimiser steps (the paper finetunes for ~10 minutes on an A100).
    pub steps: usize,
    /// Batch size.
    pub batch: usize,
    /// Learning rate (paper: 5e-6 for SD-scale models; scaled up for the
    /// small substrate).
    pub lr: f32,
    /// Prior-preservation weight λ of Eq. 7.
    pub lambda: f32,
    /// Number of prior-class samples generated before finetuning.
    pub prior_count: usize,
}

/// Full pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Diffusion model architecture/sampling config.
    pub model: DiffusionConfig,
    /// Pretraining settings.
    pub pretrain: PretrainConfig,
    /// Finetuning settings.
    pub finetune: FinetuneConfig,
    /// Variations generated per (starter, mask) pair in the initial
    /// round (the paper's `v`; it uses 100 at industrial scale).
    pub variations: usize,
    /// Template-denoiser threshold `T`.
    pub denoise_threshold: u32,
    /// Representative layouts selected per iteration (paper: 100).
    pub select_k: usize,
    /// Samples generated per iteration (paper: 5000).
    pub samples_per_iteration: usize,
    /// Density ceiling for selection (paper: 0.4).
    pub max_density: f64,
    /// PCA explained-variance target (paper: 0.9).
    pub pca_explained: f64,
    /// Worker threads for sampling.
    pub threads: usize,
    /// Micro-batch cap per sampling worker: each network pass runs at
    /// most this many jobs together (`0` = a worker's whole chunk).
    /// Larger batches amortise im2col/GEMM overhead at the cost of peak
    /// activation memory.
    pub batch_size: usize,
    /// Worker threads for the round tail (denoise → DRC → dedupe);
    /// `0` keeps the tail on the consuming thread. Any value yields
    /// bit-identical libraries — verdicts are admitted in job order —
    /// so this is purely a throughput knob for multi-core hosts where
    /// validation would otherwise stall the sampler stream.
    pub tail_threads: usize,
}

impl PipelineConfig {
    /// The configuration used for the headline experiments (32×32 clips,
    /// counts scaled ~20× down from the paper; see EXPERIMENTS.md).
    pub fn standard() -> Self {
        PipelineConfig {
            model: DiffusionConfig::standard(32),
            pretrain: PretrainConfig {
                corpus: 512,
                steps: 600,
                batch: 4,
                lr: 2e-3,
            },
            finetune: FinetuneConfig {
                steps: 120,
                batch: 4,
                lr: 1e-3,
                lambda: 1.0,
                prior_count: 16,
            },
            variations: 2,
            denoise_threshold: 2,
            select_k: 40,
            samples_per_iteration: 200,
            max_density: 0.4,
            pca_explained: 0.9,
            threads: 2,
            batch_size: 16,
            tail_threads: 0,
        }
    }

    /// A fast configuration for examples and CI-style runs.
    pub fn quick() -> Self {
        PipelineConfig {
            model: DiffusionConfig::standard(32),
            pretrain: PretrainConfig {
                corpus: 128,
                steps: 120,
                batch: 4,
                lr: 2e-3,
            },
            finetune: FinetuneConfig {
                steps: 40,
                batch: 4,
                lr: 1e-3,
                lambda: 0.5,
                prior_count: 8,
            },
            variations: 1,
            denoise_threshold: 2,
            select_k: 10,
            samples_per_iteration: 30,
            max_density: 0.4,
            pca_explained: 0.9,
            threads: 2,
            batch_size: 8,
            tail_threads: 0,
        }
    }

    /// A minimal configuration for unit tests (16×16 clips, tiny model).
    pub fn tiny() -> Self {
        PipelineConfig {
            model: DiffusionConfig::tiny(16),
            pretrain: PretrainConfig {
                corpus: 16,
                steps: 10,
                batch: 2,
                lr: 2e-3,
            },
            finetune: FinetuneConfig {
                steps: 5,
                batch: 2,
                lr: 1e-3,
                lambda: 0.5,
                prior_count: 2,
            },
            variations: 1,
            denoise_threshold: 2,
            select_k: 4,
            samples_per_iteration: 5,
            max_density: 0.5,
            pca_explained: 0.9,
            threads: 2,
            batch_size: 4,
            tail_threads: 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), PpError> {
        if self.variations == 0 {
            return Err(PpError::Config("variations must be positive".into()));
        }
        if self.select_k == 0 {
            return Err(PpError::Config("select_k must be positive".into()));
        }
        if !(0.0..=1.0).contains(&self.max_density) {
            return Err(PpError::Config("max_density must be in [0, 1]".into()));
        }
        if !(0.0 < self.pca_explained && self.pca_explained <= 1.0) {
            return Err(PpError::Config("pca_explained must be in (0, 1]".into()));
        }
        if self.samples_per_iteration == 0 {
            return Err(PpError::Config(
                "samples_per_iteration must be positive (an iteration that samples \
                 nothing can never grow the library)"
                    .into(),
            ));
        }
        if self.threads == 0 {
            return Err(PpError::Config(
                "threads must be positive (sampling needs at least one worker)".into(),
            ));
        }
        // Degenerate parallelism knobs: thread counts and micro-batch
        // caps far beyond any host are almost always a unit mix-up
        // (e.g. a byte count landing in a thread field), and they would
        // otherwise "work" by spawning thousands of threads or
        // allocating batch-sized activation buffers.
        const MAX_WORKERS: usize = 4096;
        if self.threads > MAX_WORKERS {
            return Err(PpError::Config(format!(
                "threads = {} exceeds the {MAX_WORKERS} sampling-worker cap (likely a unit mix-up)",
                self.threads
            )));
        }
        if self.tail_threads > MAX_WORKERS {
            return Err(PpError::Config(format!(
                "tail_threads = {} exceeds the {MAX_WORKERS} tail-worker cap (likely a unit mix-up)",
                self.tail_threads
            )));
        }
        const MAX_BATCH: usize = 65_536;
        if self.batch_size > MAX_BATCH {
            return Err(PpError::Config(format!(
                "batch_size = {} exceeds the {MAX_BATCH} micro-batch cap; activation \
                 memory scales linearly with it (0 means a worker's whole chunk)",
                self.batch_size
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(PipelineConfig::standard().validate().is_ok());
        assert!(PipelineConfig::quick().validate().is_ok());
        assert!(PipelineConfig::tiny().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut c = PipelineConfig::tiny();
        c.variations = 0;
        assert!(c.validate().is_err());
        let mut c = PipelineConfig::tiny();
        c.max_density = 1.5;
        assert!(c.validate().is_err());
    }

    /// Every degenerate knob is rejected at construction with a message
    /// naming the offending field.
    #[test]
    fn degenerate_knobs_are_rejected_by_name() {
        type Poison = fn(&mut PipelineConfig);
        let cases: [(&str, Poison); 5] = [
            ("samples_per_iteration", |c| c.samples_per_iteration = 0),
            ("threads", |c| c.threads = 0),
            ("threads", |c| c.threads = 5000),
            ("tail_threads", |c| c.tail_threads = 1 << 20),
            ("batch_size", |c| c.batch_size = 1 << 20),
        ];
        for (field, poison) in cases {
            let mut c = PipelineConfig::tiny();
            poison(&mut c);
            let err = c.validate().expect_err("degenerate value must be rejected");
            assert!(
                matches!(&err, PpError::Config(msg) if msg.contains(field)),
                "error for {field} did not name it: {err}"
            );
        }
        // The documented sentinels stay valid: batch_size 0 is "whole
        // chunk", tail_threads 0 is the serial tail.
        let mut c = PipelineConfig::tiny();
        c.batch_size = 0;
        c.tail_threads = 0;
        assert!(c.validate().is_ok());
    }
}
