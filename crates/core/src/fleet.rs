//! pp-fleet: engine replicas behind a work-stealing router.
//!
//! A [`Fleet`] opens N [`Engine`] replicas from one checkpoint and puts
//! them behind the same declarative front door as [`crate::Service`]:
//! callers submit [`JobSpec`]s and hold [`crate::JobHandle`]s resolving
//! to a terminal [`crate::JobOutcome`]. What changes is *where* a job
//! runs — and the fleet promises it does not matter:
//!
//! - **Bit-identity.** Every replica is opened from the same artifact
//!   snapshot and every attempt builds a fresh seeded session, so a job
//!   produces the same library whichever replica executes it, and a
//!   fleet of N is bit-identical to a fleet of one for the same specs.
//! - **Work stealing.** Each replica has a dedicated runner thread and
//!   a router queue. An idle runner first drains its own queue, then
//!   steals the *newest* job from the longest peer queue — job
//!   granularity, never mid-job.
//! - **Back-pressure-aware admission.** The router aggregates
//!   [`SchedulerStats`] across replicas via [`SchedulerStats::merge`]:
//!   per-class active-job depth caps admission fleet-wide
//!   ([`FleetOptions::job_limits`]), and best-effort work is shed when
//!   the merged recent wait p90 crosses
//!   [`FleetOptions::shed_backpressure_above`]. Rejections are counted
//!   by cause in [`FleetStats`].
//! - **Session affinity.** A [`JobSpec::with_affinity`] key pins the
//!   job to the replica holding that session's state. Successful
//!   affinity jobs persist their session to the replica's local store
//!   (PPSS + PPSQ, via [`crate::Session::save`]); later jobs with the
//!   same key resume it there. When the pinned replica is lost or
//!   [`Fleet::drain`]ed, the next job for the key re-homes it: the
//!   serialized session artifacts are copied to the new replica
//!   ([`crate::artifact::copy_artifacts`]) before resuming. Affinity
//!   jobs report the session's *cumulative* totals and library.
//! - **Failure domains.** [`crate::RetryPolicy`] retries prefer a
//!   different replica than the one that just failed. A replica whose
//!   supervised scheduler loses its whole worker pool is retired: its
//!   queued jobs are redistributed to healthy peers, the in-flight job
//!   is failed over *without* consuming a retry attempt, and its saved
//!   sessions migrate lazily on next use. Hard deadlines and
//!   cancellation are honoured while a job is still queued (purged at
//!   the router) and while it runs (enforced by the replica scheduler).
//!
//! Lock order: the router mutex is the outermost lock; scheduler and
//! store internals are only ever taken while the router lock is either
//! held (stats snapshots are taken *before* locking the router) or the
//! job is already owned by exactly one runner.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::artifact::{copy_artifacts, validate_key, ArtifactStore, MemStore};
use crate::config::PipelineConfig;
use crate::engine::{session_keys, Engine, Session};
use crate::error::PpError;
use crate::jobspec::{JobKind, JobSpec, QosClass, RetryPolicy};
use crate::library::PatternLibrary;
use crate::pipeline::IterationStats;
use crate::scheduler::{ClassCounts, QueueLimits, Scheduler, SchedulerOptions, SchedulerStats};
use crate::service::{run_job, run_rounds, truncated, JobHandle, JobOutcome, JobReport, JobState};
use crate::stream::{CancelToken, Progress, StreamOptions};

/// How a [`Fleet`] is shaped.
///
/// `Default` is two replicas with one sampling thread each, default
/// fleet-wide job limits, and no best-effort shedding.
pub struct FleetOptions {
    /// Replica count for [`Fleet::open`] / [`Fleet::replicate`]
    /// (clamped to at least 1). Ignored by [`Fleet::from_engines`],
    /// which takes one replica per engine handed in.
    pub replicas: usize,
    /// Sampling worker threads per replica scheduler (clamped to at
    /// least 1). A custom [`FleetOptions::scheduler_factory`] does not
    /// override this — thread count and policy are orthogonal.
    pub threads: usize,
    /// Fleet-wide per-class bound on jobs in flight (queued at the
    /// router + running), mirroring [`crate::ServiceOptions`]' limits
    /// but aggregated across all replicas.
    pub job_limits: QueueLimits,
    /// When set, best-effort submissions are shed while the merged
    /// recent wait p90 across healthy replicas exceeds this threshold.
    /// Interactive and batch work is never shed by back-pressure.
    pub shed_backpressure_above: Option<Duration>,
    scheduler: Option<SchedFactory>,
}

type SchedFactory = Box<dyn Fn(usize) -> SchedulerOptions + Send + Sync>;

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            replicas: 2,
            threads: 1,
            job_limits: QueueLimits::default(),
            shed_backpressure_above: None,
            scheduler: None,
        }
    }
}

impl fmt::Debug for FleetOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetOptions")
            .field("replicas", &self.replicas)
            .field("threads", &self.threads)
            .field("job_limits", &self.job_limits)
            .field("shed_backpressure_above", &self.shed_backpressure_above)
            .field(
                "scheduler",
                &if self.scheduler.is_some() {
                    "custom"
                } else {
                    "default"
                },
            )
            .finish()
    }
}

impl FleetOptions {
    /// Default options: see the struct-level docs.
    pub fn new() -> FleetOptions {
        FleetOptions::default()
    }

    /// Sets the replica count.
    pub fn with_replicas(mut self, replicas: usize) -> FleetOptions {
        self.replicas = replicas.max(1);
        self
    }

    /// Sets the per-replica sampling thread count.
    pub fn with_threads(mut self, threads: usize) -> FleetOptions {
        self.threads = threads.max(1);
        self
    }

    /// Sets the fleet-wide per-class job limits.
    pub fn with_job_limits(mut self, limits: QueueLimits) -> FleetOptions {
        self.job_limits = limits;
        self
    }

    /// Enables best-effort shedding above the given merged wait p90.
    pub fn with_backpressure_shed(mut self, above: Duration) -> FleetOptions {
        self.shed_backpressure_above = Some(above);
        self
    }

    /// Supplies per-replica [`SchedulerOptions`] (policy, limits, fault
    /// plan); the factory is called once per replica with its index.
    /// Fault plans are per replica, which is what lets tests kill one
    /// replica's scheduler while its peers stay healthy.
    pub fn scheduler_factory(
        mut self,
        factory: impl Fn(usize) -> SchedulerOptions + Send + Sync + 'static,
    ) -> FleetOptions {
        self.scheduler = Some(Box::new(factory));
        self
    }
}

/// One engine replica: its own supervised scheduler and its own local
/// artifact store holding serialized affinity sessions. The store is an
/// `Arc` so session state survives the replica's scheduler dying — that
/// is exactly what migration reads from.
struct Replica {
    engine: Engine,
    scheduler: Scheduler,
    store: Arc<MemStore>,
    retired: AtomicBool,
}

impl Replica {
    /// Whether this replica may be given new work: not drained/lost and
    /// its supervised worker pool still has live workers.
    fn usable(&self) -> bool {
        !self.retired.load(Ordering::SeqCst) && self.scheduler.is_healthy()
    }
}

/// One queued unit of work. `state.class` carries the QoS class.
struct FleetJob {
    state: Arc<JobState>,
    kind: JobKind,
    seed: u64,
    config: Option<PipelineConfig>,
    budget: Option<usize>,
    retry: RetryPolicy,
    hard: bool,
    deadline_at: Option<Instant>,
    proto: StreamOptions,
    affinity: Option<String>,
    /// 1-based attempt about to run. Failover after replica loss does
    /// *not* increment this; transient retries do.
    attempt: u32,
    /// Earliest instant this job may start (retry backoff).
    not_before: Option<Instant>,
    /// Replica that just failed this job transiently; requeueing
    /// prefers any other usable replica.
    excluded: Option<usize>,
    /// Replica whose store still holds this affinity session's last
    /// saved state, set at pick time when the job re-homes. The runner
    /// copies the artifacts over before resuming.
    migrate_from: Option<usize>,
}

#[derive(Default)]
struct FleetCounters {
    steals: u64,
    affinity_hits: u64,
    affinity_misses: u64,
    migrations: u64,
    rejected_depth: u64,
    rejected_backpressure: u64,
    failovers: u64,
    redistributed: u64,
    retries: u64,
    active: [u64; 3],
    submitted: [u64; 3],
    finished: [u64; 3],
}

struct RouterState {
    /// One FIFO queue per replica; stealing pops from the back.
    queues: Vec<VecDeque<FleetJob>>,
    /// Cancel token of the job each runner is currently executing, so
    /// `Drop` can interrupt in-flight work.
    running: Vec<Option<CancelToken>>,
    /// Affinity key → replica currently owning that session.
    homes: BTreeMap<String, usize>,
    counters: FleetCounters,
    shutdown: bool,
}

struct FleetShared {
    router: Mutex<RouterState>,
    cv: Condvar,
    replicas: Vec<Replica>,
    limits: QueueLimits,
    backpressure: Option<Duration>,
    next_job: AtomicU64,
}

/// N engine replicas behind a work-stealing, affinity-aware router.
/// See the [module docs](self) for the guarantees.
pub struct Fleet {
    shared: Arc<FleetShared>,
    runners: Vec<JoinHandle<()>>,
}

/// Per-replica slice of a [`FleetStats`] snapshot.
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// Replica index (stable for the fleet's lifetime).
    pub index: usize,
    /// Whether the replica is accepting work (not retired, supervised
    /// worker pool alive).
    pub healthy: bool,
    /// Jobs waiting in this replica's router queue.
    pub queued: usize,
    /// The replica scheduler's own counters.
    pub scheduler: SchedulerStats,
}

/// A point-in-time snapshot of the whole fleet.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// One entry per replica, in index order (retired replicas stay
    /// listed, marked unhealthy).
    pub replicas: Vec<ReplicaStats>,
    /// [`SchedulerStats::merge`] over every replica — counters summed,
    /// wait percentiles recomputed from the combined recent windows.
    pub aggregated: SchedulerStats,
    /// Jobs an idle runner pulled from a peer's queue.
    pub steals: u64,
    /// Affinity jobs that resumed their session on its pinned replica.
    pub affinity_hits: u64,
    /// Affinity jobs that had to re-home because the pinned replica was
    /// lost or drained.
    pub affinity_misses: u64,
    /// Session migrations that actually copied serialized state between
    /// replica stores.
    pub migrations: u64,
    /// Submissions refused because the class was at its fleet-wide
    /// in-flight limit.
    pub rejected_depth: u64,
    /// Best-effort submissions shed by the back-pressure threshold.
    pub rejected_backpressure: u64,
    /// In-flight jobs requeued after their replica was lost (no retry
    /// attempt consumed).
    pub failovers: u64,
    /// Queued jobs redistributed off a lost or drained replica.
    pub redistributed: u64,
    /// Transient-failure retries across all jobs.
    pub retries: u64,
    /// Jobs admitted and not yet terminal, per class.
    pub active: ClassCounts,
    /// Jobs admitted since the fleet started, per class.
    pub submitted: ClassCounts,
    /// Jobs that reached a terminal outcome, per class.
    pub finished: ClassCounts,
}

/// `unwrap_or_else(into_inner)`: the router must stay usable even if a
/// runner panicked while holding the lock — wedging every submitter and
/// waiter on a poisoned mutex would turn one bug into a fleet outage.
fn lock_router(shared: &FleetShared) -> MutexGuard<'_, RouterState> {
    shared.router.lock().unwrap_or_else(PoisonError::into_inner)
}

fn empty_report(attempts: u32) -> JobReport {
    JobReport {
        generated: 0,
        legal: 0,
        attempts,
        iterations: Vec::new(),
        library: PatternLibrary::new(),
        train: None,
    }
}

fn counts(raw: &[u64; 3]) -> ClassCounts {
    ClassCounts {
        interactive: raw[0],
        batch: raw[1],
        best_effort: raw[2],
    }
}

impl Fleet {
    /// Opens `options.replicas` independent replicas of the engine
    /// checkpoint in `store` (each gets its own copy of the weights, so
    /// replicas share nothing mutable).
    ///
    /// # Errors
    ///
    /// Whatever [`Engine::open`] reports: a missing or corrupt
    /// checkpoint fails the whole fleet — a partially-open fleet would
    /// silently serve with less capacity than asked for.
    pub fn open(store: &dyn ArtifactStore, options: FleetOptions) -> Result<Fleet, PpError> {
        let engines = (0..options.replicas.max(1))
            .map(|_| Engine::open(store))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Fleet::build(engines, options))
    }

    /// Builds a fleet of `options.replicas` clones of one live engine.
    /// Clones share the immutable model snapshot behind `Arc` (cheap),
    /// and bit-identity holds because the snapshot is frozen.
    pub fn replicate(engine: &Engine, options: FleetOptions) -> Fleet {
        let engines = vec![engine.clone(); options.replicas.max(1)];
        Fleet::build(engines, options)
    }

    /// Builds a fleet from explicit engines, one replica per engine.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] when `engines` is empty.
    pub fn from_engines(engines: Vec<Engine>, options: FleetOptions) -> Result<Fleet, PpError> {
        if engines.is_empty() {
            return Err(PpError::Config(
                "fleet needs at least one engine replica".into(),
            ));
        }
        Ok(Fleet::build(engines, options))
    }

    fn build(engines: Vec<Engine>, options: FleetOptions) -> Fleet {
        let n = engines.len();
        let threads = options.threads.max(1);
        let replicas: Vec<Replica> = engines
            .into_iter()
            .enumerate()
            .map(|(index, engine)| {
                let sched_options = match &options.scheduler {
                    Some(factory) => factory(index),
                    None => SchedulerOptions::new(),
                };
                let scheduler = engine.scheduler_with(threads, sched_options);
                Replica {
                    engine,
                    scheduler,
                    store: Arc::new(MemStore::new()),
                    retired: AtomicBool::new(false),
                }
            })
            .collect();
        let shared = Arc::new(FleetShared {
            router: Mutex::new(RouterState {
                queues: (0..n).map(|_| VecDeque::new()).collect(),
                running: (0..n).map(|_| None).collect(),
                homes: BTreeMap::new(),
                counters: FleetCounters::default(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            replicas,
            limits: options.job_limits,
            backpressure: options.shed_backpressure_above,
            next_job: AtomicU64::new(1),
        });
        let runners = (0..n)
            .map(|r| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || runner(&shared, r))
            })
            .collect();
        Fleet { shared, runners }
    }

    /// Replica count (retired replicas included).
    pub fn replicas(&self) -> usize {
        self.shared.replicas.len()
    }

    /// Submits a job; returns immediately with a [`JobHandle`] that
    /// behaves exactly like a [`crate::Service`] handle.
    ///
    /// Placement: an affinity key pins the job to the replica owning
    /// that session; otherwise [`JobSpec::with_placement`] hints a
    /// replica (`hint % replicas`, if usable); otherwise the shortest
    /// usable queue wins. Idle replicas steal, so a hint is a
    /// preference, not an assignment.
    ///
    /// # Errors
    ///
    /// [`PpError::Rejected`] when the class is at its fleet-wide
    /// in-flight limit, when best-effort work is shed by back-pressure,
    /// or when every replica has been lost or drained;
    /// [`PpError::Config`] for an invalid affinity key or config
    /// shaping that fails validation.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, PpError> {
        let class = spec.class;
        // Training mutates weights; replicas of a fleet share one
        // checkpoint and must stay bit-identical. Fine-tune through a
        // single Service, then open the trained checkpoint as a new
        // engine (or fleet) to A/B it against this one.
        if matches!(spec.kind, JobKind::Train(_)) {
            return Err(PpError::Config(
                "train jobs run on a single Service, not a fleet: replicas share one \
                 checkpoint and training would fork it"
                    .into(),
            ));
        }
        if let Some(key) = &spec.affinity {
            validate_key(key)
                .map_err(|e| PpError::Config(format!("job spec: affinity key: {e}")))?;
        }
        let seed = spec.seed.unwrap_or(self.shared.replicas[0].engine.seed());
        // Validate config shaping before admission, like the service:
        // a bad spec must never occupy an in-flight slot.
        if let Some(cfg) = spec.config {
            self.shared.replicas[0]
                .engine
                .session_seeded(seed)
                .with_config(cfg)?;
        }
        // Aggregate scheduler stats *before* taking the router lock —
        // snapshots take each scheduler's state lock, and the fleet's
        // lock order is router-outermost, never router-under-scheduler.
        let shed_reason = match (class, self.shared.backpressure) {
            (QosClass::BestEffort, Some(threshold)) => {
                let parts: Vec<SchedulerStats> = self
                    .shared
                    .replicas
                    .iter()
                    .filter(|rep| rep.usable())
                    .map(|rep| rep.scheduler.stats())
                    .collect();
                let merged = SchedulerStats::merge(&parts);
                let p90 = Duration::from_micros(merged.wait_p90_micros);
                (!merged.recent_wait_micros.is_empty() && p90 > threshold).then(|| {
                    format!("best-effort shed: fleet wait p90 {p90:?} over threshold {threshold:?}")
                })
            }
            _ => None,
        };

        let mut router = lock_router(&self.shared);
        let usable: Vec<usize> = (0..self.shared.replicas.len())
            .filter(|&i| self.shared.replicas[i].usable())
            .collect();
        if usable.is_empty() {
            return Err(PpError::Rejected {
                reason: "fleet has no usable replicas (all lost or drained)".into(),
            });
        }
        let depth = router.counters.active[class.index()];
        let limit = self.shared.limits.limit(class) as u64;
        if depth >= limit {
            router.counters.rejected_depth += 1;
            return Err(PpError::Rejected {
                reason: format!(
                    "{class} job queue is full ({depth} in flight fleet-wide, limit {limit})"
                ),
            });
        }
        if let Some(reason) = shed_reason {
            router.counters.rejected_backpressure += 1;
            return Err(PpError::Rejected { reason });
        }
        router.counters.active[class.index()] += 1;
        router.counters.submitted[class.index()] += 1;

        let state = Arc::new(JobState::new(
            self.shared.next_job.fetch_add(1, Ordering::Relaxed),
            class,
        ));
        let hook_state = Arc::clone(&state);
        let mut proto = StreamOptions::default()
            .with_cancel(state.cancel.clone())
            .with_class(class)
            .with_progress(move |p: Progress| {
                hook_state.completed.store(p.completed, Ordering::Relaxed);
                hook_state.total.store(p.total, Ordering::Relaxed);
            });
        proto.deadline = spec.deadline;
        // One fixed deadline instant shared by every attempt and every
        // replica — failover does not reset the clock.
        let deadline_at = spec.deadline.and_then(|d| Instant::now().checked_add(d));

        let home = match &spec.affinity {
            Some(key) => match router.homes.get(key) {
                Some(&h) if self.shared.replicas[h].usable() => h,
                Some(_) => {
                    // Stale home: keep the entry so the picking runner
                    // sees the old owner and records the migration; the
                    // queue choice is just a starting point.
                    placed(&router, &usable, spec.placement)
                }
                None => {
                    let h = placed(&router, &usable, spec.placement);
                    router.homes.insert(key.clone(), h);
                    h
                }
            },
            None => placed(&router, &usable, spec.placement),
        };
        router.queues[home].push_back(FleetJob {
            state: Arc::clone(&state),
            kind: spec.kind,
            seed,
            config: spec.config,
            budget: spec.budget,
            retry: spec.retry,
            hard: spec.hard_deadline,
            deadline_at,
            proto,
            affinity: spec.affinity,
            attempt: 1,
            not_before: None,
            excluded: None,
            migrate_from: None,
        });
        drop(router);
        self.shared.cv.notify_all();
        Ok(JobHandle::from_state(state))
    }

    /// A snapshot of router counters plus per-replica and merged
    /// scheduler stats.
    pub fn stats(&self) -> FleetStats {
        // Scheduler snapshots before the router lock (lock order).
        let per: Vec<SchedulerStats> = self
            .shared
            .replicas
            .iter()
            .map(|rep| rep.scheduler.stats())
            .collect();
        let aggregated = SchedulerStats::merge(&per);
        let router = lock_router(&self.shared);
        let c = &router.counters;
        FleetStats {
            replicas: per
                .into_iter()
                .enumerate()
                .map(|(index, scheduler)| ReplicaStats {
                    index,
                    healthy: self.shared.replicas[index].usable(),
                    queued: router.queues[index].len(),
                    scheduler,
                })
                .collect(),
            aggregated,
            steals: c.steals,
            affinity_hits: c.affinity_hits,
            affinity_misses: c.affinity_misses,
            migrations: c.migrations,
            rejected_depth: c.rejected_depth,
            rejected_backpressure: c.rejected_backpressure,
            failovers: c.failovers,
            redistributed: c.redistributed,
            retries: c.retries,
            active: counts(&c.active),
            submitted: counts(&c.submitted),
            finished: counts(&c.finished),
        }
    }

    /// Voluntarily retires a replica: it stops accepting work, its
    /// queued jobs are redistributed to usable peers, and sessions
    /// pinned to it migrate to wherever their next job runs. The job it
    /// is currently executing (if any) finishes normally. Returns
    /// `false` for an out-of-range index.
    ///
    /// Draining the *last* usable replica fails the jobs queued on it —
    /// there is nowhere left to move them.
    pub fn drain(&self, replica: usize) -> bool {
        if replica >= self.shared.replicas.len() {
            return false;
        }
        let mut router = lock_router(&self.shared);
        retire_replica(&self.shared, &mut router, replica, None);
        drop(router);
        self.shared.cv.notify_all();
        true
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        {
            let mut router = lock_router(&self.shared);
            router.shutdown = true;
            let queued: Vec<FleetJob> =
                router.queues.iter_mut().flat_map(|q| q.drain(..)).collect();
            for job in queued {
                finish(
                    &mut router,
                    &job.state,
                    JobOutcome::Cancelled(empty_report(job.attempt)),
                );
            }
            for slot in &mut router.running {
                if let Some(cancel) = slot.take() {
                    cancel.cancel();
                }
            }
        }
        self.shared.cv.notify_all();
        for h in self.runners.drain(..) {
            let _ = h.join();
        }
    }
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("replicas", &self.shared.replicas.len())
            .finish_non_exhaustive()
    }
}

/// Shortest-usable-queue placement, honouring a placement hint when the
/// hinted replica is usable. Ties go to the lowest index, so placement
/// is deterministic for a deterministic submission order.
fn placed(router: &RouterState, usable: &[usize], hint: Option<u64>) -> usize {
    if let Some(p) = hint {
        let cand = (p as usize) % router.queues.len();
        if usable.contains(&cand) {
            return cand;
        }
    }
    usable
        .iter()
        .copied()
        .min_by_key(|&i| router.queues[i].len())
        .unwrap_or(0)
}

/// Settles a terminal job and releases its fleet-wide admission slot.
/// Every caller owns the job exclusively (it was just removed from a
/// queue or finished running), so the slot is released exactly once.
fn finish(router: &mut RouterState, state: &JobState, outcome: JobOutcome) {
    router.counters.active[state.class.index()] -= 1;
    router.counters.finished[state.class.index()] += 1;
    state.settle(outcome);
}

/// What one attempt on one replica concluded. The outcome is boxed:
/// a `JobReport` (library included) dwarfs the dataless variants.
enum Attempt {
    /// Terminal: settle the job.
    Done(Box<JobOutcome>),
    /// Transient failure with attempts left: requeue with backoff,
    /// preferring a different replica.
    Retry,
    /// The replica's worker pool is gone: fail over without consuming
    /// an attempt and retire the replica.
    Lost,
}

/// Side observations of an attempt, folded into router counters by the
/// runner (the attempt itself runs without the router lock).
#[derive(Default)]
struct AttemptSide {
    /// The affinity session resumed from previously saved state.
    resumed: bool,
    /// Serialized session state was copied from another replica first.
    migrated: bool,
}

fn runner(shared: &Arc<FleetShared>, r: usize) {
    loop {
        let mut router = lock_router(shared);
        let mut job = loop {
            if router.shutdown {
                return;
            }
            if !shared.replicas[r].usable() {
                retire_replica(shared, &mut router, r, None);
                drop(router);
                shared.cv.notify_all();
                return;
            }
            purge_expired(&mut router, r);
            if let Some(job) = pop_ready(shared, &mut router, r) {
                break job;
            }
            if let Some(job) = steal(shared, &mut router, r) {
                router.counters.steals += 1;
                break job;
            }
            // Timed wait: backoff expiry, queued-job hard deadlines,
            // and peer-loss detection all need periodic wakeups even
            // when nobody submits.
            let (guard, _) = shared
                .cv
                .wait_timeout(router, Duration::from_millis(10))
                .unwrap_or_else(PoisonError::into_inner);
            router = guard;
        };
        // Re-home an affinity job whose pinned replica is gone, while
        // the router lock still serialises same-key decisions.
        if let Some(key) = &job.affinity {
            match router.homes.get(key).copied() {
                Some(h) if h != r => {
                    job.migrate_from = Some(h);
                    router.homes.insert(key.clone(), r);
                }
                None => {
                    router.homes.insert(key.clone(), r);
                }
                _ => {}
            }
        }
        router.running[r] = Some(job.state.cancel.clone());
        drop(router);

        let (verdict, side) = run_attempt(shared, r, &job);

        let mut router = lock_router(shared);
        router.running[r] = None;
        if job.affinity.is_some() {
            if side.migrated {
                router.counters.migrations += 1;
                router.counters.affinity_misses += 1;
            } else if side.resumed {
                router.counters.affinity_hits += 1;
            }
        }
        match verdict {
            Attempt::Done(outcome) => finish(&mut router, &job.state, *outcome),
            Attempt::Retry => {
                router.counters.retries += 1;
                job.attempt += 1;
                job.not_before = Some(Instant::now() + job.retry.delay_before(job.attempt));
                job.excluded = Some(r);
                job.migrate_from = None;
                requeue(shared, &mut router, job);
            }
            Attempt::Lost => {
                retire_replica(shared, &mut router, r, Some(job));
                drop(router);
                shared.cv.notify_all();
                return;
            }
        }
        drop(router);
        shared.cv.notify_all();
    }
}

/// Settles queued jobs that are already cancelled or past a hard
/// deadline, without wasting a replica slot on them.
fn purge_expired(router: &mut RouterState, r: usize) {
    let mut i = 0;
    while i < router.queues[r].len() {
        let (cancelled, expired) = {
            let job = &router.queues[r][i];
            (
                job.state.cancel.is_cancelled(),
                job.hard && job.deadline_at.is_some_and(|at| Instant::now() > at),
            )
        };
        if !cancelled && !expired {
            i += 1;
            continue;
        }
        if let Some(job) = router.queues[r].remove(i) {
            let outcome = if cancelled {
                JobOutcome::Cancelled(empty_report(job.attempt))
            } else {
                JobOutcome::TimedOut {
                    partial: empty_report(job.attempt),
                }
            };
            finish(router, &job.state, outcome);
        }
    }
}

/// Whether runner `r` may execute `job` right now: backoff elapsed,
/// the job is not pinned to a *different, usable* replica, and the
/// replica that just failed it transiently does not take it back while
/// a peer could run it instead (otherwise, on a loaded machine, the
/// failing runner tends to win the re-pick race and "failover" never
/// actually changes replicas).
fn eligible(shared: &FleetShared, router: &RouterState, r: usize, job: &FleetJob) -> bool {
    if job.not_before.is_some_and(|t| Instant::now() < t) {
        return false;
    }
    if let Some(key) = &job.affinity {
        // Pinned jobs run where their session lives; the exclusion
        // rule below never applies to them — retrying elsewhere would
        // abandon the saved state.
        return match router.homes.get(key) {
            Some(&h) => h == r || !shared.replicas[h].usable(),
            None => true,
        };
    }
    if job.excluded == Some(r)
        && (0..shared.replicas.len()).any(|i| i != r && shared.replicas[i].usable())
    {
        return false;
    }
    true
}

/// Oldest eligible job from the runner's own queue.
fn pop_ready(shared: &FleetShared, router: &mut RouterState, r: usize) -> Option<FleetJob> {
    let idx =
        (0..router.queues[r].len()).find(|&i| eligible(shared, router, r, &router.queues[r][i]))?;
    router.queues[r].remove(idx)
}

/// Newest eligible job from the longest peer queue — newest because the
/// oldest entries are what the loaded peer will reach next itself, so
/// stealing from the back minimises double-handling.
fn steal(shared: &FleetShared, router: &mut RouterState, r: usize) -> Option<FleetJob> {
    let victim = (0..router.queues.len())
        .filter(|&p| p != r && !router.queues[p].is_empty())
        .max_by_key(|&p| router.queues[p].len())?;
    let idx = (0..router.queues[victim].len())
        .rev()
        .find(|&i| eligible(shared, router, r, &router.queues[victim][i]))?;
    router.queues[victim].remove(idx)
}

/// Requeues a job on the shortest usable queue, preferring any replica
/// other than `job.excluded`; falls back to the excluded replica when
/// it is the only one left, and fails the job when none are usable.
fn requeue(shared: &FleetShared, router: &mut RouterState, job: FleetJob) {
    let usable: Vec<usize> = (0..shared.replicas.len())
        .filter(|&i| shared.replicas[i].usable())
        .collect();
    let preferred: Vec<usize> = usable
        .iter()
        .copied()
        .filter(|&i| Some(i) != job.excluded)
        .collect();
    let pool = if preferred.is_empty() {
        &usable
    } else {
        &preferred
    };
    match pool.iter().copied().min_by_key(|&i| router.queues[i].len()) {
        Some(target) => router.queues[target].push_back(job),
        None => finish(
            router,
            &job.state,
            JobOutcome::Failed(PpError::Model("fleet lost all replicas".into())),
        ),
    }
}

/// Retires replica `r`: marks it unusable, redistributes its queue to
/// usable peers, and fails over the in-flight job (when its runner
/// handed one in) without consuming a retry attempt. Sessions pinned to
/// the replica stay mapped to it and migrate lazily — the serialized
/// state lives in the replica's store, which outlives its scheduler.
fn retire_replica(
    shared: &FleetShared,
    router: &mut RouterState,
    r: usize,
    inflight: Option<FleetJob>,
) {
    shared.replicas[r].retired.store(true, Ordering::SeqCst);
    router.running[r] = None;
    let drained: Vec<FleetJob> = router.queues[r].drain(..).collect();
    if let Some(mut job) = inflight {
        router.counters.failovers += 1;
        job.excluded = Some(r);
        job.migrate_from = None;
        requeue(shared, router, job);
    }
    for job in drained {
        router.counters.redistributed += 1;
        requeue(shared, router, job);
    }
}

/// Runs one attempt of `job` on replica `r`. Holds no router lock: the
/// job is owned by this runner, and the only cross-replica state it
/// touches is the (internally synchronised) store named by
/// `migrate_from`, whose owner is already retired.
fn run_attempt(shared: &FleetShared, r: usize, job: &FleetJob) -> (Attempt, AttemptSide) {
    let rep = &shared.replicas[r];
    let mut side = AttemptSide::default();
    if !rep.scheduler.is_healthy() {
        return (Attempt::Lost, side);
    }
    let mut opts = job.proto.clone();
    if let Some(at) = job.deadline_at {
        opts.deadline = Some(at.saturating_duration_since(Instant::now()));
        opts.hard_deadline = job.hard;
    }
    let cancel = job.proto.cancel.clone();

    let (result, mut report) = match &job.affinity {
        Some(key) => run_affinity_attempt(shared, r, job, key, opts, &mut side),
        None => {
            let session = match build_session(rep, job, opts) {
                Ok(s) => s,
                Err(e) => return (Attempt::Done(Box::new(JobOutcome::Failed(e))), side),
            };
            run_job(session, job.kind.clone(), job.budget)
        }
    };
    report.attempts = job.attempt;

    let verdict = match result {
        Ok(()) if cancel.is_cancelled() => Attempt::Done(Box::new(JobOutcome::Cancelled(report))),
        Ok(()) => Attempt::Done(Box::new(JobOutcome::Completed(report))),
        Err(PpError::DeadlineExceeded { .. }) => {
            Attempt::Done(Box::new(JobOutcome::TimedOut { partial: report }))
        }
        Err(PpError::Rejected { reason }) => Attempt::Done(Box::new(JobOutcome::Rejected {
            reason,
            partial: report,
        })),
        // Checked before the transient branch: a dead worker pool
        // surfaces as a transient-looking error, but re-running on the
        // same replica can never succeed — fail over instead, without
        // consuming a retry attempt.
        Err(_) if !rep.scheduler.is_healthy() => Attempt::Lost,
        Err(e)
            if e.is_transient()
                && job.attempt < job.retry.max_attempts
                && !cancel.is_cancelled() =>
        {
            Attempt::Retry
        }
        Err(e) => Attempt::Done(Box::new(JobOutcome::Failed(e))),
    };
    (verdict, side)
}

/// A fresh seeded session for one attempt, mirroring the service: the
/// library and iteration cursor restart from scratch so a retried run
/// is bit-identical to one that never faulted.
fn build_session(rep: &Replica, job: &FleetJob, opts: StreamOptions) -> Result<Session, PpError> {
    let mut s = rep.engine.session_seeded(job.seed);
    if let Some(cfg) = job.config {
        s = s.with_config(cfg)?;
    }
    Ok(s.with_options(opts).attach(&rep.scheduler))
}

/// One attempt of an affinity job: migrate serialized state if the
/// session just re-homed, resume it when saved state exists (fresh
/// seeded session otherwise), run the rounds, and persist the session
/// back to this replica's store on success — failed attempts save
/// nothing, so a retry resumes from the last durable state and replays
/// identically.
fn run_affinity_attempt(
    shared: &FleetShared,
    r: usize,
    job: &FleetJob,
    key: &str,
    opts: StreamOptions,
    side: &mut AttemptSide,
) -> (Result<(), PpError>, JobReport) {
    let rep = &shared.replicas[r];
    if let Some(from) = job.migrate_from {
        let prefix = format!("session-{key}.");
        match copy_artifacts(&*shared.replicas[from].store, &*rep.store, &prefix) {
            Ok(copied) => side.migrated = copied > 0,
            Err(e) => return (Err(PpError::Artifact(e)), empty_report(job.attempt)),
        }
    }
    let (meta_key, _) = session_keys(key);
    let saved = rep.store.get(&meta_key).is_ok();
    let (session, result_iters) = if saved {
        match Session::resume(&rep.engine, &*rep.store, key) {
            Ok(mut s) => {
                side.resumed = true;
                if let Some(cfg) = job.config {
                    s = match s.with_config(cfg) {
                        Ok(s) => s,
                        Err(e) => return (Err(e), empty_report(job.attempt)),
                    };
                }
                let mut s = s.with_options(opts).attach(&rep.scheduler);
                let ri = run_continuation(&mut s, &job.kind, job.budget);
                (s, ri)
            }
            Err(e) => return (Err(e), empty_report(job.attempt)),
        }
    } else {
        match build_session(rep, job, opts) {
            Ok(mut s) => {
                let ri = run_rounds(&mut s, job.kind.clone(), job.budget);
                (s, ri)
            }
            Err(e) => return (Err(e), empty_report(job.attempt)),
        }
    };
    let (result, iterations) = result_iters;
    let result = match result {
        Ok(()) => session.save(&*rep.store, key),
        Err(e) => Err(e),
    };
    let report = JobReport {
        generated: session.generated_total(),
        legal: session.legal_total(),
        attempts: job.attempt,
        iterations,
        library: session.into_library(),
        train: None,
    };
    (result, report)
}

/// The rounds of a *resumed* affinity session. Differs from
/// [`run_rounds`] in two ways: an iterative kind that already ran its
/// initial round skips straight to refinement (the cursor is restored
/// from the manifest), and sample budgets bound this job's *delta*, not
/// the session's lifetime totals.
fn run_continuation(
    session: &mut Session,
    kind: &JobKind,
    budget: Option<usize>,
) -> (Result<(), PpError>, Vec<IterationStats>) {
    let start = session.generated_total();
    let mut iterations = Vec::new();
    let result = (|| -> Result<(), PpError> {
        match kind {
            JobKind::Initial => {
                let request = truncated(session.initial_request(), budget);
                session.run_request(&request)?;
            }
            JobKind::Raw(request) => {
                let request = truncated(request.clone(), budget);
                session.run_request(&request)?;
            }
            JobKind::Iterative { iterations: n } => {
                if session.next_iteration() == 0 {
                    let request = truncated(session.initial_request(), budget);
                    session.run_request(&request)?;
                    session.seed_starters();
                }
                for _ in 0..*n {
                    if session.options().cancel.is_cancelled() {
                        break;
                    }
                    if budget.is_some_and(|b| session.generated_total() - start >= b) {
                        break;
                    }
                    iterations.extend(session.iterate(1)?);
                }
            }
            // Unreachable: Fleet::submit rejects Train jobs before any
            // replica runner sees them.
            JobKind::Train(_) => {
                return Err(PpError::Config(
                    "train jobs do not run generation rounds".into(),
                ))
            }
        }
        Ok(())
    })();
    (result, iterations)
}
