//! Pipeline assembly.

use crate::config::PipelineConfig;
use crate::engine::{Engine, EngineCore};
use crate::error::PpError;
use crate::pipeline::PatternPaint;
use crate::stages::{DrcValidator, PatternDenoiser, Sampler, Selector, Validator};
use pp_geometry::GrayImage;
use pp_inpaint::TemplateDenoiser;
use pp_pdk::{foundation_corpus, SynthNode};
use std::sync::Arc;

/// Assembles a [`PatternPaint`] pipeline, stage by stage.
///
/// Every stage defaults to the paper's implementation; override any of
/// them to swap in a different backbone (the `pp-baselines` samplers),
/// denoising scheme, rule deck, or selection policy while keeping the
/// rest of the harness:
///
/// ```no_run
/// use patternpaint_core::{PatternPaint, PipelineConfig};
/// use pp_pdk::SynthNode;
///
/// let pp = PatternPaint::builder(SynthNode::default(), PipelineConfig::quick())
///     .seed(42)
///     .pretrained()?;
/// # Ok::<(), patternpaint_core::PpError>(())
/// ```
pub struct PipelineBuilder {
    node: SynthNode,
    cfg: PipelineConfig,
    seed: u64,
    sampler: Option<Arc<dyn Sampler>>,
    denoiser: Option<Arc<dyn PatternDenoiser>>,
    validator: Option<Arc<dyn Validator>>,
    selector: Option<Arc<dyn Selector>>,
}

impl PipelineBuilder {
    /// Starts a builder targeting `node` under `cfg`.
    pub fn new(node: SynthNode, cfg: PipelineConfig) -> Self {
        PipelineBuilder {
            node,
            cfg,
            seed: 0,
            sampler: None,
            denoiser: None,
            validator: None,
            selector: None,
        }
    }

    /// Sets the base RNG seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the sampling stage (default: DDIM inpainting through
    /// the pipeline's own diffusion model).
    pub fn sampler(mut self, sampler: impl Sampler + 'static) -> Self {
        self.sampler = Some(Arc::new(sampler));
        self
    }

    /// Replaces the denoising stage (default:
    /// `TemplateDenoiser::new(cfg.denoise_threshold)`).
    pub fn denoiser(mut self, denoiser: impl PatternDenoiser + 'static) -> Self {
        self.denoiser = Some(Arc::new(denoiser));
        self
    }

    /// Replaces the validation stage (default: the node's full sign-off
    /// deck via [`DrcValidator`]).
    pub fn validator(mut self, validator: impl Validator + 'static) -> Self {
        self.validator = Some(Arc::new(validator));
        self
    }

    /// Replaces the selection stage (default: PCA + constrained
    /// farthest-point under `cfg`'s parameters).
    pub fn selector(mut self, selector: impl Selector + 'static) -> Self {
        self.selector = Some(Arc::new(selector));
        self
    }

    /// Builds the pipeline with an *untrained* model.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] when the configuration fails validation,
    /// [`PpError::Shape`] when the model image size differs from the
    /// node clip.
    pub fn untrained(self) -> Result<PatternPaint, PpError> {
        self.cfg.validate()?;
        if self.cfg.model.image != self.node.clip() {
            return Err(PpError::Shape {
                what: "model image vs node clip".into(),
                expected: self.node.clip(),
                actual: self.cfg.model.image,
            });
        }
        let denoiser = self
            .denoiser
            .unwrap_or_else(|| Arc::new(TemplateDenoiser::new(self.cfg.denoise_threshold)));
        let validator = self
            .validator
            .unwrap_or_else(|| Arc::new(DrcValidator::new(self.node.rules().clone())));
        Ok(PatternPaint {
            core: Arc::new(EngineCore::assemble(
                self.node,
                self.cfg,
                self.seed,
                self.sampler,
                denoiser,
                validator,
                self.selector,
            )),
        })
    }

    /// Builds an [`Engine`] snapshot around an *untrained* model
    /// (usually followed by [`Engine::open`]-style weight loading via
    /// the facade, or used directly in tests).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PipelineBuilder::untrained`].
    pub fn untrained_engine(self) -> Result<Engine, PpError> {
        Ok(self.untrained()?.into_engine())
    }

    /// Builds an [`Engine`] snapshot, pretraining its model on the
    /// synthetic foundation corpus first.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PipelineBuilder::pretrained`].
    pub fn pretrained_engine(self) -> Result<Engine, PpError> {
        Ok(self.pretrained()?.into_engine())
    }

    /// Builds the pipeline and pretrains its model on the synthetic
    /// foundation corpus.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PipelineBuilder::untrained`], plus
    /// [`PpError::Model`] if the model rejects the corpus.
    pub fn pretrained(self) -> Result<PatternPaint, PpError> {
        let mut pp = self.untrained()?;
        let cfg = *pp.config();
        let seed = pp.seed();
        let corpus: Vec<GrayImage> =
            foundation_corpus(cfg.pretrain.corpus, cfg.model.image, seed ^ 0xf00d)
                .iter()
                .map(GrayImage::from_layout)
                .collect();
        pp.model_mut().train(
            &corpus,
            cfg.pretrain.steps,
            cfg.pretrain.batch,
            cfg.pretrain.lr,
            seed ^ 0xbeef,
        )?;
        Ok(pp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobSet;
    use crate::library::PatternLibrary;
    use crate::pipeline::RawSample;
    use crate::stream::GenerationRequest;
    use pp_geometry::Layout;

    /// A sampler that echoes each template back as its "raw" output.
    struct EchoSampler;

    impl Sampler for EchoSampler {
        fn name(&self) -> &str {
            "echo"
        }

        fn sample(&self, jobs: &JobSet, _seed: u64) -> Result<Vec<RawSample>, PpError> {
            Ok(jobs
                .iter()
                .map(|(template, _)| RawSample {
                    template: Arc::clone(template),
                    raw: GrayImage::from_layout(template),
                })
                .collect())
        }
    }

    /// A selector that always picks the first k layouts.
    struct FirstK;

    impl Selector for FirstK {
        fn select(&self, library: &[Layout], k: usize) -> Vec<usize> {
            (0..k.min(library.len())).collect()
        }
    }

    #[test]
    fn custom_stages_drive_the_round() {
        let node = SynthNode::small();
        let pp = PatternPaint::builder(node, PipelineConfig::tiny())
            .seed(3)
            .sampler(EchoSampler)
            .selector(FirstK)
            .untrained()
            .expect("valid config");
        // Echoed starters are DR-clean by construction, so every sample
        // is legal and the library dedups to the starter set.
        let round = pp.initial_generation().expect("round runs");
        assert_eq!(round.generated, 200);
        assert_eq!(round.legal, 200);
        let unique_starters = PatternLibrary::from_patterns(pp.starters().iter().cloned()).len();
        assert_eq!(round.library.len(), unique_starters);

        let mut library = PatternLibrary::new();
        library.extend(pp.starters().iter().cloned());
        let stats = pp
            .iterative_generation(&mut library, 1, 0)
            .expect("iteration runs");
        assert_eq!(stats.len(), 1);
        assert!(stats[0].legal_total > 0, "echoed picks stay legal");
    }

    #[test]
    fn custom_sampler_streams_via_fallback() {
        let node = SynthNode::small();
        let pp = PatternPaint::builder(node, PipelineConfig::tiny())
            .sampler(EchoSampler)
            .untrained()
            .expect("valid config");
        let request = GenerationRequest::new(
            {
                let mut jobs = JobSet::new();
                let starter = Arc::new(pp.starters()[0].clone());
                let mask =
                    Arc::new(pp_inpaint::MaskSet::Default.masks(pp.node().clip())[0].clone());
                jobs.push_fan_out(&starter, &mask, 3);
                jobs
            },
            9,
        );
        let samples: Vec<_> = pp
            .generate_stream(&request, &Default::default())
            .expect("stream starts")
            .collect::<Result<_, _>>()
            .expect("no errors");
        assert_eq!(samples.len(), 3);
    }
}
