//! The pipeline's pluggable stage boundary.
//!
//! PatternPaint is four stages — sample, denoise, validate, select —
//! and each is a trait here, with the paper's implementations as the
//! defaults:
//!
//! | stage | trait | default |
//! |---|---|---|
//! | raw inpainting over `(template, mask)` jobs | [`Sampler`] | [`DiffusionSampler`] |
//! | raster → Manhattan layout | [`PatternDenoiser`] | `pp_inpaint::TemplateDenoiser` |
//! | DRC + dedup into the library | [`Validator`] | [`DrcValidator`] |
//! | representative picks between rounds | [`Selector`] | `pp_selection::PcaSelector` |
//!
//! Swapping the sampler is how prior-work baselines (CUP, DiffPattern in
//! `pp-baselines`) run through the same harness as the diffusion model —
//! see [`run_round`] — mirroring how DiffPattern swaps the generation
//! backbone while keeping legalization fixed.

use crate::error::PpError;
use crate::jobs::JobSet;
use crate::library::PatternLibrary;
use crate::pipeline::{GenerationRound, RawSample};
use crate::stream::{GenerationRequest, Progress, StreamOptions};
use crate::tail;
use pp_diffusion::DiffusionModel;
use pp_drc::{check_layout, check_squish, RuleDeck};
use pp_geometry::{GrayImage, Layout, SquishPattern};
use pp_selection::PcaSelector;
use std::sync::Arc;

/// A stream of raw samples, delivered in job order (possibly cut short
/// by cancellation).
pub type SampleStream = Box<dyn Iterator<Item = Result<RawSample, PpError>> + Send>;

/// Stage 2's extension point: raw generation over `(template, mask)`
/// jobs.
///
/// Implementations must be deterministic in `(jobs, seed)` so rounds
/// are reproducible, and must deliver results in job order. The
/// default [`DiffusionSampler`] additionally answers each job `i` from
/// the RNG stream `seed ^ i`, so a single job can be replayed alone;
/// whole-pattern samplers (the baseline adapters) only promise
/// batch-level determinism.
pub trait Sampler: Send + Sync {
    /// A short name for reports.
    fn name(&self) -> &str {
        "sampler"
    }

    /// Samples every job, blocking until all are done.
    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError>;

    /// Streams samples as they finish.
    ///
    /// The default computes everything up front and then iterates — a
    /// correct but unmetered fallback for samplers without incremental
    /// delivery. [`DiffusionSampler`] overrides it with true
    /// bounded-channel streaming.
    fn sample_stream(
        &self,
        jobs: &JobSet,
        seed: u64,
        opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        if opts.cancel.is_cancelled() {
            return Ok(Box::new(std::iter::empty()));
        }
        let samples = self.sample(jobs, seed)?;
        if let Some(hook) = &opts.progress {
            hook(Progress {
                completed: samples.len(),
                total: samples.len(),
            });
        }
        Ok(Box::new(samples.into_iter().map(Ok)))
    }
}

/// The default sampler: mask-conditioned DDIM inpainting through the
/// model's micro-batched worker pool.
#[derive(Debug, Clone)]
pub struct DiffusionSampler {
    model: Arc<DiffusionModel>,
    threads: usize,
    batch_size: usize,
}

impl DiffusionSampler {
    /// Wraps a model with the worker/micro-batch counts the jobs will
    /// run under.
    pub fn new(model: DiffusionModel, threads: usize, batch_size: usize) -> Self {
        Self::from_arc(Arc::new(model), threads, batch_size)
    }

    /// [`DiffusionSampler::new`] over an already-shared model.
    pub fn from_arc(model: Arc<DiffusionModel>, threads: usize, batch_size: usize) -> Self {
        DiffusionSampler {
            model,
            threads,
            batch_size,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &DiffusionModel {
        &self.model
    }

    fn job_images(jobs: &JobSet) -> Vec<(GrayImage, GrayImage)> {
        jobs.iter()
            .map(|(l, m)| (GrayImage::from_layout(l), m.as_image().clone()))
            .collect()
    }
}

impl Sampler for DiffusionSampler {
    fn name(&self) -> &str {
        "diffusion-inpaint"
    }

    fn sample(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        // Collect our own stream rather than going through the model's
        // blocking wrapper: the workers then share `self.model`'s
        // allocation instead of cloning the weights per call.
        let stream = self.model.sample_inpaint_stream(
            Self::job_images(jobs),
            seed,
            self.threads,
            self.batch_size,
            0,
            pp_diffusion::CancelToken::new(),
        )?;
        let mut raws = Vec::with_capacity(jobs.len());
        for mb in stream {
            raws.extend(mb.samples);
        }
        if raws.len() != jobs.len() {
            return Err(PpError::Model(format!(
                "sampler returned {} of {} samples",
                raws.len(),
                jobs.len()
            )));
        }
        Ok(jobs
            .iter()
            .zip(raws)
            .map(|((template, _), raw)| RawSample {
                template: Arc::clone(template),
                raw,
            })
            .collect())
    }

    fn sample_stream(
        &self,
        jobs: &JobSet,
        seed: u64,
        opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        let total = jobs.len();
        let inner = self.model.sample_inpaint_stream(
            Self::job_images(jobs),
            seed,
            self.threads,
            self.batch_size,
            opts.capacity.unwrap_or(0),
            opts.cancel.clone(),
        )?;
        let templates: Vec<Arc<Layout>> = jobs.iter().map(|(t, _)| Arc::clone(t)).collect();
        let hook = opts.progress.clone();
        let mut completed = 0usize;
        let iter = inner.flat_map(move |mb| {
            completed += mb.samples.len();
            if let Some(hook) = &hook {
                hook(Progress { completed, total });
            }
            let batch_templates = templates[mb.start..mb.start + mb.samples.len()].to_vec();
            mb.samples
                .into_iter()
                .zip(batch_templates)
                .map(|(raw, template)| Ok(RawSample { template, raw }))
                .collect::<Vec<_>>()
        });
        Ok(Box::new(iter))
    }
}

/// Stage 3a's extension point: turning a raw (continuous, edge-noisy)
/// sample into a binary Manhattan layout.
///
/// Every `pp_inpaint::Denoiser` (template, NLM, threshold) implements
/// this via the blanket impl below.
pub trait PatternDenoiser: Send + Sync {
    /// Denoises one raw sample.
    fn denoise_sample(&self, sample: &RawSample) -> Layout;

    /// Denoises one raw sample straight to the canonical squish form of
    /// the layout [`PatternDenoiser::denoise_sample`] would produce.
    ///
    /// The round tail runs DRC, deduplication and the diversity metrics
    /// on the squish form, so denoisers that build one internally can
    /// override this (and the `_with_lines` variant) to skip a
    /// rasterise + rescan round trip; results must stay identical to
    /// `SquishPattern::from_layout(&self.denoise_sample(sample))`.
    fn denoise_squish_sample(&self, sample: &RawSample) -> SquishPattern {
        SquishPattern::from_layout(&self.denoise_sample(sample))
    }

    /// [`PatternDenoiser::denoise_squish_sample`] with the template's
    /// scan lines precomputed by the caller (the tail caches them per
    /// template `Arc`, since rounds fan each template out into many
    /// variations). The default ignores the hint.
    fn denoise_squish_sample_with_lines(
        &self,
        sample: &RawSample,
        _lt_x: &[u32],
        _lt_y: &[u32],
    ) -> SquishPattern {
        self.denoise_squish_sample(sample)
    }

    /// A short name for reports.
    fn denoiser_name(&self) -> &str {
        "denoiser"
    }
}

impl<D> PatternDenoiser for D
where
    D: pp_inpaint::Denoiser + Send + Sync,
{
    fn denoise_sample(&self, sample: &RawSample) -> Layout {
        self.denoise(&sample.raw, &sample.template)
    }

    fn denoise_squish_sample(&self, sample: &RawSample) -> SquishPattern {
        self.denoise_squish(&sample.raw, &sample.template)
    }

    fn denoise_squish_sample_with_lines(
        &self,
        sample: &RawSample,
        lt_x: &[u32],
        lt_y: &[u32],
    ) -> SquishPattern {
        self.denoise_squish_with_template_lines(&sample.raw, &sample.template, lt_x, lt_y)
    }

    fn denoiser_name(&self) -> &str {
        pp_inpaint::Denoiser::name(self)
    }
}

/// Stage 3b's extension point: legality plus library admission.
pub trait Validator: Send + Sync {
    /// Whether a denoised layout is legal (sign-off clean and
    /// non-empty, for the default deck-backed implementation).
    fn is_legal(&self, layout: &Layout) -> bool;

    /// Legality judged directly on the canonical squish form, when the
    /// validator can (`None` = "I need the raster; call
    /// [`Validator::is_legal`]").
    ///
    /// The round tail denoises to squish form and asks this first, so
    /// validators that measure on the squish grid (the default
    /// [`DrcValidator`] does — all its rules are scan-line exact) never
    /// force a rasterisation for samples that end up illegal or
    /// duplicate. An implementation must agree with `is_legal` on
    /// `squish.to_layout()`.
    fn is_legal_squish(&self, _squish: &SquishPattern) -> Option<bool> {
        None
    }

    /// Runs the legality check and, on success, inserts into `library`
    /// (which deduplicates by squish signature). Returns legality —
    /// duplicates still count as legal, matching the paper's Table I
    /// accounting.
    ///
    /// A convenience for external drivers only: the pipeline's round
    /// entry points never call it. They run the fused tail — `is_legal`
    /// / [`Validator::is_legal_squish`] plus
    /// [`PatternLibrary::insert_squished`] — whose admission semantics
    /// are fixed to the default body below, so overriding `admit` does
    /// not change what a round admits.
    fn admit(&self, layout: Layout, library: &mut PatternLibrary) -> bool {
        let legal = self.is_legal(&layout);
        if legal {
            library.insert(layout);
        }
        legal
    }
}

/// The default validator: the node's full sign-off [`RuleDeck`], with
/// empty layouts rejected.
#[derive(Debug, Clone)]
pub struct DrcValidator {
    deck: RuleDeck,
}

impl DrcValidator {
    /// Validates against `deck`.
    pub fn new(deck: RuleDeck) -> Self {
        DrcValidator { deck }
    }

    /// The deck in use.
    pub fn deck(&self) -> &RuleDeck {
        &self.deck
    }
}

impl Validator for DrcValidator {
    fn is_legal(&self, layout: &Layout) -> bool {
        layout.metal_area() > 0 && check_layout(layout, &self.deck).is_clean()
    }

    fn is_legal_squish(&self, squish: &SquishPattern) -> Option<bool> {
        Some(squish.metal_area() > 0 && check_squish(squish, &self.deck).is_clean())
    }
}

/// Stage 4's extension point: picking representative layouts to
/// re-inpaint between rounds.
pub trait Selector: Send + Sync {
    /// Picks up to `k` indices into `library`.
    fn select(&self, library: &[Layout], k: usize) -> Vec<usize>;
}

impl Selector for PcaSelector {
    fn select(&self, library: &[Layout], k: usize) -> Vec<usize> {
        PcaSelector::select(self, library, k)
    }
}

/// Drives any sampler through denoise → validate into a fresh library —
/// the one harness the Table I/II benches run every method through
/// (PatternPaint variants and the `pp-baselines` samplers alike).
///
/// Samples are consumed as they stream, so a `ProgressHook` meters the
/// round and a `CancelToken` aborts it with partial counts.
///
/// # Errors
///
/// [`PpError::EmptyRequest`] on an empty job set, plus anything the
/// sampler reports.
pub fn run_round(
    sampler: &dyn Sampler,
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    request: &GenerationRequest,
    opts: &StreamOptions,
) -> Result<GenerationRound, PpError> {
    let mut library = PatternLibrary::new();
    let (generated, legal) =
        run_round_into(sampler, denoiser, validator, request, opts, &mut library)?;
    Ok(GenerationRound {
        generated,
        legal,
        library,
    })
}

/// [`run_round`] into an existing library; returns `(generated, legal)`
/// counts for the round.
///
/// # Errors
///
/// [`PpError::EmptyRequest`] on an empty job set, plus anything the
/// sampler reports.
pub fn run_round_into(
    sampler: &dyn Sampler,
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    request: &GenerationRequest,
    opts: &StreamOptions,
    library: &mut PatternLibrary,
) -> Result<(usize, usize), PpError> {
    let (counts, error) =
        run_round_into_partial(sampler, denoiser, validator, request, opts, library);
    match error {
        Some(e) => Err(e),
        None => Ok(counts),
    }
}

/// [`run_round_into`] that reports partial progress alongside the
/// failure: the counts cover every sample admitted before the round
/// errored (a timed-out or aborted stream keeps what beat the cut,
/// and `library` already holds it).
pub(crate) fn run_round_into_partial(
    sampler: &dyn Sampler,
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    request: &GenerationRequest,
    opts: &StreamOptions,
    library: &mut PatternLibrary,
) -> ((usize, usize), Option<PpError>) {
    if request.jobs().is_empty() {
        return ((0, 0), Some(PpError::EmptyRequest));
    }
    let stream = match sampler.sample_stream(request.jobs(), request.seed(), opts) {
        Ok(stream) => stream,
        Err(e) => return ((0, 0), Some(e)),
    };
    tail::consume(
        stream,
        denoiser,
        validator,
        opts.tail_threads.unwrap_or(0),
        library,
    )
}

/// The per-sample tail of every round: denoise, then validate into the
/// library. One definition so `run_round_into` and
/// [`crate::PatternPaint::validate_into`] cannot drift apart.
///
/// Runs the fused single-squish tail (denoise to canonical squish form,
/// judge legality on it, reuse squish + signature for admission) unless
/// `pp_nn::gemm::force_naive` is active, in which case the pre-rework
/// rasterise / re-squish / re-squish sequence runs instead so benchmark
/// baselines keep measuring the shipped pre-optimisation path. Both
/// paths produce bit-identical libraries and counts, and neither calls
/// [`Validator::admit`] — admission semantics are the same `is_legal` +
/// dedup-insert regardless of kernel flags.
pub fn denoise_and_admit(
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    sample: &RawSample,
    library: &mut PatternLibrary,
) -> bool {
    if pp_nn::gemm::force_naive() {
        let denoised = denoiser.denoise_sample(sample);
        let legal = validator.is_legal(&denoised);
        if legal {
            library.insert(denoised);
        }
        return legal;
    }
    let verdict = tail::prepare(denoiser, validator, sample, None);
    tail::admit(verdict, library)
}
