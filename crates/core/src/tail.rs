//! The round tail: denoise → validate → admit, serial or parallel.
//!
//! A PatternPaint round is sample → denoise → DRC → dedupe, and since
//! the sampling rework the sampler streams faster than one consumer
//! thread can median-filter, squish, signature and rule-check. This
//! module owns everything downstream of the [`SampleStream`]:
//!
//! * [`prepare`] — the per-sample *pure* tail work (denoise to canonical
//!   squish form, legality, signature), safe to run on any thread;
//! * [`admit`] — the library mutation, run on exactly one thread;
//! * [`consume`] — drives a stream through both, either serially
//!   (`tail_threads == 0`) or through a worker pool that fans samples
//!   out to `tail_threads` preparers and reassembles verdicts **in job
//!   order**, so library contents and insertion order are bit-identical
//!   to the serial path for every thread count.
//!
//! When `pp_nn::gemm::set_force_naive` is active the tail always runs
//! the pre-rework serial sequence (denoise to raster, re-squish for DRC,
//! re-squish again on insert) so benchmarks can measure the shipped
//! pre-optimisation baseline on the same build — mirroring what the
//! flag already does to the GEMM/im2col hot paths.

use crate::error::PpError;
use crate::library::PatternLibrary;
use crate::pipeline::RawSample;
use crate::stages::{denoise_and_admit, PatternDenoiser, SampleStream, Validator};
use pp_geometry::{scan_lines_x, scan_lines_y, Layout, Signature, SquishPattern};
use std::borrow::Borrow;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};

/// Per-worker cache of template scan lines, keyed by template identity.
///
/// Rounds fan each starter out into hundreds of variations sharing one
/// `Arc<Layout>`; extracting the template's scan lines per sample was
/// two full-raster passes of pure waste. The cache holds a strong
/// `Arc` clone per entry, so a cached address can never be freed and
/// reused by a different template while the cache lives.
type CachedLines = (Arc<Layout>, Vec<u32>, Vec<u32>);

#[derive(Default)]
pub(crate) struct TemplateLineCache {
    lines: HashMap<usize, CachedLines>,
}

impl TemplateLineCache {
    fn lines(&mut self, template: &Arc<Layout>) -> (&[u32], &[u32]) {
        let key = Arc::as_ptr(template) as usize;
        let entry = self.lines.entry(key).or_insert_with(|| {
            (
                Arc::clone(template),
                scan_lines_x(template),
                scan_lines_y(template),
            )
        });
        (&entry.1, &entry.2)
    }
}

/// The outcome of the pure per-sample tail work.
pub(crate) struct TailVerdict {
    squish: SquishPattern,
    /// Computed only for legal samples (illegal ones are never
    /// inserted, so hashing them would be waste).
    signature: Option<Signature>,
    /// Materialised only when a generic validator demanded the raster;
    /// admission rasterises lazily otherwise.
    layout: Option<Layout>,
    legal: bool,
}

/// Denoises and judges one sample without touching the library.
///
/// Pass a [`TemplateLineCache`] when processing many samples; `None`
/// recomputes the template scan lines (one-shot callers).
pub(crate) fn prepare(
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    sample: &RawSample,
    cache: Option<&mut TemplateLineCache>,
) -> TailVerdict {
    let squish = match cache {
        Some(cache) => {
            let (lt_x, lt_y) = cache.lines(&sample.template);
            denoiser.denoise_squish_sample_with_lines(sample, lt_x, lt_y)
        }
        None => denoiser.denoise_squish_sample(sample),
    };
    let (legal, layout) = match validator.is_legal_squish(&squish) {
        Some(legal) => (legal, None),
        None => {
            let raster = squish.to_layout();
            (validator.is_legal(&raster), Some(raster))
        }
    };
    let signature = if legal {
        Some(Signature::of_squish(&squish))
    } else {
        None
    };
    TailVerdict {
        squish,
        signature,
        layout,
        legal,
    }
}

/// Admits a prepared verdict into the library; returns legality
/// (duplicates count as legal, matching [`Validator::admit`]).
pub(crate) fn admit(verdict: TailVerdict, library: &mut PatternLibrary) -> bool {
    if let Some(signature) = verdict.signature {
        let TailVerdict { squish, layout, .. } = verdict;
        library.insert_squished(signature, &squish, || {
            layout.unwrap_or_else(|| squish.to_layout())
        });
        true
    } else {
        verdict.legal
    }
}

/// Consumes a sample stream into `library`, returning
/// `(generated, legal)` counts and the first stream error, if any —
/// the tail half of every round.
///
/// The counts are meaningful even when an error is returned: every
/// sample before the failure point (in job order) is already admitted
/// and counted, which is what lets a timed-out or aborted round report
/// its partial results instead of pretending nothing happened.
///
/// `tail_threads == 0` (or an active `force_naive`) runs on the calling
/// thread; otherwise a pool of `tail_threads` workers prepares samples
/// concurrently while the calling thread admits verdicts strictly in
/// job order.
pub(crate) fn consume(
    stream: SampleStream,
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    tail_threads: usize,
    library: &mut PatternLibrary,
) -> ((usize, usize), Option<PpError>) {
    if pp_nn::gemm::force_naive() {
        // The pre-rework tail: serial, rasterising, re-squishing.
        let mut generated = 0;
        let mut legal = 0;
        for sample in stream {
            let sample = match sample {
                Ok(s) => s,
                Err(e) => return ((generated, legal), Some(e)),
            };
            generated += 1;
            if denoise_and_admit(denoiser, validator, &sample, library) {
                legal += 1;
            }
        }
        return ((generated, legal), None);
    }
    if tail_threads == 0 {
        return consume_serial(stream, denoiser, validator, library);
    }
    consume_parallel(stream, denoiser, validator, tail_threads, library)
}

/// [`consume`] over an in-memory batch (the `validate_into` entry
/// point). Honors `force_naive` and `tail_threads` identically.
pub(crate) fn consume_batch(
    samples: &[RawSample],
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    tail_threads: usize,
    library: &mut PatternLibrary,
) -> (usize, usize) {
    let items = samples.iter().map(Ok);
    let (counts, error) = if pp_nn::gemm::force_naive() {
        let mut legal = 0;
        for sample in samples {
            if denoise_and_admit(denoiser, validator, sample, library) {
                legal += 1;
            }
        }
        ((samples.len(), legal), None)
    } else if tail_threads == 0 {
        consume_serial(items, denoiser, validator, library)
    } else {
        consume_parallel(items, denoiser, validator, tail_threads, library)
    };
    assert!(
        error.is_none(),
        "in-memory batches cannot produce stream errors"
    );
    counts
}

fn consume_serial<S, I>(
    items: I,
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    library: &mut PatternLibrary,
) -> ((usize, usize), Option<PpError>)
where
    S: Borrow<RawSample>,
    I: Iterator<Item = Result<S, PpError>>,
{
    let mut cache = TemplateLineCache::default();
    let mut generated = 0;
    let mut legal = 0;
    for item in items {
        let sample = match item {
            Ok(s) => s,
            Err(e) => return ((generated, legal), Some(e)),
        };
        generated += 1;
        let verdict = prepare(denoiser, validator, sample.borrow(), Some(&mut cache));
        if admit(verdict, library) {
            legal += 1;
        }
    }
    ((generated, legal), None)
}

/// Samples dispatched to a tail worker per channel message. Channel
/// sends on a bounded `mpsc` wake the receiver — on busy hosts that is
/// a context switch — so per-sample messaging would drown the ~tens of
/// microseconds a 32×32 clip's tail actually costs. Chunking amortises
/// the messaging while staying small enough to load-balance and to
/// keep cancellation latency low.
const DISPATCH_CHUNK: usize = 16;

/// The worker pool: a dispatcher thread drains the stream into a
/// bounded job channel in [`DISPATCH_CHUNK`]-sized chunks, `threads`
/// workers run [`prepare`], and the calling thread reorders verdict
/// chunks back into job order before admitting them.
///
/// Error semantics match the serial loop exactly: the first erroring
/// job (in job order) aborts the round with every earlier sample
/// already admitted and nothing later; the dispatcher stops pulling the
/// stream so sampler workers wind down just as they do when the serial
/// consumer drops the stream.
fn consume_parallel<S, I>(
    items: I,
    denoiser: &dyn PatternDenoiser,
    validator: &dyn Validator,
    threads: usize,
    library: &mut PatternLibrary,
) -> ((usize, usize), Option<PpError>)
where
    S: Borrow<RawSample> + Send,
    I: Iterator<Item = Result<S, PpError>> + Send,
{
    type JobChunk<S> = (usize, Vec<Result<S, PpError>>);
    type VerdictChunk = (usize, Vec<Result<TailVerdict, PpError>>);
    let abort = AtomicBool::new(false);
    let mut generated = 0;
    let mut legal = 0;
    let mut first_error = None;
    std::thread::scope(|scope| {
        let (job_tx, job_rx) = mpsc::sync_channel::<JobChunk<S>>(threads * 2);
        let (verdict_tx, verdict_rx) = mpsc::sync_channel::<VerdictChunk>(threads * 2);
        let job_rx = Arc::new(Mutex::new(job_rx));

        let abort = &abort;
        scope.spawn(move || {
            let mut start = 0usize;
            let mut chunk = Vec::with_capacity(DISPATCH_CHUNK);
            for item in items {
                if abort.load(Ordering::Relaxed) {
                    return;
                }
                chunk.push(item);
                if chunk.len() == DISPATCH_CHUNK {
                    let sent = std::mem::replace(&mut chunk, Vec::with_capacity(DISPATCH_CHUNK));
                    let len = sent.len();
                    if job_tx.send((start, sent)).is_err() {
                        return;
                    }
                    start += len;
                }
            }
            if !chunk.is_empty() {
                let _ = job_tx.send((start, chunk));
            }
        });

        for _ in 0..threads {
            let job_rx = Arc::clone(&job_rx);
            let verdict_tx = verdict_tx.clone();
            scope.spawn(move || {
                let mut cache = TemplateLineCache::default();
                loop {
                    // Poison recovery: a panicking sibling worker must
                    // not wedge the receiver for the rest of the pool.
                    let job = job_rx.lock().unwrap_or_else(PoisonError::into_inner).recv();
                    let Ok((start, chunk)) = job else { break };
                    let verdicts: Vec<Result<TailVerdict, PpError>> = chunk
                        .into_iter()
                        .map(|item| {
                            item.map(|sample| {
                                prepare(denoiser, validator, sample.borrow(), Some(&mut cache))
                            })
                        })
                        .collect();
                    if verdict_tx.send((start, verdicts)).is_err() {
                        break;
                    }
                }
            });
        }
        // The workers hold the only remaining senders: the channel
        // closes when the last worker exits, ending the admission loop.
        drop(verdict_tx);

        let mut next = 0usize;
        let mut pending: BTreeMap<usize, Vec<Result<TailVerdict, PpError>>> = BTreeMap::new();
        'admission: for (start, verdicts) in verdict_rx.iter() {
            if first_error.is_some() {
                // Keep draining so workers never block on a full
                // channel, but admit nothing past the failure point.
                continue;
            }
            pending.insert(start, verdicts);
            while let Some(chunk) = pending.remove(&next) {
                next += chunk.len();
                for verdict in chunk {
                    match verdict {
                        Ok(verdict) => {
                            generated += 1;
                            if admit(verdict, library) {
                                legal += 1;
                            }
                        }
                        Err(e) => {
                            first_error = Some(e);
                            abort.store(true, Ordering::Relaxed);
                            pending.clear();
                            continue 'admission;
                        }
                    }
                }
            }
        }
    });
    ((generated, legal), first_error)
}
