//! The four-stage PatternPaint pipeline.

use crate::config::PipelineConfig;
use crate::library::PatternLibrary;
use pp_diffusion::{DiffusionModel, TrainReport};
use pp_drc::check_layout;
use pp_geometry::{GrayImage, Layout};
use pp_inpaint::{Denoiser, Mask, MaskSchedule, MaskSet, TemplateDenoiser};
use pp_pdk::{foundation_corpus, SynthNode};
use pp_selection::PcaSelector;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One raw (pre-denoising) generated sample with its template.
///
/// The template is shared (`Arc`) because generation rounds fan a
/// handful of starters out into thousands of variations; cloning the
/// full `Layout` per variation was measurable allocator traffic in the
/// sampling hot path.
#[derive(Debug, Clone)]
pub struct RawSample {
    /// The starter/seed layout the mask was applied to.
    pub template: Arc<Layout>,
    /// The raw diffusion output (continuous pixels).
    pub raw: GrayImage,
}

/// The outcome of one generation round.
#[derive(Debug, Clone)]
pub struct GenerationRound {
    /// Total samples generated.
    pub generated: usize,
    /// Samples that passed sign-off DRC (duplicates included).
    pub legal: usize,
    /// The unique legal patterns discovered this round.
    pub library: PatternLibrary,
}

/// Per-iteration statistics (one x-position of the paper's Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (1 = the initial generation).
    pub iteration: usize,
    /// Samples generated in this iteration.
    pub generated: usize,
    /// Cumulative legal samples.
    pub legal_total: usize,
    /// Cumulative unique patterns (library size).
    pub unique_total: usize,
    /// Library H1 after this iteration.
    pub h1: f64,
    /// Library H2 after this iteration.
    pub h2: f64,
}

/// The PatternPaint generator.
///
/// See the crate docs for the stage-by-stage description and
/// `examples/quickstart.rs` for an end-to-end run.
#[derive(Debug, Clone)]
pub struct PatternPaint {
    node: SynthNode,
    cfg: PipelineConfig,
    model: DiffusionModel,
    denoiser: TemplateDenoiser,
    starters: Vec<Layout>,
    seed: u64,
    finetuned: bool,
}

impl PatternPaint {
    /// Builds a pipeline around a freshly *pretrained* base model
    /// (trains on the synthetic foundation corpus — the stand-in for a
    /// public SD checkpoint; see DESIGN.md).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the model image size differs
    /// from the node clip.
    pub fn pretrained(node: SynthNode, cfg: PipelineConfig, seed: u64) -> Self {
        let mut pp = Self::untrained(node, cfg, seed);
        let corpus: Vec<GrayImage> =
            foundation_corpus(cfg.pretrain.corpus, cfg.model.image, seed ^ 0xf00d)
                .iter()
                .map(GrayImage::from_layout)
                .collect();
        let _ = pp.model.train(
            &corpus,
            cfg.pretrain.steps,
            cfg.pretrain.batch,
            cfg.pretrain.lr,
            seed ^ 0xbeef,
        );
        pp
    }

    /// Builds a pipeline with an *untrained* model (for tests or for
    /// loading saved weights with [`PatternPaint::model_mut`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`PatternPaint::pretrained`].
    pub fn untrained(node: SynthNode, cfg: PipelineConfig, seed: u64) -> Self {
        cfg.validate().expect("pipeline config must be valid");
        assert_eq!(
            cfg.model.image,
            node.clip(),
            "model image size must equal the node clip"
        );
        let starters = node.starter_patterns();
        PatternPaint {
            model: DiffusionModel::new(cfg.model, seed),
            denoiser: TemplateDenoiser::new(cfg.denoise_threshold),
            node,
            cfg,
            starters,
            seed,
            finetuned: false,
        }
    }

    /// The node this pipeline targets.
    pub fn node(&self) -> &SynthNode {
        &self.node
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The underlying diffusion model.
    pub fn model(&self) -> &DiffusionModel {
        &self.model
    }

    /// Mutable model access (weight loading, inspection).
    pub fn model_mut(&mut self) -> &mut DiffusionModel {
        &mut self.model
    }

    /// Whether [`PatternPaint::finetune`] has run.
    pub fn is_finetuned(&self) -> bool {
        self.finetuned
    }

    /// The starter patterns in use.
    pub fn starters(&self) -> &[Layout] {
        &self.starters
    }

    /// Stage 1: DreamBooth-style few-shot finetuning on the starters
    /// with prior preservation (paper Eq. 7).
    pub fn finetune(&mut self) -> TrainReport {
        let ft = self.cfg.finetune;
        let prior = self.model.sample_prior(ft.prior_count, self.seed ^ 0x9e37);
        let starter_images: Vec<GrayImage> =
            self.starters.iter().map(GrayImage::from_layout).collect();
        let report = self.model.finetune(
            &starter_images,
            &prior,
            ft.lambda,
            ft.steps,
            ft.batch,
            ft.lr,
            self.seed ^ 0x51ee,
        );
        self.finetuned = true;
        report
    }

    /// Generates raw (pre-denoising) samples for explicit
    /// (template, mask) jobs — the entry point Table III uses to compare
    /// denoising schemes on identical raw batches.
    pub fn generate_raw(&self, jobs: &[(Layout, Mask)], seed: u64) -> Vec<RawSample> {
        let shared: Vec<(Arc<Layout>, Arc<Mask>)> = jobs
            .iter()
            .map(|(l, m)| (Arc::new(l.clone()), Arc::new(m.clone())))
            .collect();
        self.generate_raw_shared(&shared, seed)
    }

    /// [`PatternPaint::generate_raw`] over pre-shared jobs: callers that
    /// fan one template/mask out into many variations pass `Arc` clones
    /// (pointer bumps) instead of deep copies. Sampling runs through
    /// [`DiffusionModel::sample_inpaint_batch_sized`] with the
    /// configured worker and micro-batch counts.
    pub fn generate_raw_shared(
        &self,
        jobs: &[(Arc<Layout>, Arc<Mask>)],
        seed: u64,
    ) -> Vec<RawSample> {
        let batch: Vec<(GrayImage, GrayImage)> = jobs
            .iter()
            .map(|(l, m)| (GrayImage::from_layout(l), m.as_image().clone()))
            .collect();
        let raws = self.model.sample_inpaint_batch_sized(
            &batch,
            seed,
            self.cfg.threads,
            self.cfg.batch_size,
        );
        jobs.iter()
            .zip(raws)
            .map(|((template, _), raw)| RawSample {
                template: Arc::clone(template),
                raw,
            })
            .collect()
    }

    /// Denoises, DRC-checks and deduplicates raw samples into `library`;
    /// returns `(generated, legal)` counts for the batch.
    pub fn validate_into(
        &self,
        samples: &[RawSample],
        library: &mut PatternLibrary,
    ) -> (usize, usize) {
        let mut legal = 0;
        for s in samples {
            let denoised = self.denoiser.denoise(&s.raw, &s.template);
            if denoised.metal_area() == 0 {
                continue;
            }
            if check_layout(&denoised, self.node.rules()).is_clean() {
                legal += 1;
                library.insert(denoised);
            }
        }
        (samples.len(), legal)
    }

    /// Stage 2: initial generation — every starter × all ten predefined
    /// masks × `v` variations (paper §IV-C).
    pub fn initial_generation(&self) -> GenerationRound {
        let side = self.node.clip();
        let mut jobs = Vec::new();
        for starter in &self.starters {
            let starter = Arc::new(starter.clone());
            for set in MaskSet::ALL {
                for mask in set.masks(side) {
                    let mask = Arc::new(mask);
                    for _ in 0..self.cfg.variations {
                        jobs.push((Arc::clone(&starter), Arc::clone(&mask)));
                    }
                }
            }
        }
        let raw = self.generate_raw_shared(&jobs, self.seed ^ 0x1217);
        let mut library = PatternLibrary::new();
        let (generated, legal) = self.validate_into(&raw, &mut library);
        GenerationRound {
            generated,
            legal,
            library,
        }
    }

    /// Stages 3-4: iterative generation. Each round selects `select_k`
    /// representative low-density layouts by PCA + farthest point
    /// (paper Alg. 2), re-inpaints them under their sequentially
    /// scheduled masks, and adds new clean patterns to `library`.
    ///
    /// Returns one [`IterationStats`] per round (cumulative counts start
    /// from `legal_so_far` and the current library).
    pub fn iterative_generation(
        &self,
        library: &mut PatternLibrary,
        iterations: usize,
        mut legal_so_far: usize,
    ) -> Vec<IterationStats> {
        let side = self.node.clip();
        let schedules = [
            MaskSchedule::new(MaskSet::Default, side),
            MaskSchedule::new(MaskSet::Horizontal, side),
        ];
        let selector = PcaSelector::new(
            self.cfg.pca_explained,
            self.cfg.max_density,
            self.seed ^ 0x5e1e,
        );
        let mut stats = Vec::with_capacity(iterations);
        for it in 0..iterations {
            let k = self.cfg.select_k.min(library.len().max(1));
            let picks = selector.select(library.patterns(), k);
            let per_seed = (self.cfg.samples_per_iteration / picks.len().max(1)).max(1);
            let mut jobs = Vec::new();
            for (pi, &idx) in picks.iter().enumerate() {
                // One deep copy per pick; the per_seed variations share it.
                let template = Arc::new(library.patterns()[idx].clone());
                // Alternate mask sets per pattern; walk the set
                // sequentially across iterations (paper §IV-E2).
                let schedule = &schedules[pi % 2];
                let mask = Arc::new(schedule.mask_for(it, pi).clone());
                for _ in 0..per_seed {
                    jobs.push((Arc::clone(&template), Arc::clone(&mask)));
                }
            }
            let raw = self.generate_raw_shared(&jobs, self.seed ^ (0xabcd + it as u64));
            let (generated, legal) = self.validate_into(&raw, library);
            legal_so_far += legal;
            let lib_stats = library.stats();
            stats.push(IterationStats {
                iteration: it + 2, // iteration 1 is the initial round
                generated,
                legal_total: legal_so_far,
                unique_total: library.len(),
                h1: lib_stats.h1,
                h2: lib_stats.h2,
            });
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use pp_inpaint::MaskSet;

    fn tiny_pipeline() -> PatternPaint {
        let node = SynthNode::small();
        PatternPaint::pretrained(node, PipelineConfig::tiny(), 1)
    }

    #[test]
    fn pretrain_and_finetune_run() {
        let mut pp = tiny_pipeline();
        assert!(!pp.is_finetuned());
        let report = pp.finetune();
        assert!(pp.is_finetuned());
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn initial_generation_produces_counts() {
        let pp = tiny_pipeline();
        let round = pp.initial_generation();
        // 20 starters x 10 masks x 1 variation.
        assert_eq!(round.generated, 200);
        assert!(round.legal <= round.generated);
        assert_eq!(round.library.len() <= round.legal, true);
    }

    #[test]
    fn validated_patterns_are_clean_and_unique() {
        let pp = tiny_pipeline();
        let round = pp.initial_generation();
        for p in round.library.patterns() {
            assert!(check_layout(p, pp.node().rules()).is_clean());
        }
        let stats = round.library.stats();
        assert_eq!(stats.unique, round.library.len());
    }

    #[test]
    fn iterations_never_shrink_library() {
        let pp = tiny_pipeline();
        let round = pp.initial_generation();
        let mut library = round.library;
        // Seed with starters so selection has material even if initial
        // generation found nothing on the tiny model.
        library.extend(pp.starters().iter().cloned());
        let before = library.len();
        let stats = pp.iterative_generation(&mut library, 2, round.legal);
        assert_eq!(stats.len(), 2);
        assert!(library.len() >= before);
        assert!(stats[1].unique_total >= stats[0].unique_total);
        assert!(stats[1].legal_total >= stats[0].legal_total);
    }

    #[test]
    fn generate_raw_keeps_known_region() {
        let pp = tiny_pipeline();
        let starter = pp.starters()[0].clone();
        let mask = MaskSet::Default.masks(pp.node().clip())[0].clone();
        let raw = pp.generate_raw(&[(starter.clone(), mask.clone())], 3);
        assert_eq!(raw.len(), 1);
        let r = &raw[0].raw;
        for y in 0..pp.node().clip() {
            for x in 0..pp.node().clip() {
                if mask.as_image().get(x, y) < 0.5 {
                    let expected = if starter.get(x, y) { 1.0 } else { -1.0 };
                    assert_eq!(r.get(x, y), expected, "known pixel changed at {x},{y}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "model image size")]
    fn mismatched_clip_rejected() {
        let node = SynthNode::default(); // 32
        let cfg = PipelineConfig::tiny(); // 16
        let _ = PatternPaint::untrained(node, cfg, 0);
    }
}
