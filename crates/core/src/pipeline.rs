//! The four-stage PatternPaint pipeline, as a facade over the engine.
//!
//! [`PatternPaint`] is the single-workload convenience surface: one
//! model, one implicit session, the entry points the paper's workflow
//! names. Since the engine redesign it is a thin wrapper around an
//! [`Engine`] snapshot — [`PatternPaint::engine`] exposes it, and
//! multi-workload callers go through [`Engine::session`] /
//! [`crate::Session`] directly. Both surfaces run the same core code,
//! so their outputs are bit-identical.

use crate::builder::PipelineBuilder;
use crate::config::PipelineConfig;
use crate::engine::{Engine, EngineCore};
use crate::error::PpError;
use crate::jobs::JobSet;
use crate::library::PatternLibrary;
use crate::stages::{PatternDenoiser, SampleStream, Sampler, Validator};
use crate::stream::{GenerationRequest, StreamOptions};
use pp_diffusion::{DiffusionModel, TrainReport};
use pp_geometry::{GrayImage, Layout};
use pp_pdk::SynthNode;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One raw (pre-denoising) generated sample with its template.
///
/// The template is shared (`Arc`) because generation rounds fan a
/// handful of starters out into thousands of variations; cloning the
/// full `Layout` per variation was measurable allocator traffic in the
/// sampling hot path.
#[derive(Debug, Clone)]
pub struct RawSample {
    /// The starter/seed layout the mask was applied to.
    pub template: Arc<Layout>,
    /// The raw diffusion output (continuous pixels).
    pub raw: GrayImage,
}

/// The outcome of one generation round.
#[derive(Debug, Clone)]
pub struct GenerationRound {
    /// Total samples generated.
    pub generated: usize,
    /// Samples that passed sign-off DRC (duplicates included).
    pub legal: usize,
    /// The unique legal patterns discovered this round.
    pub library: PatternLibrary,
}

/// Per-iteration statistics (one x-position of the paper's Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration number (1 = the initial generation).
    pub iteration: usize,
    /// Samples generated in this iteration.
    pub generated: usize,
    /// Cumulative legal samples.
    pub legal_total: usize,
    /// Cumulative unique patterns (library size).
    pub unique_total: usize,
    /// Library H1 after this iteration.
    pub h1: f64,
    /// Library H2 after this iteration.
    pub h2: f64,
}

/// The PatternPaint generator: one engine snapshot, one workload.
///
/// Assembled by [`PipelineBuilder`] (or the [`PatternPaint::pretrained`]
/// / [`PatternPaint::untrained`] shortcuts); every stage is a trait
/// with the paper's implementation as the default — see the
/// [`crate::stages`] docs. Generation runs through
/// [`PatternPaint::generate_stream`]; the round-level entry points are
/// thin consumers of that stream.
///
/// Internally this is a compatibility facade over one [`Engine`]
/// snapshot. Mutating calls ([`PatternPaint::finetune`],
/// [`PatternPaint::model_mut`], [`PatternPaint::load_weights`]) use
/// copy-on-write: engines previously obtained from
/// [`PatternPaint::engine`] keep the old snapshot.
#[derive(Clone)]
pub struct PatternPaint {
    pub(crate) core: Arc<EngineCore>,
}

impl std::fmt::Debug for PatternPaint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatternPaint")
            .field("node", &self.core.node)
            .field("cfg", &self.core.cfg)
            .field("seed", &self.core.seed)
            .field("finetuned", &self.core.finetuned)
            .field("custom_sampler", &self.core.sampler_override.is_some())
            .field("custom_selector", &self.core.selector_override.is_some())
            .finish_non_exhaustive()
    }
}

impl PatternPaint {
    /// Starts assembling a pipeline; see [`PipelineBuilder`].
    pub fn builder(node: SynthNode, cfg: PipelineConfig) -> PipelineBuilder {
        PipelineBuilder::new(node, cfg)
    }

    /// Builds a default-stage pipeline around a freshly *pretrained*
    /// base model (trains on the synthetic foundation corpus — the
    /// stand-in for a public SD checkpoint; see DESIGN.md).
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] when `cfg` fails validation,
    /// [`PpError::Shape`] when the model image size differs from the
    /// node clip.
    pub fn pretrained(node: SynthNode, cfg: PipelineConfig, seed: u64) -> Result<Self, PpError> {
        Self::builder(node, cfg).seed(seed).pretrained()
    }

    /// Builds a default-stage pipeline with an *untrained* model (for
    /// tests or for loading saved weights with
    /// [`PatternPaint::model_mut`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PatternPaint::pretrained`].
    pub fn untrained(node: SynthNode, cfg: PipelineConfig, seed: u64) -> Result<Self, PpError> {
        Self::builder(node, cfg).seed(seed).untrained()
    }

    /// The engine snapshot this facade currently wraps (a cheap `Arc`
    /// clone). Later mutations of the facade copy-on-write, leaving the
    /// returned engine on the old snapshot.
    pub fn engine(&self) -> Engine {
        Engine {
            core: Arc::clone(&self.core),
        }
    }

    /// Wraps an existing engine snapshot in the facade surface.
    pub fn from_engine(engine: Engine) -> Self {
        PatternPaint { core: engine.core }
    }

    /// Consumes the facade, yielding its engine snapshot.
    pub fn into_engine(self) -> Engine {
        Engine { core: self.core }
    }

    fn core_mut(&mut self) -> &mut EngineCore {
        Arc::make_mut(&mut self.core)
    }

    /// The node this pipeline targets.
    pub fn node(&self) -> &SynthNode {
        &self.core.node
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.core.cfg
    }

    /// The base RNG seed.
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// The underlying diffusion model.
    pub fn model(&self) -> &DiffusionModel {
        &self.core.model
    }

    /// Mutable model access (weight loading, inspection). Clones the
    /// weights only if a sampler, stream, engine or session still
    /// shares them (copy-on-write via [`Arc::make_mut`]).
    pub fn model_mut(&mut self) -> &mut DiffusionModel {
        Arc::make_mut(&mut self.core_mut().model)
    }

    /// Serialises the model weights through the pipeline's error
    /// surface.
    ///
    /// For durable, self-describing artifacts prefer
    /// [`Engine::save`], which wraps the same payload in a versioned,
    /// checksummed checkpoint.
    ///
    /// # Errors
    ///
    /// [`PpError::Checkpoint`] on any writer failure (its source chain
    /// reaches the `io::Error`).
    pub fn save_weights<W: std::io::Write>(&mut self, writer: W) -> Result<(), PpError> {
        self.model_mut().save_weights(writer)?;
        Ok(())
    }

    /// Loads weights saved by [`PatternPaint::save_weights`]
    /// (architectures must match).
    ///
    /// # Errors
    ///
    /// [`PpError::Checkpoint`] on reader failures, bad magic, or a
    /// weight-shape mismatch; the model is untouched on error.
    pub fn load_weights<R: std::io::Read>(&mut self, reader: R) -> Result<(), PpError> {
        self.model_mut().load_weights(reader)?;
        Ok(())
    }

    /// Whether [`PatternPaint::finetune`] has run.
    pub fn is_finetuned(&self) -> bool {
        self.core.finetuned
    }

    /// The starter patterns in use.
    pub fn starters(&self) -> &[Layout] {
        &self.core.starters
    }

    /// The sampler generation runs through: the configured override, or
    /// a [`crate::DiffusionSampler`] over a snapshot of the current
    /// model weights (built per call so it always sees finetuned
    /// weights).
    pub fn sampler(&self) -> Arc<dyn Sampler> {
        self.core.sampler(&self.core.cfg, None)
    }

    /// The denoising stage.
    pub fn denoiser(&self) -> &dyn PatternDenoiser {
        self.core.denoiser.as_ref()
    }

    /// The validation stage.
    pub fn validator(&self) -> &dyn Validator {
        self.core.validator.as_ref()
    }

    /// Stage 1: DreamBooth-style few-shot finetuning on the starters
    /// with prior preservation (paper Eq. 7).
    ///
    /// # Errors
    ///
    /// [`PpError::Model`] when the model rejects the finetuning inputs.
    pub fn finetune(&mut self) -> Result<TrainReport, PpError> {
        let ft = self.core.cfg.finetune;
        let seed = self.core.seed;
        let prior = self.core.model.sample_prior(ft.prior_count, seed ^ 0x9e37);
        let starter_images: Vec<GrayImage> = self
            .core
            .starters
            .iter()
            .map(GrayImage::from_layout)
            .collect();
        let core = self.core_mut();
        let report = Arc::make_mut(&mut core.model).finetune(
            &starter_images,
            &prior,
            ft.lambda,
            ft.steps,
            ft.batch,
            ft.lr,
            seed ^ 0x51ee,
        )?;
        core.finetuned = true;
        Ok(report)
    }

    /// Generates raw (pre-denoising) samples for explicit
    /// (template, mask) jobs — the entry point Table III uses to compare
    /// denoising schemes on identical raw batches.
    ///
    /// # Errors
    ///
    /// [`PpError::EmptyRequest`] when `jobs` is empty, plus anything
    /// the sampler reports.
    pub fn generate_raw(
        &self,
        jobs: &[(Layout, pp_inpaint::Mask)],
        seed: u64,
    ) -> Result<Vec<RawSample>, PpError> {
        self.generate_jobs(&JobSet::from_pairs(jobs), seed)
    }

    /// [`PatternPaint::generate_raw`] over pre-shared jobs: callers
    /// that fan one template/mask out into many variations push `Arc`
    /// clones (pointer bumps) instead of deep copies.
    ///
    /// # Errors
    ///
    /// [`PpError::EmptyRequest`] when `jobs` is empty, plus anything
    /// the sampler reports.
    pub fn generate_jobs(&self, jobs: &JobSet, seed: u64) -> Result<Vec<RawSample>, PpError> {
        if jobs.is_empty() {
            return Err(PpError::EmptyRequest);
        }
        self.sampler().sample(jobs, seed)
    }

    /// Streams raw samples for a request as they finish, in job order.
    ///
    /// The stream is fed by the model's batched sampling workers
    /// through bounded channels; `opts` wires in a progress hook, a
    /// cancellation token (checked between micro-batches — cancelling
    /// ends the stream early with the samples already finished), and a
    /// backpressure bound. The round-level entry points
    /// ([`PatternPaint::initial_generation`],
    /// [`PatternPaint::iterative_generation`]) consume exactly this
    /// stream, so their outputs match streaming consumers bit for bit.
    ///
    /// # Errors
    ///
    /// [`PpError::EmptyRequest`] when the request has no jobs, plus
    /// anything the sampler reports.
    pub fn generate_stream(
        &self,
        request: &GenerationRequest,
        opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        self.core
            .generate_stream(&self.core.cfg, None, request, opts)
    }

    /// Denoises, DRC-checks and deduplicates raw samples into `library`;
    /// returns `(generated, legal)` counts for the batch.
    ///
    /// Runs on `cfg.tail_threads` tail workers (serial when `0`);
    /// results are bit-identical either way.
    pub fn validate_into(
        &self,
        samples: &[RawSample],
        library: &mut PatternLibrary,
    ) -> (usize, usize) {
        crate::tail::consume_batch(
            samples,
            self.core.denoiser.as_ref(),
            self.core.validator.as_ref(),
            self.core.cfg.tail_threads,
            library,
        )
    }

    /// The initial-generation request: every starter × all ten
    /// predefined masks × `v` variations (paper §IV-C).
    pub fn initial_request(&self) -> GenerationRequest {
        self.core.initial_request(&self.core.cfg, self.core.seed)
    }

    /// Stage 2: initial generation, consuming
    /// [`PatternPaint::generate_stream`] over
    /// [`PatternPaint::initial_request`].
    ///
    /// # Errors
    ///
    /// Anything [`PatternPaint::generate_stream`] reports.
    pub fn initial_generation(&self) -> Result<GenerationRound, PpError> {
        self.run_request(&self.initial_request(), &StreamOptions::default())
    }

    /// Runs one full round (sample → denoise → validate) for an
    /// arbitrary request into a fresh library, streaming under `opts`.
    ///
    /// # Errors
    ///
    /// Anything [`PatternPaint::generate_stream`] reports.
    pub fn run_request(
        &self,
        request: &GenerationRequest,
        opts: &StreamOptions,
    ) -> Result<GenerationRound, PpError> {
        let mut library = PatternLibrary::new();
        let (generated, legal) = self.run_request_into(request, opts, &mut library)?;
        Ok(GenerationRound {
            generated,
            legal,
            library,
        })
    }

    /// [`PatternPaint::run_request`] into an existing library.
    ///
    /// The round tail runs on `opts.tail_threads` workers when set,
    /// falling back to the pipeline's `cfg.tail_threads`.
    ///
    /// # Errors
    ///
    /// Anything [`PatternPaint::generate_stream`] reports.
    pub fn run_request_into(
        &self,
        request: &GenerationRequest,
        opts: &StreamOptions,
        library: &mut PatternLibrary,
    ) -> Result<(usize, usize), PpError> {
        self.core
            .run_request_into(&self.core.cfg, None, request, opts, library)
    }

    /// Stages 3-4: iterative generation. Each round selects `select_k`
    /// representative low-density layouts by PCA + farthest point
    /// (paper Alg. 2) — or the configured [`crate::Selector`] override —
    /// re-inpaints them under their sequentially scheduled masks, and
    /// adds new clean patterns to `library`.
    ///
    /// Returns one [`IterationStats`] per round (cumulative counts start
    /// from `legal_so_far` and the current library). Every call starts
    /// the mask schedule at round 0; use a [`crate::Session`] when the
    /// iteration cursor must survive across calls or processes.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] when the selection parameters are invalid,
    /// plus anything [`PatternPaint::generate_stream`] reports.
    pub fn iterative_generation(
        &self,
        library: &mut PatternLibrary,
        iterations: usize,
        legal_so_far: usize,
    ) -> Result<Vec<IterationStats>, PpError> {
        self.iterative_generation_streamed(
            library,
            iterations,
            legal_so_far,
            &StreamOptions::default(),
        )
    }

    /// [`PatternPaint::iterative_generation`] with explicit stream
    /// options: the progress hook and cancellation token apply to every
    /// round's stream (a cancelled round keeps its partial counts, and
    /// no further round starts).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PatternPaint::iterative_generation`].
    pub fn iterative_generation_streamed(
        &self,
        library: &mut PatternLibrary,
        iterations: usize,
        legal_so_far: usize,
        opts: &StreamOptions,
    ) -> Result<Vec<IterationStats>, PpError> {
        self.core.iterate(
            &self.core.cfg,
            None,
            self.core.seed,
            library,
            iterations,
            0,
            legal_so_far,
            opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::stream::CancelToken;
    use pp_drc::check_layout;
    use pp_inpaint::MaskSet;

    fn tiny_pipeline() -> PatternPaint {
        let node = SynthNode::small();
        PatternPaint::pretrained(node, PipelineConfig::tiny(), 1).expect("tiny config is valid")
    }

    #[test]
    fn pretrain_and_finetune_run() {
        let mut pp = tiny_pipeline();
        assert!(!pp.is_finetuned());
        let report = pp.finetune().expect("starters are well-formed");
        assert!(pp.is_finetuned());
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn initial_generation_produces_counts() {
        let pp = tiny_pipeline();
        let round = pp.initial_generation().expect("round runs");
        // 20 starters x 10 masks x 1 variation.
        assert_eq!(round.generated, 200);
        assert!(round.legal <= round.generated);
        assert!(round.library.len() <= round.legal);
    }

    #[test]
    fn validated_patterns_are_clean_and_unique() {
        let pp = tiny_pipeline();
        let round = pp.initial_generation().expect("round runs");
        for p in round.library.patterns() {
            assert!(check_layout(p, pp.node().rules()).is_clean());
        }
        let stats = round.library.stats();
        assert_eq!(stats.unique, round.library.len());
    }

    #[test]
    fn iterations_never_shrink_library() {
        let pp = tiny_pipeline();
        let round = pp.initial_generation().expect("round runs");
        let mut library = round.library;
        // Seed with starters so selection has material even if initial
        // generation found nothing on the tiny model.
        library.extend(pp.starters().iter().cloned());
        let before = library.len();
        let stats = pp
            .iterative_generation(&mut library, 2, round.legal)
            .expect("iterations run");
        assert_eq!(stats.len(), 2);
        assert!(library.len() >= before);
        assert!(stats[1].unique_total >= stats[0].unique_total);
        assert!(stats[1].legal_total >= stats[0].legal_total);
    }

    #[test]
    fn generate_raw_keeps_known_region() {
        let pp = tiny_pipeline();
        let starter = pp.starters()[0].clone();
        let mask = MaskSet::Default.masks(pp.node().clip())[0].clone();
        let raw = pp
            .generate_raw(&[(starter.clone(), mask.clone())], 3)
            .expect("well-formed job");
        assert_eq!(raw.len(), 1);
        let r = &raw[0].raw;
        for y in 0..pp.node().clip() {
            for x in 0..pp.node().clip() {
                if mask.as_image().get(x, y) < 0.5 {
                    let expected = if starter.get(x, y) { 1.0 } else { -1.0 };
                    assert_eq!(r.get(x, y), expected, "known pixel changed at {x},{y}");
                }
            }
        }
    }

    #[test]
    fn mismatched_clip_rejected() {
        let node = SynthNode::default(); // 32
        let cfg = PipelineConfig::tiny(); // 16
        let err = PatternPaint::untrained(node, cfg, 0).unwrap_err();
        assert!(
            matches!(
                err,
                PpError::Shape {
                    expected: 32,
                    actual: 16,
                    ..
                }
            ),
            "wrong error: {err}"
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let node = SynthNode::small();
        let mut cfg = PipelineConfig::tiny();
        cfg.variations = 0;
        let err = PatternPaint::untrained(node, cfg, 0).unwrap_err();
        assert!(matches!(err, PpError::Config(_)), "wrong error: {err}");
    }

    #[test]
    fn empty_requests_rejected() {
        let pp = tiny_pipeline();
        assert!(matches!(
            pp.generate_raw(&[], 0).unwrap_err(),
            PpError::EmptyRequest
        ));
        let empty = GenerationRequest::new(JobSet::new(), 0);
        let err = pp
            .generate_stream(&empty, &StreamOptions::default())
            .err()
            .expect("empty request must be rejected");
        assert!(matches!(err, PpError::EmptyRequest));
        assert!(matches!(
            pp.run_request(&empty, &StreamOptions::default())
                .unwrap_err(),
            PpError::EmptyRequest
        ));
    }

    #[test]
    fn validate_into_matches_streamed_round() {
        let pp = tiny_pipeline();
        let request = pp.initial_request();
        let raw = pp
            .generate_jobs(request.jobs(), request.seed())
            .expect("jobs run");
        let mut library = PatternLibrary::new();
        let (generated, legal) = pp.validate_into(&raw, &mut library);
        let round = pp.initial_generation().expect("round runs");
        assert_eq!(generated, round.generated);
        assert_eq!(legal, round.legal);
        assert_eq!(library.patterns(), round.library.patterns());
    }

    #[test]
    fn weights_roundtrip_and_io_errors_surface() {
        let node = SynthNode::small();
        let mut a = PatternPaint::untrained(node.clone(), PipelineConfig::tiny(), 1)
            .expect("tiny config is valid");
        let mut bytes = Vec::new();
        a.save_weights(&mut bytes).expect("vec writer cannot fail");
        let mut b = PatternPaint::untrained(node, PipelineConfig::tiny(), 999)
            .expect("tiny config is valid");
        b.load_weights(bytes.as_slice()).expect("same architecture");
        // A truncated stream surfaces as the Checkpoint variant whose
        // source chain reaches the io root.
        let err = b.load_weights(&bytes[..3]).unwrap_err();
        assert!(matches!(err, PpError::Checkpoint(_)), "wrong error: {err}");
        use std::error::Error as _;
        assert!(err.source().and_then(|m| m.source()).is_some());
    }

    #[test]
    fn facade_mutations_copy_on_write_from_engines() {
        let mut pp = tiny_pipeline();
        let engine = pp.engine();
        let before = engine.is_finetuned();
        pp.finetune().expect("finetune runs");
        assert!(pp.is_finetuned());
        // The previously-taken engine snapshot is unaffected.
        assert_eq!(engine.is_finetuned(), before);
    }

    #[test]
    fn stream_matches_blocking_generation() {
        let pp = tiny_pipeline();
        let request = pp.initial_request();
        let blocking = pp
            .generate_jobs(request.jobs(), request.seed())
            .expect("jobs run");
        let streamed: Vec<RawSample> = pp
            .generate_stream(&request, &StreamOptions::default())
            .expect("stream starts")
            .collect::<Result<_, _>>()
            .expect("stream yields no errors");
        assert_eq!(streamed.len(), blocking.len());
        for (s, b) in streamed.iter().zip(&blocking) {
            assert_eq!(s.raw, b.raw);
            assert_eq!(*s.template, *b.template);
        }
    }

    #[test]
    fn progress_hook_reaches_total() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pp = tiny_pipeline();
        let request = pp.initial_request();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen_in_hook = Arc::clone(&seen);
        let opts = StreamOptions::default().with_progress(move |p: crate::stream::Progress| {
            seen_in_hook.store(p.completed, Ordering::SeqCst);
            assert_eq!(p.total, 200);
        });
        let round = pp.run_request(&request, &opts).expect("round runs");
        assert_eq!(round.generated, 200);
        assert_eq!(seen.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn cancellation_stops_stream_with_partial_results() {
        let pp = tiny_pipeline();
        let request = pp.initial_request(); // 200 jobs
        let cancel = CancelToken::new();
        // capacity 1 + the tiny batch size bound how far workers run
        // ahead of the consumer after cancellation.
        let opts = StreamOptions::default()
            .with_cancel(cancel.clone())
            .with_capacity(1)
            .expect("positive capacity is valid");
        let stream = pp.generate_stream(&request, &opts).expect("stream starts");
        let mut yielded = 0;
        for sample in stream {
            sample.expect("samples are well-formed");
            yielded += 1;
            cancel.cancel();
        }
        assert!(yielded >= 1, "cancellation must deliver partial results");
        assert!(
            yielded < request.jobs().len(),
            "cancellation failed to stop the stream early ({yielded}/200)"
        );
    }
}
