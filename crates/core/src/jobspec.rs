//! Declarative job specifications: what a workload *is*, separate from
//! how the service runs it.
//!
//! A [`JobSpec`] names the workload kind (the paper's initial round,
//! the full iterative pipeline, or an explicit raw request), its
//! quality-of-service class, and the per-job intent that used to be
//! smuggled through config overrides: an optional soft deadline, an
//! optional sample budget, a seed, and request-shaping configuration.
//! Specs are plain data — build one anywhere, submit it to
//! [`crate::Service::submit`], persist it with [`JobSpec::encode`].
//!
//! The QoS class feeds two mechanisms downstream:
//!
//! * **admission control** — each class has its own bounded queue at
//!   the scheduler and the service front door
//!   ([`crate::QueueLimits`]); overflow returns
//!   [`crate::PpError::Rejected`] instead of growing without bound;
//! * **scheduling policy** — [`crate::WeightedFair`] shares sampling
//!   micro-batches by class weight ([`QosClass::weight`]), and
//!   [`crate::DeadlineFirst`] orders by the spec's soft deadline.

use crate::config::PipelineConfig;
use crate::error::PpError;
use crate::stream::GenerationRequest;
use crate::train::{ExportWeights, TrainSpec};
use std::fmt;
use std::time::Duration;

/// Quality-of-service class of a workload.
///
/// The class is advisory under the default [`crate::RoundRobin`] policy
/// (every submission gets an equal micro-batch share) and load-bearing
/// under [`crate::WeightedFair`], which shares the sampling pool
/// proportionally to [`QosClass::weight`]. Admission control is always
/// per class: each class has its own bounded queue, so a flood of
/// best-effort work can never push interactive work into rejection.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosClass {
    /// Latency-sensitive work (a designer waiting at a prompt).
    Interactive,
    /// Normal throughput work (the default).
    #[default]
    Batch,
    /// Scavenger work that only runs when nothing better is queued
    /// for its share.
    BestEffort,
}

impl fmt::Display for QosClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QosClass::Interactive => "interactive",
            QosClass::Batch => "batch",
            QosClass::BestEffort => "best-effort",
        })
    }
}

impl QosClass {
    /// Every class, in priority order.
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Batch, QosClass::BestEffort];

    /// The class's [`crate::WeightedFair`] share weight
    /// (interactive 4 : batch 2 : best-effort 1).
    pub fn weight(self) -> u32 {
        match self {
            QosClass::Interactive => 4,
            QosClass::Batch => 2,
            QosClass::BestEffort => 1,
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Batch => 1,
            QosClass::BestEffort => 2,
        }
    }

    fn tag(self) -> u8 {
        self.index() as u8
    }

    fn from_tag(tag: u8) -> Result<QosClass, PpError> {
        QosClass::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| PpError::Config(format!("job spec: unknown QoS class tag {tag}")))
    }
}

/// How the service re-runs a job that failed on a *transient* fault
/// (one where [`PpError::is_transient`] is true: a worker panic or an
/// I/O failure). Non-transient failures — bad config, admission
/// rejection, an expired deadline — never retry, because re-running an
/// invalid or expired request cannot fix it.
///
/// Retries are deterministic: every attempt runs on a fresh session
/// built from the same spec (same seed, same config), so an attempt
/// that succeeds produces the library bit-identical to a run that never
/// faulted. Backoff between attempts is exponential and bounded:
/// attempt `n+1` waits `backoff × 2ⁿ⁻¹`, capped at 5 seconds, and the
/// wait itself is cancellable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first run included; `1` means no retry.
    /// (Zero is treated as 1 — a job always runs at least once.)
    pub max_attempts: u32,
    /// Base backoff before the second attempt; later attempts double
    /// it (capped at 5 s).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// Ceiling on a single backoff sleep, whatever the doubling says.
    pub const MAX_BACKOFF: Duration = Duration::from_secs(5);

    /// No retries: the job runs exactly once (the default).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Up to `max_attempts` total attempts with exponential backoff
    /// starting at `backoff`.
    pub fn new(max_attempts: u32, backoff: Duration) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            backoff,
        }
    }

    /// The backoff to sleep before `attempt` (1-based; attempt 1 is the
    /// first run and never waits): `backoff × 2^(attempt-2)`, capped at
    /// [`RetryPolicy::MAX_BACKOFF`].
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 || self.backoff.is_zero() {
            return Duration::ZERO;
        }
        // Past 2^32 the cap has long since won; clamp the shift.
        let doublings = (attempt - 2).min(31);
        self.backoff
            .saturating_mul(1u32 << doublings)
            .min(RetryPolicy::MAX_BACKOFF)
    }
}

/// What kind of workload a [`JobSpec`] describes.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum JobKind {
    /// The paper's stage-2 initial round: every starter × every
    /// predefined mask × `variations`.
    Initial,
    /// The full pipeline: the initial round, starter seeding, then
    /// `iterations` rounds of PCA selection + re-inpainting (paper
    /// stages 2–4). The per-round seeds and mask schedule key off
    /// absolute iteration indices, exactly as [`crate::Session::iterate`]
    /// does.
    Iterative {
        /// Refinement rounds after the initial round.
        iterations: usize,
    },
    /// An explicit request: sample these `(template, mask)` jobs and
    /// run the round tail over them. Raw requests carry in-memory job
    /// sets and are the one kind [`JobSpec::encode`] cannot serialise.
    Raw(GenerationRequest),
    /// A training workload: fine-tune the engine's model per the
    /// [`TrainSpec`] (epochs × steps over starters + ingested session
    /// libraries, EMA shadow, lineage-carrying checkpoints). Runs
    /// preemptibly under the scheduler — parked between epochs whenever
    /// higher-class work is queued — and resumes bit-identically from
    /// its last checkpoint after preemption, retry, or restart.
    /// Requires the service to be built with an artifact store
    /// ([`crate::ServiceOptions::store`]).
    Train(TrainSpec),
}

/// A declarative, serializable description of one workload.
///
/// Build with the kind constructors and chain the intent:
///
/// ```
/// use patternpaint_core::{JobSpec, QosClass};
/// use std::time::Duration;
///
/// let spec = JobSpec::iterative(2)
///     .with_class(QosClass::Interactive)
///     .with_deadline(Duration::from_secs(30))
///     .with_budget(500)
///     .with_seed(7);
/// assert_eq!(spec.class, QosClass::Interactive);
/// let bytes = spec.encode().unwrap();
/// let back = JobSpec::decode(&bytes).unwrap();
/// assert_eq!(back.budget, Some(500));
/// ```
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The workload kind.
    pub kind: JobKind,
    /// QoS class for admission control and policy-weighted scheduling.
    pub class: QosClass,
    /// Deadline, measured from submission. Soft by default (purely
    /// advisory: it orders dispatch under [`crate::DeadlineFirst`] and
    /// never causes a rejection or abort on its own); see
    /// [`JobSpec::hard_deadline`] for enforcement.
    pub deadline: Option<Duration>,
    /// Makes [`JobSpec::deadline`] *hard*: past it, the job is
    /// cooperatively cancelled at a slot-admission point and resolves to
    /// [`crate::JobOutcome::TimedOut`] carrying whatever partial
    /// results the rounds that finished produced.
    pub hard_deadline: bool,
    /// Retry policy for transient faults (worker panics, I/O errors).
    /// Defaults to [`RetryPolicy::none`].
    pub retry: RetryPolicy,
    /// Sample budget: single-round kinds truncate their request to at
    /// most this many samples; [`JobKind::Iterative`] stops scheduling
    /// further rounds once the generated total reaches it. `None` is
    /// unlimited.
    pub budget: Option<usize>,
    /// Session seed; `None` uses the engine's.
    pub seed: Option<u64>,
    /// Request-shaping configuration override, validated at submission
    /// exactly like [`crate::Session::with_config`] (the model
    /// architecture must stay the engine's).
    pub config: Option<PipelineConfig>,
    /// Session-affinity key for fleet routing: jobs sharing a key pin
    /// to the replica holding that session's library state, and
    /// successive [`JobKind::Iterative`] jobs *continue* the named
    /// session (via PPSQ save/resume) instead of starting fresh.
    /// Ignored by a single [`crate::Service`]. Keys are bounded at
    /// [`JobSpec::MAX_AFFINITY`] bytes and restricted to
    /// `[A-Za-z0-9._-]` (they become artifact-store keys).
    pub affinity: Option<String>,
    /// Placement hint for fleet routing: a stateless job lands on
    /// replica `hint % replicas` when that replica is healthy. Purely
    /// advisory — load balancing and failover override it; ignored by
    /// a single [`crate::Service`].
    pub placement: Option<u64>,
}

impl JobSpec {
    fn new(kind: JobKind) -> JobSpec {
        JobSpec {
            kind,
            class: QosClass::default(),
            deadline: None,
            hard_deadline: false,
            retry: RetryPolicy::none(),
            budget: None,
            seed: None,
            config: None,
            affinity: None,
            placement: None,
        }
    }

    /// Longest allowed [`JobSpec::affinity`] key, in bytes — the same
    /// bound [`JobSpec::decode`] enforces *before* allocating, so a
    /// corrupt length field can never balloon a read (mirroring the
    /// PPCK checkpoint bounding checks).
    pub const MAX_AFFINITY: usize = 256;

    /// An initial-generation workload.
    pub fn initial() -> JobSpec {
        JobSpec::new(JobKind::Initial)
    }

    /// The full pipeline with `iterations` refinement rounds after the
    /// initial one.
    pub fn iterative(iterations: usize) -> JobSpec {
        JobSpec::new(JobKind::Iterative { iterations })
    }

    /// An explicit raw request.
    pub fn raw(request: GenerationRequest) -> JobSpec {
        JobSpec::new(JobKind::Raw(request))
    }

    /// A training workload. Defaults to [`QosClass::BestEffort`] — the
    /// canonical scavenger class, parked whenever interactive or batch
    /// tenants need the pool — but [`JobSpec::with_class`] can raise it.
    pub fn train(spec: TrainSpec) -> JobSpec {
        JobSpec::new(JobKind::Train(spec)).with_class(QosClass::BestEffort)
    }

    /// Sets the QoS class.
    pub fn with_class(mut self, class: QosClass) -> JobSpec {
        self.class = class;
        self
    }

    /// Sets the soft deadline (from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a *hard* deadline (from submission): past it the job is
    /// cancelled at a slot-admission point and resolves to
    /// [`crate::JobOutcome::TimedOut`] with partial results.
    pub fn with_hard_deadline(mut self, deadline: Duration) -> JobSpec {
        self.deadline = Some(deadline);
        self.hard_deadline = true;
        self
    }

    /// Sets the retry policy for transient faults.
    pub fn with_retry(mut self, retry: RetryPolicy) -> JobSpec {
        self.retry = retry;
        self
    }

    /// Sets the sample budget.
    pub fn with_budget(mut self, budget: usize) -> JobSpec {
        self.budget = Some(budget);
        self
    }

    /// Sets the session seed.
    pub fn with_seed(mut self, seed: u64) -> JobSpec {
        self.seed = Some(seed);
        self
    }

    /// Sets the request-shaping configuration override.
    pub fn with_config(mut self, config: PipelineConfig) -> JobSpec {
        self.config = Some(config);
        self
    }

    /// Sets the session-affinity key for fleet routing (see
    /// [`JobSpec::affinity`]).
    pub fn with_affinity(mut self, key: impl Into<String>) -> JobSpec {
        self.affinity = Some(key.into());
        self
    }

    /// Sets the advisory placement hint for fleet routing (see
    /// [`JobSpec::placement`]).
    pub fn with_placement(mut self, hint: u64) -> JobSpec {
        self.placement = Some(hint);
        self
    }

    /// Serialises the spec to a self-describing binary blob
    /// ([`JobSpec::decode`] reverses it), so specs can sit in work
    /// queues or artifact stores next to the sessions they produced.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] for [`JobKind::Raw`], whose job set is an
    /// in-memory value with no serial form.
    pub fn encode(&self) -> Result<Vec<u8>, PpError> {
        use crate::artifact::ByteWriter;
        let mut w = ByteWriter::new();
        w.bytes(b"PPJS");
        // Version 4 adds the Train kind (tag 2 + its payload); version
        // 3 appended the fleet routing hints (affinity + placement)
        // after the retry fields; version 2 appended hard_deadline +
        // retry after the seed. Version-1 through -3 blobs still
        // decode, defaulting what they predate.
        w.u32(4);
        match &self.kind {
            JobKind::Initial => w.u8(0),
            JobKind::Iterative { iterations } => {
                w.u8(1);
                w.u64(*iterations as u64);
            }
            JobKind::Raw(_) => {
                return Err(PpError::Config(
                    "job spec: raw requests carry in-memory job sets and cannot be encoded".into(),
                ))
            }
            JobKind::Train(spec) => {
                w.u8(2);
                encode_train(&mut w, spec)?;
            }
        }
        w.u8(self.class.tag());
        opt_u64(&mut w, self.deadline.map(|d| d.as_micros() as u64));
        opt_u64(&mut w, self.budget.map(|b| b as u64));
        opt_u64(&mut w, self.seed);
        w.u8(u8::from(self.hard_deadline));
        w.u64(u64::from(self.retry.max_attempts));
        w.u64(self.retry.backoff.as_micros() as u64);
        match &self.affinity {
            None => w.u8(0),
            Some(key) => {
                if key.len() > JobSpec::MAX_AFFINITY {
                    return Err(PpError::Config(format!(
                        "job spec: affinity key is {} bytes (limit {})",
                        key.len(),
                        JobSpec::MAX_AFFINITY
                    )));
                }
                w.u8(1);
                w.u32(key.len() as u32);
                w.bytes(key.as_bytes());
            }
        }
        opt_u64(&mut w, self.placement);
        match &self.config {
            None => w.u8(0),
            Some(cfg) => {
                w.u8(1);
                crate::engine::encode_config(&mut w, cfg);
            }
        }
        Ok(w.into_vec())
    }

    /// Deserialises a blob written by [`JobSpec::encode`].
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] naming the corrupt or truncated field.
    pub fn decode(bytes: &[u8]) -> Result<JobSpec, PpError> {
        use crate::artifact::ByteReader;
        let corrupt = |detail: String| PpError::Config(format!("job spec: {detail}"));
        let mut r = ByteReader::new(bytes);
        if r.bytes(4, "magic").map_err(corrupt)? != b"PPJS" {
            return Err(corrupt("missing PPJS magic".into()));
        }
        let version = r.u32("version").map_err(corrupt)?;
        if !(1..=4).contains(&version) {
            return Err(corrupt(format!("unsupported spec version {version}")));
        }
        let kind = match r.u8("kind").map_err(corrupt)? {
            0 => JobKind::Initial,
            1 => JobKind::Iterative {
                iterations: r.u64("iterations").map_err(corrupt)? as usize,
            },
            2 if version >= 4 => JobKind::Train(decode_train(&mut r)?),
            2 => {
                return Err(corrupt(format!(
                    "kind tag 2 needs spec version 4, got {version}"
                )))
            }
            k => return Err(corrupt(format!("unknown kind tag {k}"))),
        };
        let class = QosClass::from_tag(r.u8("class").map_err(corrupt)?)?;
        let deadline = opt_read(&mut r, "deadline")?.map(Duration::from_micros);
        let budget = opt_read(&mut r, "budget")?.map(|b| b as usize);
        let seed = opt_read(&mut r, "seed")?;
        let (hard_deadline, retry) = if version >= 2 {
            let hard = match r.u8("hard deadline flag").map_err(corrupt)? {
                0 => false,
                1 => true,
                f => return Err(corrupt(format!("unknown hard deadline flag {f}"))),
            };
            let max_attempts = r.u64("retry max attempts").map_err(corrupt)?;
            let max_attempts = u32::try_from(max_attempts)
                .map_err(|_| corrupt(format!("retry max attempts {max_attempts} overflows")))?;
            let backoff = Duration::from_micros(r.u64("retry backoff").map_err(corrupt)?);
            (hard, RetryPolicy::new(max_attempts, backoff))
        } else {
            // Version-1 blobs predate enforcement and retries: their
            // deadlines stay soft and they never retry.
            (false, RetryPolicy::none())
        };
        let (affinity, placement) = if version >= 3 {
            let affinity = match r.u8("affinity flag").map_err(corrupt)? {
                0 => None,
                1 => {
                    let len = r.u32("affinity length").map_err(corrupt)? as usize;
                    // Bound before allocating: a corrupt length field
                    // must fail the read, not size it (the PPCK rule).
                    if len > JobSpec::MAX_AFFINITY {
                        return Err(corrupt(format!(
                            "affinity length {len} exceeds limit {}",
                            JobSpec::MAX_AFFINITY
                        )));
                    }
                    let raw = r.bytes(len, "affinity key").map_err(corrupt)?;
                    Some(
                        String::from_utf8(raw.to_vec())
                            .map_err(|_| corrupt("affinity key is not UTF-8".into()))?,
                    )
                }
                f => return Err(corrupt(format!("unknown affinity flag {f}"))),
            };
            (affinity, opt_read(&mut r, "placement")?)
        } else {
            // Pre-fleet blobs: no routing hints.
            (None, None)
        };
        let config = match r.u8("config flag").map_err(corrupt)? {
            0 => None,
            1 => Some(crate::engine::decode_config(&mut r).map_err(corrupt)?),
            f => return Err(corrupt(format!("unknown config flag {f}"))),
        };
        r.expect_end("job spec").map_err(corrupt)?;
        Ok(JobSpec {
            kind,
            class,
            deadline,
            hard_deadline,
            retry,
            budget,
            seed,
            config,
            affinity,
            placement,
        })
    }
}

/// Most session datasets a serialised [`TrainSpec`] may name — the
/// decode-side bound applied *before* any allocation sized by the
/// count field.
const MAX_TRAIN_DATASETS: usize = 64;

fn write_str(w: &mut crate::artifact::ByteWriter, what: &str, s: &str) -> Result<(), PpError> {
    if s.len() > JobSpec::MAX_AFFINITY {
        return Err(PpError::Config(format!(
            "job spec: train {what} is {} bytes (limit {})",
            s.len(),
            JobSpec::MAX_AFFINITY
        )));
    }
    w.u32(s.len() as u32);
    w.bytes(s.as_bytes());
    Ok(())
}

fn read_str(r: &mut crate::artifact::ByteReader<'_>, what: &str) -> Result<String, PpError> {
    let corrupt = |detail: String| PpError::Config(format!("job spec: {detail}"));
    let len = r.u32(what).map_err(corrupt)? as usize;
    if len > JobSpec::MAX_AFFINITY {
        return Err(corrupt(format!(
            "train {what} length {len} exceeds limit {}",
            JobSpec::MAX_AFFINITY
        )));
    }
    let raw = r.bytes(len, what).map_err(corrupt)?;
    String::from_utf8(raw.to_vec()).map_err(|_| corrupt(format!("train {what} is not UTF-8")))
}

fn encode_train(w: &mut crate::artifact::ByteWriter, spec: &TrainSpec) -> Result<(), PpError> {
    w.u32(spec.epochs);
    w.u64(spec.steps_per_epoch as u64);
    w.u64(spec.batch as u64);
    w.f32(spec.lr);
    w.f32(spec.lambda);
    w.u64(spec.prior_count as u64);
    match spec.ema_decay {
        None => w.u8(0),
        Some(decay) => {
            w.u8(1);
            w.f32(decay);
        }
    }
    w.u8(match spec.export {
        ExportWeights::Live => 0,
        ExportWeights::Ema => 1,
    });
    w.u64(spec.synth_corpus as u64);
    if spec.datasets.len() > MAX_TRAIN_DATASETS {
        return Err(PpError::Config(format!(
            "job spec: train names {} datasets (limit {MAX_TRAIN_DATASETS})",
            spec.datasets.len()
        )));
    }
    w.u32(spec.datasets.len() as u32);
    for name in &spec.datasets {
        write_str(w, "dataset name", name)?;
    }
    write_str(w, "output name", &spec.output)
}

fn decode_train(r: &mut crate::artifact::ByteReader<'_>) -> Result<TrainSpec, PpError> {
    let corrupt = |detail: String| PpError::Config(format!("job spec: {detail}"));
    let epochs = r.u32("train epochs").map_err(corrupt)?;
    let steps_per_epoch = r.u64("train steps").map_err(corrupt)? as usize;
    let batch = r.u64("train batch").map_err(corrupt)? as usize;
    let lr = r.f32("train lr").map_err(corrupt)?;
    let lambda = r.f32("train lambda").map_err(corrupt)?;
    let prior_count = r.u64("train prior count").map_err(corrupt)? as usize;
    let ema_decay = match r.u8("train ema flag").map_err(corrupt)? {
        0 => None,
        1 => Some(r.f32("train ema decay").map_err(corrupt)?),
        f => return Err(corrupt(format!("unknown train ema flag {f}"))),
    };
    let export = match r.u8("train export").map_err(corrupt)? {
        0 => ExportWeights::Live,
        1 => ExportWeights::Ema,
        f => return Err(corrupt(format!("unknown train export tag {f}"))),
    };
    let synth_corpus = r.u64("train synth corpus").map_err(corrupt)? as usize;
    let n = r.u32("train dataset count").map_err(corrupt)? as usize;
    if n > MAX_TRAIN_DATASETS {
        return Err(corrupt(format!(
            "train dataset count {n} exceeds limit {MAX_TRAIN_DATASETS}"
        )));
    }
    let mut datasets = Vec::with_capacity(n);
    for _ in 0..n {
        datasets.push(read_str(r, "dataset name")?);
    }
    let output = read_str(r, "output name")?;
    Ok(TrainSpec {
        epochs,
        steps_per_epoch,
        batch,
        lr,
        lambda,
        prior_count,
        ema_decay,
        export,
        datasets,
        synth_corpus,
        output,
    })
}

fn opt_u64(w: &mut crate::artifact::ByteWriter, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(v) => {
            w.u8(1);
            w.u64(v);
        }
    }
}

fn opt_read(r: &mut crate::artifact::ByteReader<'_>, what: &str) -> Result<Option<u64>, PpError> {
    let corrupt = |detail: String| PpError::Config(format!("job spec: {detail}"));
    match r.u8(what).map_err(corrupt)? {
        0 => Ok(None),
        1 => Ok(Some(r.u64(what).map_err(corrupt)?)),
        f => Err(corrupt(format!("unknown {what} flag {f}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobSet;

    #[test]
    fn class_weights_and_order() {
        assert!(QosClass::Interactive.weight() > QosClass::Batch.weight());
        assert!(QosClass::Batch.weight() > QosClass::BestEffort.weight());
        assert_eq!(QosClass::default(), QosClass::Batch);
        for (i, class) in QosClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(QosClass::from_tag(class.tag()).unwrap(), *class);
        }
        assert!(QosClass::from_tag(9).is_err());
    }

    #[test]
    fn spec_roundtrips_through_encode_decode() {
        let specs = [
            JobSpec::initial(),
            JobSpec::iterative(3)
                .with_class(QosClass::Interactive)
                .with_deadline(Duration::from_millis(250))
                .with_budget(1000)
                .with_seed(42)
                .with_config(PipelineConfig::tiny()),
            JobSpec::initial().with_class(QosClass::BestEffort),
            JobSpec::iterative(1)
                .with_hard_deadline(Duration::from_secs(2))
                .with_retry(RetryPolicy::new(3, Duration::from_millis(10))),
            JobSpec::iterative(2)
                .with_affinity("tenant-a.session_7")
                .with_placement(3),
            JobSpec::train(
                TrainSpec::new("finetune-a")
                    .with_epochs(6)
                    .with_steps_per_epoch(10)
                    .with_batch(3)
                    .with_lr(5e-4)
                    .with_prior(4, 0.25)
                    .with_ema(Some(0.995))
                    .with_export(ExportWeights::Ema)
                    .with_dataset("corpus-1")
                    .with_dataset("corpus-2")
                    .with_synth_corpus(8),
            )
            .with_retry(RetryPolicy::new(2, Duration::from_millis(5))),
            JobSpec::train(TrainSpec::new("plain").with_ema(None)),
        ];
        for spec in specs {
            let bytes = spec.encode().expect("non-raw specs encode");
            let back = JobSpec::decode(&bytes).expect("blob decodes");
            assert_eq!(back.class, spec.class);
            assert_eq!(back.deadline, spec.deadline);
            assert_eq!(back.hard_deadline, spec.hard_deadline);
            assert_eq!(back.retry, spec.retry);
            assert_eq!(back.budget, spec.budget);
            assert_eq!(back.seed, spec.seed);
            assert_eq!(back.config, spec.config);
            assert_eq!(back.affinity, spec.affinity);
            assert_eq!(back.placement, spec.placement);
            match (&back.kind, &spec.kind) {
                (JobKind::Initial, JobKind::Initial) => {}
                (JobKind::Iterative { iterations: a }, JobKind::Iterative { iterations: b }) => {
                    assert_eq!(a, b)
                }
                (JobKind::Train(a), JobKind::Train(b)) => assert_eq!(a, b),
                (a, b) => panic!("kind mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn raw_specs_refuse_to_encode_and_corrupt_blobs_are_named() {
        let raw = JobSpec::raw(GenerationRequest::new(JobSet::new(), 0));
        let err = raw.encode().unwrap_err();
        assert!(matches!(err, PpError::Config(_)), "wrong error: {err}");
        assert!(err.to_string().contains("raw"), "message was: {err}");

        let good = JobSpec::iterative(1).encode().unwrap();
        let err = JobSpec::decode(&good[..good.len() - 1]).unwrap_err();
        assert!(err.to_string().contains("job spec"), "message was: {err}");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(JobSpec::decode(&bad_magic).is_err());
        let mut bad_class = good;
        // kind tag (1) + iterations (8) follow the 8-byte header.
        bad_class[17] = 9;
        let err = JobSpec::decode(&bad_class).unwrap_err();
        assert!(err.to_string().contains("class"), "message was: {err}");
    }

    /// Version-1 blobs (pre-retry, pre-hard-deadline) still decode,
    /// defaulting to soft deadlines and no retries.
    #[test]
    fn version_one_blobs_decode_with_defaults() {
        use crate::artifact::ByteWriter;
        let mut w = ByteWriter::new();
        w.bytes(b"PPJS");
        w.u32(1);
        w.u8(1); // iterative
        w.u64(4);
        w.u8(0); // interactive
        w.u8(1); // deadline present
        w.u64(250_000);
        w.u8(0); // no budget
        w.u8(1); // seed present
        w.u64(7);
        w.u8(0); // no config
        let back = JobSpec::decode(&w.into_vec()).expect("v1 blob decodes");
        assert!(matches!(back.kind, JobKind::Iterative { iterations: 4 }));
        assert_eq!(back.class, QosClass::Interactive);
        assert_eq!(back.deadline, Some(Duration::from_micros(250_000)));
        assert!(!back.hard_deadline, "v1 deadlines stay soft");
        assert_eq!(back.retry, RetryPolicy::none(), "v1 specs never retry");
        assert_eq!(back.seed, Some(7));
        assert_eq!(back.affinity, None, "v1 blobs predate fleet routing");
        assert_eq!(back.placement, None);
    }

    /// Version-2 blobs (retry + hard deadline, pre-fleet) still decode
    /// after the v3 bump, with no routing hints.
    #[test]
    fn version_two_blobs_decode_with_defaults() {
        use crate::artifact::ByteWriter;
        let mut w = ByteWriter::new();
        w.bytes(b"PPJS");
        w.u32(2);
        w.u8(0); // initial
        w.u8(2); // best-effort
        w.u8(1); // deadline present
        w.u64(1_000_000);
        w.u8(1); // budget present
        w.u64(200);
        w.u8(0); // no seed
        w.u8(1); // hard deadline
        w.u64(3); // retry max attempts
        w.u64(50_000); // retry backoff, µs
        w.u8(0); // no config
        let back = JobSpec::decode(&w.into_vec()).expect("v2 blob decodes");
        assert!(matches!(back.kind, JobKind::Initial));
        assert_eq!(back.class, QosClass::BestEffort);
        assert_eq!(back.deadline, Some(Duration::from_secs(1)));
        assert!(back.hard_deadline, "v2 hard flag survives");
        assert_eq!(back.retry, RetryPolicy::new(3, Duration::from_millis(50)));
        assert_eq!(back.budget, Some(200));
        assert_eq!(back.seed, None);
        assert_eq!(back.affinity, None, "v2 blobs predate fleet routing");
        assert_eq!(back.placement, None, "v2 blobs predate fleet routing");
    }

    /// A corrupt affinity length must fail the read *before* any
    /// allocation sized by it — the same discipline as the PPCK
    /// checkpoint bounding checks.
    #[test]
    fn oversized_affinity_is_rejected_on_both_paths() {
        let spec = JobSpec::initial().with_affinity("k".repeat(JobSpec::MAX_AFFINITY + 1));
        let err = spec.encode().unwrap_err();
        assert!(err.to_string().contains("affinity"), "message was: {err}");

        let good = JobSpec::initial()
            .with_affinity("fleet-key")
            .encode()
            .unwrap();
        // The affinity flag + u32 length sit right after the fixed v3
        // prefix: header 8, kind 1, class 1, deadline 1, budget 1,
        // seed 1, hard 1, retry 16 = byte 30 is the flag.
        assert_eq!(good[30], 1, "affinity flag where the layout says");
        let mut bad = good.clone();
        bad[31..35].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = JobSpec::decode(&bad).unwrap_err();
        assert!(
            err.to_string().contains("affinity length"),
            "message was: {err}"
        );
        // Truncating the key bytes themselves is caught by the bounded
        // read, not by a panic.
        let err = JobSpec::decode(&good[..good.len() - 4]).unwrap_err();
        assert!(err.to_string().contains("job spec"), "message was: {err}");
    }

    /// Train is a v4 kind: the default class is best-effort, older
    /// blobs can never claim the tag, and a corrupt dataset count must
    /// fail before it sizes an allocation.
    #[test]
    fn train_kind_is_version_gated_and_bounded() {
        let spec = JobSpec::train(TrainSpec::new("t"));
        assert_eq!(
            spec.class,
            QosClass::BestEffort,
            "training defaults to the scavenger class"
        );

        // A v3 blob claiming kind tag 2 is corrupt, not a train spec.
        let good = spec.encode().unwrap();
        let mut downgraded = good.clone();
        downgraded[4..8].copy_from_slice(&3u32.to_le_bytes());
        let err = JobSpec::decode(&downgraded).unwrap_err();
        assert!(err.to_string().contains("version 4"), "message was: {err}");

        // Encode-side bounds: too many datasets, oversized names.
        let mut many = TrainSpec::new("t");
        many.datasets = vec!["d".into(); MAX_TRAIN_DATASETS + 1];
        let err = JobSpec::train(many).encode().unwrap_err();
        assert!(err.to_string().contains("datasets"), "message was: {err}");
        let long = TrainSpec::new("o".repeat(JobSpec::MAX_AFFINITY + 1));
        let err = JobSpec::train(long).encode().unwrap_err();
        assert!(err.to_string().contains("output"), "message was: {err}");

        // Decode-side: corrupt the dataset count field (fixed train
        // payload after the kind tag: epochs 4, steps 8, batch 8, lr 4,
        // lambda 4, prior 8, ema flag+decay 5, export 1, synth 8 = count
        // at byte 9 + 50 = 59).
        let mut bad = good.clone();
        bad[59..63].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = JobSpec::decode(&bad).unwrap_err();
        assert!(
            err.to_string().contains("dataset count"),
            "message was: {err}"
        );
        // Truncation anywhere in the train payload is a named error.
        for cut in 9..63 {
            let err = JobSpec::decode(&good[..cut]).unwrap_err();
            assert!(err.to_string().contains("job spec"), "cut {cut}: {err}");
        }
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let none = RetryPolicy::none();
        assert_eq!(none.max_attempts, 1);
        assert_eq!(none.delay_before(2), Duration::ZERO);
        assert_eq!(RetryPolicy::new(0, Duration::ZERO).max_attempts, 1);

        let retry = RetryPolicy::new(5, Duration::from_millis(10));
        assert_eq!(retry.delay_before(1), Duration::ZERO, "first run: no wait");
        assert_eq!(retry.delay_before(2), Duration::from_millis(10));
        assert_eq!(retry.delay_before(3), Duration::from_millis(20));
        assert_eq!(retry.delay_before(4), Duration::from_millis(40));
        // The doubling is capped, even for absurd attempt counts.
        assert_eq!(retry.delay_before(40), RetryPolicy::MAX_BACKOFF);
        assert_eq!(retry.delay_before(u32::MAX), RetryPolicy::MAX_BACKOFF);
    }
}
