//! The multi-session engine: one shared model, many concurrent
//! workloads, persistent artifacts.
//!
//! A [`crate::PatternPaint`] instance privately owns its model and runs
//! exactly one workload. At service scale that inverts: the expensive
//! artifact is the trained generator, and what varies per user is the
//! cheap request shape (masks, variation counts, selection budgets).
//! This module splits the two:
//!
//! * [`Engine`] — an immutable, `Sync` snapshot of the trained
//!   model + schedule + PDK rules + default stages, shared behind
//!   `Arc`. Engines are cheap to clone and hand out
//!   [`Session`]s; [`Engine::scheduler`] spawns the shared worker pool
//!   that serves all of them fairly (see [`crate::scheduler`]).
//! * [`Session`] — one workload's mutable state: its own
//!   [`PatternLibrary`], config overrides (request-shaping knobs only —
//!   the model architecture belongs to the engine), seed,
//!   [`CancelToken`]/progress hooks, and iteration cursor. Round entry
//!   points mirror the facade's, and a session's results are
//!   bit-identical to a solo [`crate::PatternPaint`] run with the same
//!   node, config and seed — whether or not its sampling is interleaved
//!   with other sessions on a scheduler.
//! * the **artifact layer** ([`crate::artifact`]) — [`Engine::save`] /
//!   [`Engine::open`] persist the model as a versioned, checksummed
//!   checkpoint plus a manifest; [`Session::save`] /
//!   [`Session::resume`] persist a library (squish round-trip) plus the
//!   session's progress counters, so `iterative_generation` resumes
//!   mid-run with output identical to an uninterrupted run.
//!
//! ```no_run
//! use patternpaint_core::{DirStore, Engine, PipelineConfig};
//! use pp_pdk::SynthNode;
//!
//! # fn main() -> Result<(), patternpaint_core::PpError> {
//! let engine = Engine::builder(SynthNode::default(), PipelineConfig::quick())
//!     .seed(42)
//!     .pretrained_engine()?;
//! let scheduler = engine.scheduler(4);
//!
//! // Two tenants, one model, fair interleaving:
//! let mut alice = engine.session().attach(&scheduler);
//! let mut bob = engine.session_seeded(7).attach(&scheduler);
//! std::thread::scope(|s| {
//!     s.spawn(|| alice.initial_generation());
//!     s.spawn(|| bob.initial_generation());
//! });
//!
//! // Durable across processes:
//! let store = DirStore::open("run-artifacts")?;
//! engine.save(&store)?;
//! let engine2 = Engine::open(&store)?;
//! # let _ = engine2;
//! # Ok(())
//! # }
//! ```

use crate::artifact::{ArtifactError, ArtifactStore, ByteReader, ByteWriter};
use crate::config::{FinetuneConfig, PipelineConfig, PretrainConfig};
use crate::error::PpError;
use crate::jobs::JobSet;
use crate::jobspec::QosClass;
use crate::library::PatternLibrary;
use crate::pipeline::{GenerationRound, IterationStats};
use crate::scheduler::{ScheduledSampler, Scheduler, SchedulerHandle, SchedulerOptions};
use crate::stages::{
    run_round_into_partial, DiffusionSampler, PatternDenoiser, SampleStream, Sampler, Selector,
    Validator,
};
use crate::stream::{GenerationRequest, StreamOptions};
use pp_diffusion::{
    load_checkpoint, load_checkpoint_with, read_config, save_checkpoint, write_config,
    CheckpointLineage, DiffusionModel,
};
use pp_geometry::Layout;
use pp_inpaint::{Mask, MaskSchedule, MaskSet};
use pp_pdk::SynthNode;
use pp_selection::PcaSelector;
use std::sync::Arc;

pub use crate::stream::CancelToken;

/// Artifact key of the engine manifest.
pub const ENGINE_META_KEY: &str = "engine.meta";
/// Artifact key of the model checkpoint.
pub const ENGINE_MODEL_KEY: &str = "model.ppck";

/// The shared, immutable snapshot an [`Engine`] (and the
/// [`crate::PatternPaint`] facade) is built around.
#[derive(Clone)]
pub(crate) struct EngineCore {
    pub(crate) node: SynthNode,
    pub(crate) cfg: PipelineConfig,
    pub(crate) model: Arc<DiffusionModel>,
    pub(crate) sampler_override: Option<Arc<dyn Sampler>>,
    pub(crate) denoiser: Arc<dyn PatternDenoiser>,
    pub(crate) validator: Arc<dyn Validator>,
    pub(crate) selector_override: Option<Arc<dyn Selector>>,
    pub(crate) starters: Vec<Layout>,
    pub(crate) seed: u64,
    pub(crate) finetuned: bool,
}

impl EngineCore {
    pub(crate) fn assemble(
        node: SynthNode,
        cfg: PipelineConfig,
        seed: u64,
        sampler_override: Option<Arc<dyn Sampler>>,
        denoiser: Arc<dyn PatternDenoiser>,
        validator: Arc<dyn Validator>,
        selector_override: Option<Arc<dyn Selector>>,
    ) -> Self {
        let starters = node.starter_patterns();
        EngineCore {
            model: Arc::new(DiffusionModel::new(cfg.model, seed)),
            node,
            cfg,
            sampler_override,
            denoiser,
            validator,
            selector_override,
            starters,
            seed,
            finetuned: false,
        }
    }

    /// The sampler a round runs through: the configured override, the
    /// shared scheduler when one is attached, or a private
    /// [`DiffusionSampler`] pool.
    pub(crate) fn sampler(
        &self,
        cfg: &PipelineConfig,
        sched: Option<&SchedulerHandle>,
    ) -> Arc<dyn Sampler> {
        if let Some(s) = &self.sampler_override {
            return Arc::clone(s);
        }
        match sched {
            Some(handle) => Arc::new(ScheduledSampler::new(handle.clone(), cfg.batch_size)),
            None => Arc::new(DiffusionSampler::from_arc(
                Arc::clone(&self.model),
                cfg.threads,
                cfg.batch_size,
            )),
        }
    }

    /// The initial-generation request under `cfg` and `seed`: every
    /// starter × all ten predefined masks × `variations` (paper §IV-C).
    pub(crate) fn initial_request(&self, cfg: &PipelineConfig, seed: u64) -> GenerationRequest {
        let masks: Vec<Mask> = MaskSet::ALL
            .iter()
            .flat_map(|s| s.masks(self.node.clip()))
            .collect();
        GenerationRequest::fan_out(&self.starters, &masks, cfg.variations, seed ^ 0x1217)
    }

    pub(crate) fn generate_stream(
        &self,
        cfg: &PipelineConfig,
        sched: Option<&SchedulerHandle>,
        request: &GenerationRequest,
        opts: &StreamOptions,
    ) -> Result<SampleStream, PpError> {
        if request.jobs().is_empty() {
            return Err(PpError::EmptyRequest);
        }
        self.sampler(cfg, sched)
            .sample_stream(request.jobs(), request.seed(), opts)
    }

    pub(crate) fn run_request_into(
        &self,
        cfg: &PipelineConfig,
        sched: Option<&SchedulerHandle>,
        request: &GenerationRequest,
        opts: &StreamOptions,
        library: &mut PatternLibrary,
    ) -> Result<(usize, usize), PpError> {
        let (counts, error) = self.run_request_into_partial(cfg, sched, request, opts, library);
        match error {
            Some(e) => Err(e),
            None => Ok(counts),
        }
    }

    /// [`PatternPaintCore::run_request_into`] reporting partial
    /// progress alongside the failure, so an erroring round (a hard
    /// deadline, an aborted stream) still accounts the samples it
    /// admitted before dying.
    pub(crate) fn run_request_into_partial(
        &self,
        cfg: &PipelineConfig,
        sched: Option<&SchedulerHandle>,
        request: &GenerationRequest,
        opts: &StreamOptions,
        library: &mut PatternLibrary,
    ) -> ((usize, usize), Option<PpError>) {
        let mut opts = opts.clone();
        opts.tail_threads = Some(opts.tail_threads.unwrap_or(cfg.tail_threads));
        run_round_into_partial(
            self.sampler(cfg, sched).as_ref(),
            self.denoiser.as_ref(),
            self.validator.as_ref(),
            request,
            &opts,
            library,
        )
    }

    /// The iterative-generation loop (paper Alg. 2 / §IV-E), shared by
    /// [`Session::iterate`] and the facade.
    ///
    /// `first_iteration` is the zero-based index of the first round to
    /// run: per-round seeds (`seed ^ (0xabcd + it)`) and the sequential
    /// mask schedule both key off the absolute index, which is what
    /// makes a resumed session bit-identical to an uninterrupted one.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn iterate(
        &self,
        cfg: &PipelineConfig,
        sched: Option<&SchedulerHandle>,
        seed: u64,
        library: &mut PatternLibrary,
        iterations: usize,
        first_iteration: usize,
        mut legal_so_far: usize,
        opts: &StreamOptions,
    ) -> Result<Vec<IterationStats>, PpError> {
        let side = self.node.clip();
        let schedules = [
            MaskSchedule::new(MaskSet::Default, side),
            MaskSchedule::new(MaskSet::Horizontal, side),
        ];
        let default_selector;
        let selector: &dyn Selector = match &self.selector_override {
            Some(s) => s.as_ref(),
            None => {
                default_selector =
                    PcaSelector::try_new(cfg.pca_explained, cfg.max_density, seed ^ 0x5e1e)?;
                &default_selector
            }
        };
        let mut stats = Vec::with_capacity(iterations);
        for it in first_iteration..first_iteration + iterations {
            if opts.cancel.is_cancelled() {
                break;
            }
            let k = cfg.select_k.min(library.len().max(1));
            let picks = selector.select(library.patterns(), k);
            let per_seed = (cfg.samples_per_iteration / picks.len().max(1)).max(1);
            let mut jobs = JobSet::new();
            for (pi, &idx) in picks.iter().enumerate() {
                // One deep copy per pick; the per_seed variations share it.
                let template = Arc::new(library.patterns()[idx].clone());
                // Alternate mask sets per pattern; walk the set
                // sequentially across iterations (paper §IV-E2).
                let schedule = &schedules[pi % 2];
                let mask = Arc::new(schedule.mask_for(it, pi).clone());
                jobs.push_fan_out(&template, &mask, per_seed);
            }
            let request = GenerationRequest::new(jobs, seed ^ (0xabcd + it as u64));
            let (generated, legal) = self.run_request_into(cfg, sched, &request, opts, library)?;
            legal_so_far += legal;
            let lib_stats = library.stats();
            stats.push(IterationStats {
                iteration: it + 2, // iteration 1 is the initial round
                generated,
                legal_total: legal_so_far,
                unique_total: library.len(),
                h1: lib_stats.h1,
                h2: lib_stats.h2,
            });
        }
        Ok(stats)
    }
}

/// A long-lived, shareable snapshot of a trained PatternPaint stack.
///
/// The engine owns the trained model, noise schedule, PDK rules and
/// default stages behind `Arc` as an immutable, `Sync` value; cloning
/// is a pointer bump. Workloads run through [`Session`] handles
/// ([`Engine::session`]); a shared [`Scheduler`] ([`Engine::scheduler`])
/// interleaves many sessions' sampling onto one worker pool with
/// round-robin fairness. [`Engine::save`]/[`Engine::open`] persist and
/// restore the whole snapshot through an [`ArtifactStore`].
///
/// Built by [`crate::PipelineBuilder`] (`pretrained_engine()` /
/// `untrained_engine()`), from a facade via
/// [`crate::PatternPaint::engine`], or from a store via
/// [`Engine::open`].
#[derive(Clone)]
pub struct Engine {
    pub(crate) core: Arc<EngineCore>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("node", &self.core.node)
            .field("seed", &self.core.seed)
            .field("finetuned", &self.core.finetuned)
            .field("custom_sampler", &self.core.sampler_override.is_some())
            .field("custom_selector", &self.core.selector_override.is_some())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts assembling an engine; identical to
    /// [`crate::PatternPaint::builder`] but finished with
    /// [`crate::PipelineBuilder::pretrained_engine`] /
    /// [`crate::PipelineBuilder::untrained_engine`].
    pub fn builder(node: SynthNode, cfg: PipelineConfig) -> crate::builder::PipelineBuilder {
        crate::builder::PipelineBuilder::new(node, cfg)
    }

    /// The node this engine targets.
    pub fn node(&self) -> &SynthNode {
        &self.core.node
    }

    /// The engine-level configuration (sessions may override the
    /// request-shaping fields).
    pub fn config(&self) -> &PipelineConfig {
        &self.core.cfg
    }

    /// The shared diffusion model.
    pub fn model(&self) -> &DiffusionModel {
        &self.core.model
    }

    /// The engine's base RNG seed (sessions default to it).
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// Whether the snapshot was finetuned before freezing.
    pub fn is_finetuned(&self) -> bool {
        self.core.finetuned
    }

    /// The starter patterns.
    pub fn starters(&self) -> &[Layout] {
        &self.core.starters
    }

    /// A fresh session with the engine's config and seed.
    pub fn session(&self) -> Session {
        self.session_seeded(self.core.seed)
    }

    /// A fresh session with its own seed (requests and selection derive
    /// their RNG streams from it exactly as a solo pipeline would).
    pub fn session_seeded(&self, seed: u64) -> Session {
        Session {
            core: Arc::clone(&self.core),
            cfg: self.core.cfg,
            seed,
            opts: StreamOptions::default(),
            scheduler: None,
            library: PatternLibrary::new(),
            legal_total: 0,
            generated_total: 0,
            next_iteration: 0,
        }
    }

    /// Spawns a shared sampling worker pool serving this engine's
    /// sessions with round-robin fairness (see [`crate::scheduler`]).
    /// Keep it alive while attached sessions run.
    pub fn scheduler(&self, threads: usize) -> Scheduler {
        Scheduler::new(Arc::clone(&self.core.model), threads)
    }

    /// [`Engine::scheduler`] with an explicit [`crate::SchedPolicy`]
    /// and per-class admission bounds:
    ///
    /// ```no_run
    /// # use patternpaint_core::{Engine, PipelineConfig, QueueLimits, SchedulerOptions, WeightedFair};
    /// # use pp_pdk::SynthNode;
    /// # fn main() -> Result<(), patternpaint_core::PpError> {
    /// # let engine = Engine::builder(SynthNode::default(), PipelineConfig::quick()).untrained_engine()?;
    /// let scheduler = engine.scheduler_with(
    ///     4,
    ///     SchedulerOptions::new()
    ///         .policy(WeightedFair)
    ///         .limits(QueueLimits::uniform(32)),
    /// );
    /// # let _ = scheduler;
    /// # Ok(())
    /// # }
    /// ```
    pub fn scheduler_with(&self, threads: usize, options: SchedulerOptions) -> Scheduler {
        Scheduler::new_with(Arc::clone(&self.core.model), threads, options)
    }

    /// Persists the engine snapshot: a versioned model checkpoint under
    /// [`ENGINE_MODEL_KEY`] and a manifest (node, config, seed,
    /// finetune flag) under [`ENGINE_META_KEY`].
    ///
    /// Stage overrides (custom samplers/validators/selectors) are code,
    /// not data, and are not persisted; [`Engine::open`] rebuilds the
    /// default stages.
    ///
    /// # Errors
    ///
    /// [`PpError::Checkpoint`] when the model fails to serialise,
    /// [`PpError::Artifact`] when the store rejects a write.
    pub fn save(&self, store: &dyn ArtifactStore) -> Result<(), PpError> {
        let mut meta = ByteWriter::new();
        meta.bytes(b"PPEG");
        meta.u32(1); // manifest version
        meta.u32(self.core.node.clip());
        meta.u32(self.core.node.pitch());
        meta.u64(self.core.seed);
        meta.u8(u8::from(self.core.finetuned));
        encode_config(&mut meta, &self.core.cfg);
        let mut checkpoint = Vec::new();
        // save_weights walks parameters mutably; serialise a private
        // clone so the shared snapshot stays untouched.
        let mut model = (*self.core.model).clone();
        save_checkpoint(&mut model, &mut checkpoint)?;
        store.put(ENGINE_MODEL_KEY, &checkpoint)?;
        store.put(ENGINE_META_KEY, &meta.into_vec())?;
        Ok(())
    }

    /// Restores an engine saved by [`Engine::save`]: reads the manifest
    /// and checkpoint, rebuilds the node and default stages, and
    /// validates that the checkpointed model matches the manifest's
    /// architecture.
    ///
    /// # Errors
    ///
    /// [`PpError::Artifact`] when either key is missing, unreadable or
    /// corrupt; [`PpError::Checkpoint`] when the model checkpoint fails
    /// validation; [`PpError::Config`]/[`PpError::Shape`] when the
    /// restored configuration no longer validates.
    pub fn open(store: &dyn ArtifactStore) -> Result<Engine, PpError> {
        let meta = store.get(ENGINE_META_KEY)?;
        let corrupt =
            |detail: String| PpError::Artifact(ArtifactError::corrupt(ENGINE_META_KEY, detail));
        let mut r = ByteReader::new(&meta);
        if r.bytes(4, "magic").map_err(corrupt)? != b"PPEG" {
            return Err(corrupt("missing PPEG magic".into()));
        }
        let version = r.u32("version").map_err(corrupt)?;
        if version != 1 {
            return Err(corrupt(format!("unsupported manifest version {version}")));
        }
        let clip = r.u32("clip").map_err(corrupt)?;
        let pitch = r.u32("pitch").map_err(corrupt)?;
        let seed = r.u64("seed").map_err(corrupt)?;
        let finetuned = r.u8("finetuned").map_err(corrupt)? != 0;
        let cfg = decode_config(&mut r).map_err(corrupt)?;
        r.expect_end("engine manifest").map_err(corrupt)?;
        let checkpoint = store.get(ENGINE_MODEL_KEY)?;
        let model = load_checkpoint(checkpoint.as_slice())?;
        if model.config() != cfg.model {
            return Err(PpError::Artifact(ArtifactError::corrupt(
                ENGINE_MODEL_KEY,
                "checkpoint architecture disagrees with the engine manifest",
            )));
        }
        let pp = crate::builder::PipelineBuilder::new(SynthNode::new(clip, pitch), cfg)
            .seed(seed)
            .untrained()?;
        let mut core = Arc::try_unwrap(pp.into_engine().core).unwrap_or_else(|arc| (*arc).clone());
        core.model = Arc::new(model);
        core.finetuned = finetuned;
        Ok(Engine {
            core: Arc::new(core),
        })
    }

    /// A new engine identical to this one but serving `model` — the
    /// fork point for fine-tuned weights: node, config, seed, starters
    /// and stage overrides carry over; the snapshot is marked
    /// finetuned.
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] when `model`'s architecture differs from
    /// this engine's (a fine-tune never changes shapes; anything else
    /// is not a fork of this engine).
    pub fn with_model(&self, model: DiffusionModel) -> Result<Engine, PpError> {
        if model.config() != self.core.cfg.model {
            return Err(PpError::Config(
                "with_model: the model's architecture differs from the engine's".into(),
            ));
        }
        let mut core = (*self.core).clone();
        core.model = Arc::new(model);
        core.finetuned = true;
        Ok(Engine {
            core: Arc::new(core),
        })
    }

    /// Opens a fine-tuned checkpoint (one written by a
    /// [`crate::JobKind::Train`] job) as a new engine forked from this
    /// one, returning the checkpoint's lineage so the caller can verify
    /// parent/epoch provenance. The new engine serves generation
    /// through [`crate::Service`] / [`crate::Fleet`] exactly like any
    /// other — A/B it against this one via
    /// [`crate::Fleet::from_engines`].
    ///
    /// # Errors
    ///
    /// [`PpError::Artifact`] when the key is missing or unreadable,
    /// [`PpError::Checkpoint`] when the checkpoint is corrupt,
    /// [`PpError::Config`] when its architecture differs from this
    /// engine's.
    pub fn open_trained(
        &self,
        store: &dyn ArtifactStore,
        key: &str,
    ) -> Result<(Engine, CheckpointLineage), PpError> {
        let bytes = store.get(key)?;
        let (model, lineage) = load_checkpoint_with(bytes.as_slice())?;
        Ok((self.with_model(model)?, lineage))
    }
}

/// One workload's handle onto a shared [`Engine`].
///
/// A session owns everything per-workload — library, seed, config
/// overrides, stream options, iteration cursor — while sampling runs
/// against the engine's immutable model (optionally through a shared
/// [`Scheduler`]). Its entry points mirror the facade's round methods,
/// and its outputs are bit-identical to a solo [`crate::PatternPaint`]
/// with the same node, config and seed.
#[derive(Clone)]
pub struct Session {
    core: Arc<EngineCore>,
    cfg: PipelineConfig,
    seed: u64,
    opts: StreamOptions,
    scheduler: Option<SchedulerHandle>,
    library: PatternLibrary,
    legal_total: usize,
    generated_total: usize,
    next_iteration: usize,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("seed", &self.seed)
            .field("library_len", &self.library.len())
            .field("legal_total", &self.legal_total)
            .field("generated_total", &self.generated_total)
            .field("next_iteration", &self.next_iteration)
            .field("scheduled", &self.scheduler.is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// The engine this session runs on.
    pub fn engine(&self) -> Engine {
        Engine {
            core: Arc::clone(&self.core),
        }
    }

    /// The session's effective configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The session seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Overrides the request-shaping configuration (variations,
    /// selection budgets, thread counts, …).
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] when `cfg` fails validation or tries to
    /// change the model architecture — that belongs to the engine.
    pub fn with_config(mut self, cfg: PipelineConfig) -> Result<Session, PpError> {
        cfg.validate()?;
        if cfg.model != self.core.cfg.model {
            return Err(PpError::Config(
                "session config must keep the engine's model architecture".into(),
            ));
        }
        self.cfg = cfg;
        Ok(self)
    }

    /// Overrides the session seed.
    pub fn with_seed(mut self, seed: u64) -> Session {
        self.seed = seed;
        self
    }

    /// Replaces the stream options (progress hook, cancellation token,
    /// backpressure, tail threads, QoS class/deadline) applied to every
    /// round this session runs.
    pub fn with_options(mut self, opts: StreamOptions) -> Session {
        self.opts = opts;
        self
    }

    /// Sets the QoS class this session's scheduler submissions carry
    /// (admission queue + share weight under class-aware policies).
    /// Shorthand for adjusting [`Session::with_options`].
    pub fn with_class(mut self, class: QosClass) -> Session {
        self.opts.class = class;
        self
    }

    /// Sets the soft deadline (from each submission) this session's
    /// scheduler submissions carry, ordering them under
    /// [`crate::DeadlineFirst`].
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Session {
        self.opts.deadline = Some(deadline);
        self
    }

    /// Routes this session's sampling through a shared scheduler
    /// instead of a private worker pool. Results are bit-identical
    /// either way.
    pub fn attach(mut self, scheduler: &Scheduler) -> Session {
        self.scheduler = Some(scheduler.handle());
        self
    }

    /// Routes sampling through an existing scheduler handle (same
    /// session id as every other user of that handle). The service's
    /// retry loop uses this so all attempts of one job share one
    /// scheduler session — stats attribution and [`crate::FaultPlan`]
    /// keying stay stable across retries.
    pub(crate) fn attach_handle(mut self, handle: crate::scheduler::SchedulerHandle) -> Session {
        self.scheduler = Some(handle);
        self
    }

    /// The session's stream options.
    pub fn options(&self) -> &StreamOptions {
        &self.opts
    }

    /// The library grown so far.
    pub fn library(&self) -> &PatternLibrary {
        &self.library
    }

    /// Consumes the session, returning its library.
    pub fn into_library(self) -> PatternLibrary {
        self.library
    }

    /// Cumulative legal samples across all rounds run by this session.
    pub fn legal_total(&self) -> usize {
        self.legal_total
    }

    /// Cumulative samples generated across all rounds.
    pub fn generated_total(&self) -> usize {
        self.generated_total
    }

    /// Zero-based index of the next iterative-generation round
    /// ([`Session::iterate`] advances it; resume restores it).
    pub fn next_iteration(&self) -> usize {
        self.next_iteration
    }

    /// Seeds the library with the engine's starter patterns, the usual
    /// prelude before [`Session::iterate`] on sparse initial rounds.
    pub fn seed_starters(&mut self) {
        let starters = self.core.starters.clone();
        self.library.extend(starters);
    }

    /// The session's initial-generation request.
    pub fn initial_request(&self) -> GenerationRequest {
        self.core.initial_request(&self.cfg, self.seed)
    }

    /// Streams raw samples for `request` under the session options
    /// without touching the library.
    ///
    /// # Errors
    ///
    /// [`PpError::EmptyRequest`] when the request has no jobs, plus
    /// anything the sampler reports.
    pub fn generate_stream(&self, request: &GenerationRequest) -> Result<SampleStream, PpError> {
        self.core
            .generate_stream(&self.cfg, self.scheduler.as_ref(), request, &self.opts)
    }

    /// Runs one full round for `request` into the session library;
    /// returns `(generated, legal)` for the round and updates the
    /// cumulative counters.
    ///
    /// On error the counters (and the library) still reflect every
    /// sample admitted before the round died — a hard-deadline abort
    /// keeps its partial results, which is what
    /// [`crate::JobOutcome::TimedOut`] reports.
    ///
    /// # Errors
    ///
    /// Anything [`Session::generate_stream`] reports.
    pub fn run_request(&mut self, request: &GenerationRequest) -> Result<(usize, usize), PpError> {
        let ((generated, legal), error) = self.core.run_request_into_partial(
            &self.cfg,
            self.scheduler.as_ref(),
            request,
            &self.opts,
            &mut self.library,
        );
        self.generated_total += generated;
        self.legal_total += legal;
        match error {
            Some(e) => Err(e),
            None => Ok((generated, legal)),
        }
    }

    /// Stage 2 for this session: the initial generation round into the
    /// session library; returns `(generated, legal)`.
    ///
    /// # Errors
    ///
    /// Anything [`Session::generate_stream`] reports.
    pub fn initial_generation(&mut self) -> Result<(usize, usize), PpError> {
        self.run_request(&self.initial_request())
    }

    /// Stages 3–4 for this session: `iterations` rounds of selection +
    /// re-inpainting, continuing from wherever the session's iteration
    /// cursor points (so a resumed session picks up exactly where it
    /// stopped).
    ///
    /// # Errors
    ///
    /// [`PpError::Config`] when the selection parameters are invalid,
    /// plus anything [`Session::generate_stream`] reports.
    pub fn iterate(&mut self, iterations: usize) -> Result<Vec<IterationStats>, PpError> {
        let stats = self.core.iterate(
            &self.cfg,
            self.scheduler.as_ref(),
            self.seed,
            &mut self.library,
            iterations,
            self.next_iteration,
            self.legal_total,
            &self.opts,
        )?;
        self.next_iteration += stats.len();
        for st in &stats {
            self.generated_total += st.generated;
        }
        self.legal_total = stats.last().map_or(self.legal_total, |st| st.legal_total);
        Ok(stats)
    }

    /// A [`GenerationRound`] view of the whole session so far.
    pub fn round_summary(&self) -> GenerationRound {
        GenerationRound {
            generated: self.generated_total,
            legal: self.legal_total,
            library: self.library.clone(),
        }
    }

    /// Persists the session (library in squish form + progress
    /// counters + config) under `session-<name>.*` keys.
    ///
    /// # Errors
    ///
    /// [`PpError::Artifact`] when the store rejects a write or the name
    /// is not a valid key fragment; [`PpError::Io`] when library
    /// serialisation fails.
    pub fn save(&self, store: &dyn ArtifactStore, name: &str) -> Result<(), PpError> {
        let (meta_key, lib_key) = session_keys(name);
        let mut meta = ByteWriter::new();
        meta.bytes(b"PPSS");
        meta.u32(1); // manifest version
        meta.u64(self.seed);
        meta.u64(self.legal_total as u64);
        meta.u64(self.generated_total as u64);
        meta.u64(self.next_iteration as u64);
        encode_config(&mut meta, &self.cfg);
        let mut lib_bytes = Vec::new();
        self.library.write_squish(&mut lib_bytes)?;
        store.put(&lib_key, &lib_bytes)?;
        store.put(&meta_key, &meta.into_vec())?;
        Ok(())
    }

    /// Restores a session saved by [`Session::save`] onto `engine`,
    /// with library contents, signatures, statistics and the iteration
    /// cursor exactly as they were — continuing [`Session::iterate`]
    /// afterwards produces output identical to a run that never
    /// stopped.
    ///
    /// The restored session starts with default stream options and no
    /// scheduler; re-attach via [`Session::with_options`] /
    /// [`Session::attach`].
    ///
    /// # Errors
    ///
    /// [`PpError::Artifact`] when the keys are missing or corrupt,
    /// [`PpError::Config`] when the stored config no longer fits the
    /// engine's model.
    pub fn resume(
        engine: &Engine,
        store: &dyn ArtifactStore,
        name: &str,
    ) -> Result<Session, PpError> {
        let (meta_key, lib_key) = session_keys(name);
        let meta = store.get(&meta_key)?;
        let corrupt = |detail: String| PpError::Artifact(ArtifactError::corrupt(&meta_key, detail));
        let mut r = ByteReader::new(&meta);
        if r.bytes(4, "magic").map_err(corrupt)? != b"PPSS" {
            return Err(corrupt("missing PPSS magic".into()));
        }
        let version = r.u32("version").map_err(corrupt)?;
        if version != 1 {
            return Err(corrupt(format!("unsupported manifest version {version}")));
        }
        let seed = r.u64("seed").map_err(corrupt)?;
        let legal_total = r.u64("legal_total").map_err(corrupt)? as usize;
        let generated_total = r.u64("generated_total").map_err(corrupt)? as usize;
        let next_iteration = r.u64("next_iteration").map_err(corrupt)? as usize;
        let cfg = decode_config(&mut r).map_err(corrupt)?;
        r.expect_end("session manifest").map_err(corrupt)?;
        let lib_bytes = store.get(&lib_key)?;
        let library = PatternLibrary::read_squish(lib_bytes.as_slice())
            .map_err(|e| PpError::Artifact(ArtifactError::corrupt(&lib_key, e.to_string())))?;
        let session = engine
            .session_seeded(seed)
            .with_config(cfg)
            .map_err(|e| PpError::Config(format!("stored session config rejected: {e}")))?;
        Ok(Session {
            library,
            legal_total,
            generated_total,
            next_iteration,
            ..session
        })
    }
}

/// The manifest + library key pair for a named session — shared with
/// the fleet router, which targets these keys when migrating a pinned
/// session between replica stores.
pub(crate) fn session_keys(name: &str) -> (String, String) {
    (
        format!("session-{name}.meta"),
        format!("session-{name}.ppsq"),
    )
}

/// Serialises a [`PipelineConfig`] into a manifest blob. The model
/// section reuses `pp_diffusion`'s one [`write_config`] codec, so a
/// new `DiffusionConfig` field or enum variant is a single edit there.
pub(crate) fn encode_config(w: &mut ByteWriter, cfg: &PipelineConfig) {
    write_config(&cfg.model, w).expect("in-memory manifest writer cannot fail");
    w.u64(cfg.pretrain.corpus as u64);
    w.u64(cfg.pretrain.steps as u64);
    w.u64(cfg.pretrain.batch as u64);
    w.f32(cfg.pretrain.lr);
    w.u64(cfg.finetune.steps as u64);
    w.u64(cfg.finetune.batch as u64);
    w.f32(cfg.finetune.lr);
    w.f32(cfg.finetune.lambda);
    w.u64(cfg.finetune.prior_count as u64);
    w.u64(cfg.variations as u64);
    w.u32(cfg.denoise_threshold);
    w.u64(cfg.select_k as u64);
    w.u64(cfg.samples_per_iteration as u64);
    w.f64(cfg.max_density);
    w.f64(cfg.pca_explained);
    w.u64(cfg.threads as u64);
    w.u64(cfg.batch_size as u64);
    w.u64(cfg.tail_threads as u64);
}

/// Deserialises what [`encode_config`] wrote.
pub(crate) fn decode_config(r: &mut ByteReader<'_>) -> Result<PipelineConfig, String> {
    let model = read_config(r).map_err(|e| e.to_string())?;
    Ok(PipelineConfig {
        model,
        pretrain: PretrainConfig {
            corpus: r.u64("pretrain.corpus")? as usize,
            steps: r.u64("pretrain.steps")? as usize,
            batch: r.u64("pretrain.batch")? as usize,
            lr: r.f32("pretrain.lr")?,
        },
        finetune: FinetuneConfig {
            steps: r.u64("finetune.steps")? as usize,
            batch: r.u64("finetune.batch")? as usize,
            lr: r.f32("finetune.lr")?,
            lambda: r.f32("finetune.lambda")?,
            prior_count: r.u64("finetune.prior_count")? as usize,
        },
        variations: r.u64("variations")? as usize,
        denoise_threshold: r.u32("denoise_threshold")?,
        select_k: r.u64("select_k")? as usize,
        samples_per_iteration: r.u64("samples_per_iteration")? as usize,
        max_density: r.f64("max_density")?,
        pca_explained: r.f64("pca_explained")?,
        threads: r.u64("threads")? as usize,
        batch_size: r.u64("batch_size")? as usize,
        tail_threads: r.u64("tail_threads")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::MemStore;
    use crate::pipeline::PatternPaint;

    fn tiny_engine() -> Engine {
        PatternPaint::pretrained(SynthNode::small(), PipelineConfig::tiny(), 1)
            .expect("tiny config is valid")
            .engine()
    }

    #[test]
    fn config_blob_roundtrips() {
        for cfg in [
            PipelineConfig::tiny(),
            PipelineConfig::quick(),
            PipelineConfig::standard(),
        ] {
            let mut w = ByteWriter::new();
            encode_config(&mut w, &cfg);
            let blob = w.into_vec();
            let mut r = ByteReader::new(&blob);
            let back = decode_config(&mut r).unwrap();
            r.expect_end("config").unwrap();
            assert_eq!(back, cfg);
        }
    }

    #[test]
    fn session_matches_facade_round() {
        let engine = tiny_engine();
        let pp = PatternPaint::from_engine(engine.clone());
        let round = pp.initial_generation().expect("facade round runs");
        let mut session = engine.session();
        let (generated, legal) = session.initial_generation().expect("session round runs");
        assert_eq!(generated, round.generated);
        assert_eq!(legal, round.legal);
        assert_eq!(session.library().patterns(), round.library.patterns());
    }

    #[test]
    fn session_config_override_keeps_model_fixed() {
        let engine = tiny_engine();
        let mut cfg = *engine.config();
        cfg.variations = 2;
        assert!(engine.session().with_config(cfg).is_ok());
        let mut bad = *engine.config();
        bad.model.base_ch += 1;
        let err = engine.session().with_config(bad).unwrap_err();
        assert!(matches!(err, PpError::Config(_)), "wrong error: {err}");
        let mut invalid = *engine.config();
        invalid.variations = 0;
        assert!(engine.session().with_config(invalid).is_err());
    }

    #[test]
    fn engine_save_open_roundtrip() {
        let engine = tiny_engine();
        let store = MemStore::new();
        engine.save(&store).expect("save succeeds");
        assert!(store.contains(ENGINE_META_KEY).unwrap());
        assert!(store.contains(ENGINE_MODEL_KEY).unwrap());
        let back = Engine::open(&store).expect("open succeeds");
        assert_eq!(back.node(), engine.node());
        assert_eq!(back.config(), engine.config());
        assert_eq!(back.seed(), engine.seed());
        assert_eq!(back.is_finetuned(), engine.is_finetuned());
        // The restored model samples identically.
        let mut a = engine.session();
        let mut b = back.session();
        let (ga, la) = a.initial_generation().unwrap();
        let (gb, lb) = b.initial_generation().unwrap();
        assert_eq!((ga, la), (gb, lb));
        assert_eq!(a.library().patterns(), b.library().patterns());
    }

    #[test]
    fn open_rejects_corrupt_manifest() {
        let engine = tiny_engine();
        let store = MemStore::new();
        engine.save(&store).unwrap();
        let mut meta = store.get(ENGINE_META_KEY).unwrap();
        meta[0] = b'X';
        store.put(ENGINE_META_KEY, &meta).unwrap();
        let err = Engine::open(&store).unwrap_err();
        assert!(matches!(err, PpError::Artifact(_)), "wrong error: {err}");
        // Missing checkpoint key.
        let store2 = MemStore::new();
        engine.save(&store2).unwrap();
        let meta = store2.get(ENGINE_META_KEY).unwrap();
        let fresh = MemStore::new();
        fresh.put(ENGINE_META_KEY, &meta).unwrap();
        let err = Engine::open(&fresh).unwrap_err();
        assert!(
            matches!(
                &err,
                PpError::Artifact(ArtifactError::Missing { key }) if key == ENGINE_MODEL_KEY
            ),
            "wrong error: {err}"
        );
    }

    #[test]
    fn session_save_resume_roundtrip() {
        let engine = tiny_engine();
        let store = MemStore::new();
        let mut session = engine.session_seeded(9);
        session.initial_generation().unwrap();
        session.seed_starters();
        session.iterate(1).unwrap();
        session.save(&store, "tenant-a").unwrap();
        let resumed = Session::resume(&engine, &store, "tenant-a").unwrap();
        assert_eq!(resumed.seed(), session.seed());
        assert_eq!(resumed.legal_total(), session.legal_total());
        assert_eq!(resumed.generated_total(), session.generated_total());
        assert_eq!(resumed.next_iteration(), session.next_iteration());
        assert_eq!(resumed.library().patterns(), session.library().patterns());
        let a = resumed.library().stats();
        let b = session.library().stats();
        assert_eq!((a.count, a.unique), (b.count, b.unique));
        assert_eq!(a.h1.to_bits(), b.h1.to_bits());
        assert_eq!(a.h2.to_bits(), b.h2.to_bits());
    }
}
