//! The PatternPaint pipeline (the paper's primary contribution), as a
//! service-grade generation API.
//!
//! PatternPaint turns a handful of DR-clean starter patterns into a
//! large, diverse, DR-clean pattern library using a pretrained image
//! inpainting diffusion model — no rule-based generator and no nonlinear
//! legalization solver. The pipeline (paper Figure 4):
//!
//! 1. **Few-shot finetuning** ([`PatternPaint::finetune`]) —
//!    DreamBooth-style adaptation of the pretrained model on the ~20
//!    starters, with prior-preservation samples drawn from the model
//!    itself;
//! 2. **Initial generation** ([`PatternPaint::initial_generation`]) —
//!    every starter × every predefined mask × `v` variations;
//! 3. **Template-based denoising + DRC** — each raw sample is snapped
//!    back onto the scan-line grid (`pp-inpaint`) and validated with the
//!    sign-off checker (`pp-drc`); clean, novel patterns enter the
//!    [`PatternLibrary`];
//! 4. **PCA-based selection + iterative generation**
//!    ([`PatternPaint::iterative_generation`]) — representative,
//!    low-density layouts are selected (`pp-selection`) and re-inpainted
//!    under sequentially scheduled masks, growing diversity (H2) round
//!    after round.
//!
//! # The API, in four layers
//!
//! **Jobs and errors.** Work is described as [`JobSet`]s of shared
//! `(template, mask)` pairs, and everything that can fail returns
//! [`PpError`] (config, shape-mismatch, model, io, empty-request
//! variants) instead of panicking — construction included:
//! [`PatternPaint::pretrained`] / [`PatternPaint::untrained`] are
//! fallible.
//!
//! **Stages.** Each pipeline stage is a trait ([`Sampler`],
//! [`PatternDenoiser`], [`Validator`], [`Selector`] — see
//! [`stages`]) with the paper's implementation as the default;
//! [`PipelineBuilder`] assembles them. Prior-work baselines implement
//! [`Sampler`] in `pp-baselines`, so the Table I/II benches drive every
//! method through the one [`stages::run_round`] harness.
//!
//! **Streams.** [`PatternPaint::generate_stream`] turns a
//! [`GenerationRequest`] into an iterator of raw samples backed by the
//! model's batched workers through bounded channels, with a
//! [`ProgressHook`] per micro-batch and a cooperative [`CancelToken`]
//! checked between micro-batches. The round-level entry points are
//! consumers of this stream, so blocking and streaming callers see
//! bit-identical results.
//!
//! **Engine + sessions.** [`Engine`] freezes a trained stack into an
//! immutable, `Sync` snapshot shared behind `Arc`; [`Session`] handles
//! carry per-workload state (library, seed, config overrides,
//! iteration cursor), and [`Engine::scheduler`] spawns one worker pool
//! that interleaves all sessions' sampling round-robin — N concurrent
//! sessions reproduce N solo pipelines bit for bit. The artifact layer
//! ([`artifact`]: [`ArtifactStore`], [`DirStore`], [`MemStore`])
//! persists versioned model checkpoints and squish-form libraries, so
//! [`Engine::open`] / [`Session::resume`] continue a run exactly where
//! it stopped. [`PatternPaint`] itself is a facade over one engine +
//! one implicit session.
//!
//! **QoS front door.** [`Service`] sits on top for multi-tenant
//! serving: tenants submit declarative [`JobSpec`]s (kind, QoS class,
//! soft deadline, sample budget, config shaping) and hold
//! [`JobHandle`]s (poll / wait / progress / cancel) resolving to a
//! terminal [`JobOutcome`]. Underneath, the scheduler's dispatch
//! decision is a pluggable [`SchedPolicy`] ([`RoundRobin`] default,
//! [`WeightedFair`], [`DeadlineFirst`]), per-class queues are bounded
//! ([`QueueLimits`], overflow → [`PpError::Rejected`]), and
//! [`Scheduler::stats`] snapshots queue depths and dispatch counters
//! ([`SchedulerStats`]). The runtime underneath is *supervised*: worker
//! panics are isolated to the one submission that was running
//! ([`PpError::WorkerPanic`]), jobs carrying a [`RetryPolicy`] re-run
//! transient failures with bounded backoff, hard deadlines resolve to
//! [`JobOutcome::TimedOut`] with partial results, and the whole story
//! is provable through deterministic fault injection ([`fault`],
//! `tests/chaos_scheduler.rs`).
//!
//! **Fleet.** [`Fleet`] scales the same front door across N engine
//! replicas opened from one checkpoint: a work-stealing router places
//! jobs at job granularity, admission is back-pressure-aware on
//! aggregated [`SchedulerStats`], session-affinity keys pin iterative
//! work to the replica holding its state (with explicit PPSQ migration
//! when that replica is lost or drained), and per-job results stay
//! bit-identical to a single replica. [`Fleet::stats`] exposes
//! per-replica and merged counters ([`FleetStats`]).
//!
//! **Training.** Fine-tuning is a job too: [`JobSpec::train`] runs a
//! [`TrainSpec`] (dataset synthesis from the PDK + saved session
//! libraries, masked-inpainting loss, Adam, optional EMA shadow
//! weights) under the same service — preemptible between epochs when
//! higher QoS classes have queued work, checkpointed every epoch with
//! parent/epoch lineage, and resumable bit-identically after any
//! interruption ([`train`], `tests/train_jobs.rs`).
//!
//! # Example
//!
//! ```no_run
//! use patternpaint_core::{PatternPaint, PipelineConfig, StreamOptions};
//! use pp_pdk::SynthNode;
//!
//! # fn main() -> Result<(), patternpaint_core::PpError> {
//! let node = SynthNode::default();
//! let mut pp = PatternPaint::builder(node, PipelineConfig::quick())
//!     .seed(0)
//!     .pretrained()?;
//! pp.finetune()?;
//!
//! // Blocking round...
//! let round = pp.initial_generation()?;
//! println!("legal {} / generated {}", round.legal, round.generated);
//!
//! // ...or the same samples, streamed with progress metering.
//! let opts = StreamOptions::default()
//!     .with_progress(|p| eprintln!("{}/{}", p.completed, p.total));
//! for sample in pp.generate_stream(&pp.initial_request(), &opts)? {
//!     let _raw = sample?;
//! }
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end run and the README
//! migration table for the pre-stream API mapping.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod builder;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod fleet;
pub mod jobs;
pub mod jobspec;
pub mod library;
pub mod pipeline;
pub mod scheduler;
pub mod service;
pub mod stages;
pub mod stream;
mod tail;
pub mod train;

pub use artifact::{copy_artifacts, ArtifactError, ArtifactStore, DirStore, MemStore};
pub use builder::PipelineBuilder;
pub use config::{FinetuneConfig, PipelineConfig, PretrainConfig};
pub use engine::{Engine, Session, ENGINE_META_KEY, ENGINE_MODEL_KEY};
pub use error::PpError;
pub use fault::{Fault, FaultPlan};
pub use fleet::{Fleet, FleetOptions, FleetStats, ReplicaStats};
pub use jobs::JobSet;
pub use jobspec::{JobKind, JobSpec, QosClass, RetryPolicy};
pub use library::PatternLibrary;
pub use pipeline::{GenerationRound, IterationStats, PatternPaint, RawSample};
pub use scheduler::{
    ClassCounts, DeadlineFirst, DispatchMode, QueueLimits, RoundRobin, SchedPolicy, SchedView,
    ScheduledSampler, Scheduler, SchedulerHandle, SchedulerOptions, SchedulerStats, SessionSched,
    WeightedFair,
};
pub use service::{
    JobHandle, JobOutcome, JobReport, JobStatus, Service, ServiceOptions, ServiceStats,
};
pub use stages::{
    denoise_and_admit, run_round, run_round_into, DiffusionSampler, DrcValidator, PatternDenoiser,
    SampleStream, Sampler, Selector, Validator,
};
pub use stream::{CancelToken, GenerationRequest, Progress, ProgressHook, StreamOptions};
pub use train::{ExportWeights, TrainRun, TrainSpec, TrainSummary};
