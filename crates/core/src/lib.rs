//! The PatternPaint pipeline (the paper's primary contribution).
//!
//! PatternPaint turns a handful of DR-clean starter patterns into a
//! large, diverse, DR-clean pattern library using a pretrained image
//! inpainting diffusion model — no rule-based generator and no nonlinear
//! legalization solver. The pipeline (paper Figure 4):
//!
//! 1. **Few-shot finetuning** ([`PatternPaint::finetune`]) —
//!    DreamBooth-style adaptation of the pretrained model on the ~20
//!    starters, with prior-preservation samples drawn from the model
//!    itself;
//! 2. **Initial generation** ([`PatternPaint::initial_generation`]) —
//!    every starter × every predefined mask × `v` variations;
//! 3. **Template-based denoising + DRC** — each raw sample is snapped
//!    back onto the scan-line grid (`pp-inpaint`) and validated with the
//!    sign-off checker (`pp-drc`); clean, novel patterns enter the
//!    [`PatternLibrary`];
//! 4. **PCA-based selection + iterative generation**
//!    ([`PatternPaint::iterative_generation`]) — representative,
//!    low-density layouts are selected (`pp-selection`) and re-inpainted
//!    under sequentially scheduled masks, growing diversity (H2) round
//!    after round.
//!
//! # Example
//!
//! ```no_run
//! use patternpaint_core::{PatternPaint, PipelineConfig};
//! use pp_pdk::SynthNode;
//!
//! let node = SynthNode::default();
//! let mut pp = PatternPaint::pretrained(node, PipelineConfig::quick(), 0);
//! pp.finetune();
//! let round = pp.initial_generation();
//! println!("legal {} / generated {}", round.legal, round.generated);
//! ```

pub mod config;
pub mod library;
pub mod pipeline;

pub use config::{FinetuneConfig, PipelineConfig, PretrainConfig};
pub use library::PatternLibrary;
pub use pipeline::{GenerationRound, IterationStats, PatternPaint, RawSample};
